"""Simulated synchronization for the lock-based baseline channels.

The paper compares against coarse-grained-locking designs (Go's channel, the
legacy Kotlin buffered channel).  Those baselines need a mutex that behaves
like a real one under the cost model: *the critical section serializes
simulated time*, so adding threads adds queueing delay instead of throughput.

:class:`SimMutex` is a test-and-test-and-set spin lock with capped exponential
backoff — the spin-then-yield regime of Go's ``runtime.mutex`` fast path.  The
serialization falls out of the cost model automatically: the release write
publishes the holder's clock on the lock cell, and a waiter's acquiring CAS
cannot start before the line's ``avail_time``.

State *protected by* the mutex may be plain Python data (lists, deques):
because every access happens between ``acquire``/``release`` of the same
mutex, no other task can interleave a conflicting access, exactly as in real
lock-based code.  This keeps the baselines faithful to their originals, which
do not decompose their critical sections into atomic steps.
"""

from __future__ import annotations

from typing import Any, Generator

from ..concurrent.cells import IntCell
from ..concurrent.ops import Cas, Read, Spin, Work, Write
from ..errors import SchedulerError

__all__ = ["SimMutex"]

_UNLOCKED = 0
_LOCKED = 1


class SimMutex:
    """A TTAS spin lock with capped exponential backoff (generator API)."""

    __slots__ = ("_state", "name", "acquisitions", "contended_acquisitions")

    def __init__(self, name: str = "mutex"):
        self._state = IntCell(_UNLOCKED, name=f"{name}.state")
        self.name = name
        #: Total successful acquisitions (stats for the bench harness).
        self.acquisitions = 0
        #: Acquisitions that needed at least one retry.
        self.contended_acquisitions = 0

    def acquire(self) -> Generator[Any, Any, None]:
        """Acquire the lock; spins (with backoff) while it is held."""

        backoff = 8
        contended = False
        while True:
            state = yield Read(self._state)
            if state == _UNLOCKED:
                ok = yield Cas(self._state, _UNLOCKED, _LOCKED)
                if ok:
                    self.acquisitions += 1
                    if contended:
                        self.contended_acquisitions += 1
                    return
            contended = True
            yield Spin(f"{self.name}-contended")
            yield Work(backoff)
            if backoff < 512:
                backoff *= 2

    def release(self) -> Generator[Any, Any, None]:
        """Release the lock.  Raises if it was not held."""

        state = yield Read(self._state)
        if state != _LOCKED:
            raise SchedulerError(f"{self.name}: release of an unheld mutex")
        yield Write(self._state, _UNLOCKED)

    @property
    def locked(self) -> bool:
        """Non-simulated peek, for tests run between scheduler steps."""

        return self._state.value == _LOCKED
