"""Virtual threads (tasks) executed by the simulated scheduler.

A :class:`Task` wraps one algorithm generator plus the bookkeeping the
scheduler and the cost model need: a run state, a per-task simulated clock
(discrete-event semantics: the makespan of a run is the maximum task clock),
the value or exception to deliver at the next resume, and the lost-wakeup
guard used by the park/unpark protocol.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from ..errors import Interrupted

__all__ = ["Task", "TaskState"]


class TaskState(enum.Enum):
    """Life-cycle of a virtual thread."""

    RUNNABLE = "runnable"
    PARKED = "parked"
    DONE = "done"
    FAILED = "failed"


class Task:
    """One virtual thread: a generator plus scheduling state.

    Tasks are created via :meth:`repro.sim.scheduler.Scheduler.spawn`,
    never directly.
    """

    __slots__ = (
        "tid",
        "name",
        "gen",
        "send_fn",
        "state",
        "clock",
        "steps",
        "pending_value",
        "pending_exc",
        "unpark_pending",
        "interrupt_pending",
        "retry_pending",
        "value",
        "error",
        "cache",
        "park_count",
        "current_waiter",
    )

    def __init__(self, tid: int, gen: Generator[Any, Any, Any], name: str | None = None):
        self.tid = tid
        self.name = name or f"task-{tid}"
        self.gen = gen
        #: ``gen.send`` pre-bound once; the fused scheduler loop resumes
        #: through this instead of re-binding the method every stint.
        self.send_fn = gen.send
        self.state = TaskState.RUNNABLE
        #: Per-task simulated clock, in cycles.  Frozen while parked.
        self.clock: int = 0
        #: Number of ops this task has executed (all drivers).
        self.steps: int = 0
        #: Value delivered to ``gen.send`` at the next resume.
        self.pending_value: Any = None
        #: Exception thrown into the generator at the next resume, if any.
        self.pending_exc: Optional[BaseException] = None
        #: Set when ``UnparkTask`` arrives before the target actually parked
        #: (the LockSupport-style permit preventing lost wakeups).
        self.unpark_pending: bool = False
        #: Like :attr:`unpark_pending`, but the wakeup is an interruption.
        self.interrupt_pending: bool = False
        #: Like :attr:`unpark_pending`, but the wakeup is a retry signal.
        self.retry_pending: bool = False
        #: Return value of the generator once :attr:`state` is ``DONE``.
        self.value: Any = None
        #: Exception that terminated the generator once ``FAILED``.
        self.error: Optional[BaseException] = None
        #: Cost-model cache map: cell ``loc_id`` -> last observed write time.
        self.cache: dict[int, int] = {}
        #: Number of times this task actually suspended (parked).
        self.park_count: int = 0
        #: The most recent Waiter created by this task (``curCor()``), used
        #: by the external-cancellation helper in :mod:`repro.runtime.api`.
        self.current_waiter: Any = None

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and the bench harness.
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """``True`` once the generator finished, successfully or not."""

        return self.state in (TaskState.DONE, TaskState.FAILED)

    @property
    def interrupted(self) -> bool:
        """``True`` if the task terminated with :class:`Interrupted`."""

        return self.state is TaskState.FAILED and isinstance(self.error, Interrupted)

    def result(self) -> Any:
        """Return the generator's return value, re-raising its failure."""

        if self.state is TaskState.DONE:
            return self.value
        if self.state is TaskState.FAILED:
            assert self.error is not None
            raise self.error
        raise RuntimeError(f"{self.name} has not finished (state={self.state.value})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} state={self.state.value} clock={self.clock}>"
