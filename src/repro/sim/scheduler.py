"""The deterministic simulated-multicore scheduler.

The scheduler owns a set of :class:`~repro.sim.tasks.Task` virtual threads
and repeatedly: picks a runnable task (per the pluggable
:class:`SchedulingPolicy`), resumes its generator for exactly one op, applies
the op's effect atomically, charges its cost, and delivers the result.
Because only one op executes at a time, every execution is a legal
sequentially-consistent interleaving — which is precisely the memory model
the paper assumes (Section 2).

Three policies cover the three uses of the simulator:

* :class:`DesPolicy` — discrete-event order (lowest task clock first).  With
  the cache-coherence cost model this produces the simulated-cycles makespan
  used by the Figure 5 benchmarks.
* :class:`RandomPolicy` — seeded uniform choice, for randomized race testing.
* :class:`ControlledPolicy` — replays an explicit choice sequence; the
  exhaustive interleaving explorer (:mod:`repro.sim.explore`) drives it.

Park/unpark protocol
--------------------
``ParkTask`` suspends the current task; ``UnparkTask`` resumes a target.
The classic lost-wakeup race (unpark arriving after the waiter committed to
parking but before it actually suspended) is resolved with a LockSupport-style
permit: an early unpark sets ``task.unpark_pending`` and the subsequent
``ParkTask`` consumes it without suspending — mirroring the paper's
"``tryUnpark()`` can be called before ``park(..)``" contract (Section 2).
Interruptions are delivered by *throwing* :class:`~repro.errors.Interrupted`
into the parked generator, so a cancelled ``send``/``receive`` unwinds exactly
like a Kotlin coroutine resumed with a ``CancellationException``.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..concurrent.ops import (
    MEMORY_OP_APPLIERS,
    Alloc,
    Cas,
    CurrentTask,
    Faa,
    GetAndSet,
    Label,
    Op,
    ParkTask,
    Read,
    SampledWork,
    Spin,
    UnparkTask,
    Work,
    Write,
    Yield,
)
from ..errors import DeadlockError, Interrupted, RetryWakeup, SchedulerError, StepLimitExceeded
from .costmodel import LCG_BATCH, CostModel, NullCostModel, OpCostAudit, lcg_batch
from .tasks import Task, TaskState

_INF = float("inf")

__all__ = [
    "Scheduler",
    "SchedulingPolicy",
    "DesPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "ControlledPolicy",
    "run_all",
]

class SchedulingPolicy:
    """Chooses which runnable task executes the next op."""

    def reset(self) -> None:
        """Forget internal state (scheduler re-registers runnable tasks)."""

    def on_runnable(self, task: Task) -> None:
        """A task became runnable (spawned or woken)."""

    def requeue(self, task: Task) -> None:
        """The running task executed an op and is still runnable."""

    def next(self) -> Optional[Task]:
        """Return the next task to run, or ``None`` if none are runnable."""
        raise NotImplementedError

    def keep_running(self, task: Task) -> bool:
        """May the scheduler run one more op of *task* without re-picking?

        Pure scheduling optimization; returning ``False`` is always
        correct.  :class:`DesPolicy` returns ``True`` while the task's
        clock has not passed the next-earliest runnable task, which cuts
        bookkeeping several-fold without changing DES semantics.
        """
        return False

    def on_voluntary_yield(self, task: Task) -> None:
        """The task executed a ``Spin``/``Yield`` (no memory effect).

        Policies may treat the next switch away from it as free — a sound
        stutter reduction, since re-running the task immediately would
        only re-read unchanged state.
        """

    def forget(self, task: Task) -> None:
        """The task finished (DONE or FAILED); drop any bookkeeping.

        Called by the scheduler exactly once per completed task, *after*
        the terminal state is set.  Pure bookkeeping: the scheduler never
        hands a non-runnable task back to the policy, so ignoring this is
        always correct — but policies keeping per-task maps (home queues,
        priority ages) should release the entry here.
        """


class DesPolicy(SchedulingPolicy):
    """Discrete-event order: run the runnable task with the smallest clock.

    The ready queue is a lazy min-heap of ``(clock, tid, task)`` entries;
    the fused scheduler loop also pushes *wide* entries ``(clock, tid,
    task, steps, pending_value, pending_exc)`` that carry a descheduled
    task's resume state (see :meth:`Scheduler._run_fast`).  Ordering is
    unaffected — comparisons never reach past ``tid``.

    **Deterministic tie-break (load-bearing for golden results):** among
    runnable tasks with equal clocks, the *lowest task id* runs first —
    tuple comparison on ``(clock, tid)`` gives this for free; the third
    element is never compared because tids are unique.  Carrying the
    task in the entry keeps the hot paths free of id->task dict lookups.
    Entries are never removed eagerly; a popped entry is *stale*
    (skipped) when its task is no longer runnable or has a different
    clock than recorded (a fresher entry exists).  The scheduler's fused
    fast path (:meth:`Scheduler._run_fast`) inlines exactly this heap
    discipline, which is why fast-path and hooked runs are bit-identical.
    """

    __slots__ = ("_heap", "_tasks")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Task]] = []
        self._tasks: dict[int, Task] = {}

    def reset(self) -> None:
        self._heap.clear()
        self._tasks.clear()

    def on_runnable(self, task: Task) -> None:
        self._tasks[task.tid] = task
        heapq.heappush(self._heap, (task.clock, task.tid, task))

    def requeue(self, task: Task) -> None:
        heapq.heappush(self._heap, (task.clock, task.tid, task))

    def next(self) -> Optional[Task]:
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            task = entry[2]
            if task.state is not TaskState.RUNNABLE:
                continue
            if task.clock != entry[0]:
                continue  # stale entry; a fresher one exists
            if len(entry) == 6:
                # Wide stint entry (see Scheduler._run_fast): the resume
                # state travelled in the entry, not the task attributes.
                task.steps = entry[3]
                task.pending_value = entry[4]
                task.pending_exc = entry[5]
            return task
        return None

    def keep_running(self, task: Task) -> bool:
        heap = self._heap
        while heap:
            entry = heap[0]
            clock = entry[0]
            other = entry[2]
            if (
                other.state is not TaskState.RUNNABLE
                or other.clock != clock
                or other is task
            ):
                heapq.heappop(heap)
                continue
            return task.clock <= clock
        return True  # nothing else runnable

    def forget(self, task: Task) -> None:
        """Drop the id->task registration (bookkeeping only).

        Scheduling is driven by the heap entries themselves; a forgotten
        task with a live entry remains schedulable until it parks or
        finishes.
        """
        self._tasks.pop(task.tid, None)


class RandomPolicy(SchedulingPolicy):
    """Seeded uniform random choice among runnable tasks."""

    __slots__ = ("rng", "_tasks")

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self._tasks: dict[int, Task] = {}

    def reset(self) -> None:
        self._tasks.clear()

    def on_runnable(self, task: Task) -> None:
        self._tasks[task.tid] = task

    def requeue(self, task: Task) -> None:
        self._tasks[task.tid] = task

    def next(self) -> Optional[Task]:
        alive = [t for t in self._tasks.values() if t.state is TaskState.RUNNABLE]
        if not alive:
            return None
        task = self.rng.choice(alive)
        return task


def __getattr__(name: str) -> Any:
    # RoundRobinPolicy moved to repro.sched.policies (it is QuantumPolicy
    # with quantum=1); keep its historical import path working.  Lazy
    # (PEP 562) so importing this module never pulls in repro.sched.
    if name == "RoundRobinPolicy":
        from ..sched.policies import RoundRobinPolicy

        return RoundRobinPolicy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ControlledPolicy(SchedulingPolicy):
    """Replays an explicit choice sequence; records branching factors.

    At each decision point with more than one runnable task, consumes the
    next index from ``choices`` (defaulting to 0 past the end) and appends
    the number of alternatives to ``branching``.  The DFS explorer uses the
    recorded branching to enumerate the next untried schedule.
    """

    __slots__ = (
        "choices",
        "branching",
        "_pos",
        "_tasks",
        "preemption_bound",
        "_last",
        "preemptions",
        "_last_yielded",
    )

    def __init__(self, choices: list[int] | None = None, preemption_bound: int | None = None):
        self.choices = choices or []
        self.branching: list[int] = []
        self._pos = 0
        self._tasks: dict[int, Task] = {}
        #: If set, schedules that would preempt a runnable task more than
        #: this many times are pruned (CHESS-style context bounding).
        self.preemption_bound = preemption_bound
        self._last: Optional[Task] = None
        self.preemptions = 0
        self._last_yielded = False

    def reset(self) -> None:
        self._tasks.clear()
        self.branching = []
        self._pos = 0
        self._last = None
        self.preemptions = 0
        self._last_yielded = False

    def on_runnable(self, task: Task) -> None:
        self._tasks[task.tid] = task

    def requeue(self, task: Task) -> None:
        self._tasks[task.tid] = task

    def on_voluntary_yield(self, task: Task) -> None:
        if task is self._last:
            self._last_yielded = True

    def next(self) -> Optional[Task]:
        alive = sorted(
            (t for t in self._tasks.values() if t.state is TaskState.RUNNABLE),
            key=lambda t: t.tid,
        )
        if not alive:
            return None
        last = self._last
        if self._last_yielded and last is not None and len(alive) > 1:
            # The previous op was a Spin/Yield (no memory effect): force a
            # deterministic round-robin hand-off.  Sound stutter reduction
            # — re-running the spinner would only re-read unchanged state —
            # and the hand-off is free (no branch, no preemption charge),
            # which both keeps schedule spaces finite for spin-based
            # algorithms and prevents a budget-pinned spinner livelock.
            self._last_yielded = False
            later = [t for t in alive if t.tid > last.tid]
            picked = later[0] if later else alive[0]
            self._last = picked
            return picked
        self._last_yielded = False
        if (
            self.preemption_bound is not None
            and self.preemptions >= self.preemption_bound
            and last is not None
            and last.state is TaskState.RUNNABLE
        ):
            # Out of preemption budget: stay on the current task.
            self._last = last
            return last
        if len(alive) == 1:
            choice = 0
        else:
            idx = self._pos
            choice = self.choices[idx] if idx < len(self.choices) else 0
            self.branching.append(len(alive))
            self._pos += 1
            if choice >= len(alive):
                raise SchedulerError(
                    f"controlled choice {choice} out of range for {len(alive)} runnable tasks"
                )
        picked = alive[choice]
        if last is not None and picked is not last and last.state is TaskState.RUNNABLE:
            self.preemptions += 1
        self._last = picked
        return picked


class Scheduler:
    """Runs virtual threads one atomic op at a time.

    Parameters
    ----------
    policy:
        Scheduling policy; defaults to deterministic :class:`DesPolicy`.
    cost_model:
        Cycle accounting; defaults to the cache-coherence
        :class:`~repro.sim.costmodel.CostModel`.  Pass
        :class:`~repro.sim.costmodel.NullCostModel` for exploration runs.
    max_steps:
        Global op budget; exceeding it raises
        :class:`~repro.errors.StepLimitExceeded` (livelock guard).
    engine:
        Engine tier for the fused fast lane: ``'py'`` (pure-Python
        reference), ``'c'`` (compiled extension; raises
        :class:`~repro.errors.EngineUnavailableError` if the build is
        missing), ``'auto'`` (compiled when available), or ``None`` to
        defer to :func:`repro._engine.set_default_engine` /
        ``REPRO_ENGINE`` / ``auto``.  Both the unobserved fast lane and
        the observed standard configuration (DesPolicy + CostModel with
        hooks/audit/alloc collectors) are affected; non-default
        policies, cost models, and custom audit types always run pure
        Python.
    """

    def __init__(
        self,
        policy: SchedulingPolicy | None = None,
        cost_model: CostModel | NullCostModel | None = None,
        max_steps: int = 50_000_000,
        processors: int | None = None,
        engine: str | None = None,
    ):
        if engine is not None:
            from .. import _engine

            if engine not in _engine.ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; expected one of {_engine.ENGINES}"
                )
        self.engine = engine
        self.policy = policy or DesPolicy()
        self.cost = cost_model if cost_model is not None else CostModel()
        self.max_steps = max_steps
        #: Hardware-parallelism limit: with ``processors=N`` at most N
        #: tasks make progress per unit of simulated time (the paper's
        #: "1000 coroutines on N threads" configurations).  ``None``
        #: means one processor per task.
        #:
        #: Multiplexing is *cooperative*, as for real coroutines (§2): a
        #: task bound to a processor runs until it parks or finishes;
        #: only then does the processor pick up another runnable task.
        #: Tasks never interleave mid-operation on one processor — the
        #: property that makes a single-threaded producer/consumer pair
        #: rendezvous without ever poisoning a cell, exactly like the
        #: real runtime.
        self.processors = processors
        self._proc_free: list[int] = [0] * processors if processors else []
        #: Runnable tasks waiting for a processor (cooperative mode).
        self._unbound: deque[Task] = deque()
        #: Tasks currently bound to a processor (cooperative mode).
        self._bound: set[int] = set()
        self.tasks: list[Task] = []
        self.total_steps = 0
        self._next_tid = 0
        self._hooks: list[Callable[["Scheduler", Task, Op], None]] = []
        self.alloc_stats: Any = None  # duck-typed .record(tag, units)
        self._live = 0  # tasks not yet DONE/FAILED

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator[Any, Any, Any], name: str | None = None) -> Task:
        """Register a generator as a new runnable virtual thread."""

        task = Task(self._next_tid, gen, name)
        self._next_tid += 1
        self.tasks.append(task)
        self._live += 1
        self._make_runnable(task)
        return task

    def _make_runnable(self, task: Task) -> None:
        """Route a runnable task to a processor or the wait queue."""

        if self.processors is None:
            self.policy.on_runnable(task)
            return
        if len(self._bound) < self.processors:
            self._bind(task)
        else:
            self._unbound.append(task)

    def _bind(self, task: Task) -> None:
        free_at = heapq.heappop(self._proc_free)
        if free_at > task.clock:
            task.clock = free_at
        self._bound.add(task.tid)
        self.policy.on_runnable(task)

    def _unbind(self, task: Task) -> None:
        self._bound.discard(task.tid)
        heapq.heappush(self._proc_free, task.clock)
        if self._unbound:
            self._bind(self._unbound.popleft())

    def add_hook(self, hook: Callable[["Scheduler", Task, Op], None]) -> None:
        """Register a per-op observer (invariant checkers, tracers)."""

        self._hooks.append(hook)

    def remove_hook(self, hook: Callable[["Scheduler", Task, Op], None]) -> None:
        """Detach a previously added hook; unknown hooks are ignored.

        With the last hook removed (and no audit/alloc collectors
        attached) the scheduler regains the fused fast path — attaching
        observability is fully reversible, cost included.
        """

        try:
            self._hooks.remove(hook)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, raise_errors: bool = True) -> None:
        """Run until every task finished; raise on deadlock or livelock.

        With ``raise_errors`` (default) the first task failure that is not
        an :class:`~repro.errors.Interrupted` (an *expected* cancellation
        outcome) is re-raised.

        The loop is chosen **once**, here — not per op: the unobserved
        standard configuration (:class:`DesPolicy` + :class:`CostModel`,
        no hooks, no cost audit, no alloc collector) runs the fused
        :meth:`_run_fast` loop, which inlines policy, cost model, and
        memory-op application and pays zero per-op overhead for the
        absent observers.  An *observed* standard configuration (hooks,
        an :class:`~repro.sim.costmodel.OpCostAudit` tap, or an alloc
        collector attached, but still DesPolicy + CostModel) runs the
        per-op general loop — natively when the compiled tier is
        selected (:func:`repro._engine.native_run_general`, which keeps
        scheduling/charge/dispatch in C and calls out to Python only at
        the observation points), in pure Python otherwise.  Any other
        configuration (custom policies, cost models, or audit types)
        always runs the Python general loop.  All loops produce
        bit-identical schedules, clocks, and results.
        """

        if type(self.policy) is DesPolicy and type(self.cost) is CostModel:
            audit = self.cost.audit
            from .. import _engine

            if not self._hooks and self.alloc_stats is None and audit is None:
                if _engine.resolve(self.engine) == "c":
                    _engine.native_run(self)
                else:
                    self._run_fast()
            elif (audit is None or type(audit) is OpCostAudit) and _engine.resolve(
                self.engine
            ) == "c":
                _engine.native_run_general(self)
            else:
                self._run_general()
        else:
            self._run_general()
        if raise_errors:
            for task in self.tasks:
                if task.state is TaskState.FAILED and not isinstance(task.error, Interrupted):
                    raise task.error  # type: ignore[misc]

    def _run_general(self) -> None:
        """The observable loop: one `_step_task` (hooks included) per op."""

        policy = self.policy
        limit = self.max_steps
        while self._live:
            task = policy.next()
            if task is None:
                if self._unbound:  # defensive: bind and keep going
                    self._bind(self._unbound.popleft())
                    continue
                parked = [t.name for t in self.tasks if t.state is TaskState.PARKED]
                if parked:
                    raise DeadlockError(parked)
                break  # spawned nothing / all finished
            # Run this task while the policy allows, then requeue it.
            while True:
                self._step_task(task)
                if self.total_steps > limit:
                    raise StepLimitExceeded(limit)
                if task.state is not TaskState.RUNNABLE:
                    break
                if not policy.keep_running(task):
                    policy.requeue(task)
                    break

    def _run_fast(self) -> None:
        """Fused hot loop: DesPolicy + CostModel inlined, no observers.

        Semantically identical to :meth:`_run_general` — same heap
        discipline, same cost arithmetic, same jitter LCG sequence, same
        park/unpark protocol — with every per-op method call flattened
        into one frame.  While one task runs a *stint* (consecutive ops
        the DES policy allows), its clock, op count, and resume
        value/exception live in locals and are written back only when
        the stint ends; global engine state (step counter, jitter LCG)
        is restored in ``finally`` so errors and post-run observers see
        exact state.
        """

        cost = self.cost
        policy = self.policy
        heap = policy._heap
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        p = cost.p
        read_hit = p.read_hit
        write_cost = p.write
        rmw_cost = p.rmw
        remote_miss = p.remote_miss
        read_miss = p.read_miss
        park_cost = p.park
        unpark_cost = p.unpark
        wake_latency = p.wake_latency
        spin_cost = p.spin
        yield_cost = p.yield_
        alloc_cost = p.alloc
        jit = p.jitter
        jit1 = jit + 1
        rm1 = remote_miss + 1
        rd1 = read_miss + 1
        lcg = cost._lcg
        # Jitter draws come from pre-generated LCG state blocks; ``lcg``
        # always tracks the last *consumed* state, so syncing it back is
        # exact and unconsumed states are simply regenerated next time.
        refill = lcg_batch
        BATCH = LCG_BATCH
        buf: list[int] = []
        bufi = BATCH
        RUNNABLE = TaskState.RUNNABLE
        PARKED = TaskState.PARKED
        DONE = TaskState.DONE
        FAILED = TaskState.FAILED
        procs = self.processors
        unbound = self._unbound
        limit = self.max_steps
        steps = self.total_steps
        # The previous stint's requeue entry: pushed and the new minimum
        # popped in a single sift (heappushpop) instead of push + pop.
        pending = None
        try:
            while self._live:
                # -- policy.next(), inlined ----------------------------
                # Entries are (clock, tid, task) from spawns/wakeups, or
                # the wide stint form (clock, tid, task, steps, value,
                # exc) pushed by the stint-end path below, which carries
                # the resume state in the entry so a descheduled task
                # costs one attribute write (``clock``, needed by the
                # staleness check) instead of four.
                entry = None
                if pending is not None:
                    e = heappushpop(heap, pending) if heap else pending
                    pending = None
                    t = e[2]
                    if t.state is RUNNABLE and t.clock == e[0]:
                        entry = e
                if entry is None:
                    while heap:
                        e = heappop(heap)
                        t = e[2]
                        if t.state is not RUNNABLE or t.clock != e[0]:
                            continue  # stale entry; a fresher one exists
                        entry = e
                        break
                if entry is None:
                    if unbound:  # defensive: bind and keep going
                        self._bind(unbound.popleft())
                        continue
                    parked = [t.name for t in self.tasks if t.state is PARKED]
                    if parked:
                        raise DeadlockError(parked)
                    break  # spawned nothing / all finished
                task = entry[2]
                gen = task.gen
                send = task.send_fn
                ttid = task.tid
                tcache = task.cache
                tclock = task.clock
                if len(entry) == 6:
                    tsteps = entry[3]
                    send_value = entry[4]
                    throw_exc = entry[5]
                else:
                    tsteps = task.steps
                    send_value = task.pending_value
                    throw_exc = task.pending_exc
                # While *task* runs, every other runnable task's clock is
                # frozen: the earliest competing clock only changes when
                # an unpark pushes a fresh entry.  And on this path every
                # live heap entry is valid — entries are pushed with the
                # task's current clock and a queued task's clock/state
                # never changes (only the *running* task mutates, and it
                # holds no entry) — so the heap top IS the next-earliest
                # runnable clock and the keep-running check reduces to
                # one int compare per op, refreshed only after wakeups.
                next_clock = heap[0][0] if heap else _INF
                while True:
                    # -- _step_task, inlined ---------------------------
                    steps += 1
                    try:
                        if throw_exc is not None:
                            exc = throw_exc
                            throw_exc = None
                            op = gen.throw(exc)
                        else:
                            value = send_value
                            send_value = None
                            op = send(value)
                    except StopIteration as stop:
                        task.state = DONE
                        task.value = stop.value
                        task.clock = tclock
                        task.steps = tsteps
                        task.pending_value = None
                        task.pending_exc = None
                        self._live -= 1
                        if procs is not None:
                            self._unbind(task)
                        if steps > limit:
                            raise StepLimitExceeded(limit)
                        break
                    except BaseException as exc:  # noqa: BLE001 - captured
                        task.state = FAILED
                        task.error = exc
                        task.clock = tclock
                        task.steps = tsteps
                        task.pending_value = None
                        task.pending_exc = None
                        self._live -= 1
                        if procs is not None:
                            self._unbind(task)
                        if steps > limit:
                            raise StepLimitExceeded(limit)
                        break
                    tsteps += 1
                    tp = type(op)
                    # -- cost.charge + apply_memory_op, fused ----------
                    if tp is Read:
                        cell = op.cell
                        line = cell.line
                        if jit:
                            if bufi == BATCH:
                                buf = refill(lcg)
                                bufi = 0
                            lcg = buf[bufi]
                            bufi += 1
                            base = read_hit + (lcg >> 33) % jit1
                        else:
                            base = read_hit
                        lw = line.last_writer
                        if lw is not None and lw != ttid:
                            loc = line.loc_id
                            wt = line.write_time
                            if wt > tcache.get(loc, -1):
                                miss = read_miss
                                if jit and read_miss:
                                    if bufi == BATCH:
                                        buf = refill(lcg)
                                        bufi = 0
                                    lcg = buf[bufi]
                                    bufi += 1
                                    miss += (lcg >> 33) % rd1
                                tcache[loc] = wt
                                # A read cannot complete before the owning
                                # writer's store retires.
                                avail = line.avail_time
                                if avail > tclock:
                                    tclock = avail
                                tclock += base + miss
                            else:
                                tclock += base
                        else:
                            tclock += base
                        send_value = cell.value
                    elif tp is Faa or tp is Cas or tp is GetAndSet or tp is Write:
                        cell = op.cell
                        line = cell.line
                        start = tclock
                        at = line.avail_time
                        if at > start:
                            start = at
                        if jit:
                            if bufi == BATCH:
                                buf = refill(lcg)
                                bufi = 0
                            lcg = buf[bufi]
                            bufi += 1
                            base = (lcg >> 33) % jit1
                        else:
                            base = 0
                        base += write_cost if tp is Write else rmw_cost
                        lw = line.last_writer
                        if lw is not None and lw != ttid:
                            miss = remote_miss
                            if jit and remote_miss:
                                if bufi == BATCH:
                                    buf = refill(lcg)
                                    bufi = 0
                                lcg = buf[bufi]
                                bufi += 1
                                miss += (lcg >> 33) % rm1
                            end = start + base + miss
                        else:
                            end = start + base
                        tclock = end
                        line.avail_time = end
                        line.last_writer = ttid
                        line.write_time = end
                        tcache[line.loc_id] = end
                        if tp is Faa:
                            old = cell.value
                            cell.value = old + op.delta
                            send_value = old
                        elif tp is Cas:
                            if cell.compare(cell.value, op.expected):
                                cell.value = op.update
                                send_value = True
                            else:
                                send_value = False
                        elif tp is Write:
                            cell.value = op.value
                        else:  # GetAndSet
                            old = cell.value
                            cell.value = op.value
                            send_value = old
                    elif tp is Work:
                        tclock += op.cycles
                    elif tp is SampledWork:
                        # Drawn from the sampler's own RNG stream, not
                        # the jitter LCG; zero draws charge zero cycles.
                        tclock += op.sampler.sample()
                    elif tp is Yield:
                        tclock += yield_cost
                    elif tp is Spin:
                        # DesPolicy.on_voluntary_yield is the base-class
                        # no-op: nothing to call on the fast path.
                        tclock += spin_cost
                    elif tp is ParkTask:
                        tclock += park_cost
                        if task.interrupt_pending:
                            task.interrupt_pending = False
                            throw_exc = Interrupted()
                        elif task.retry_pending:
                            task.retry_pending = False
                            throw_exc = RetryWakeup()
                        elif task.unpark_pending:
                            task.unpark_pending = False  # permit consumed
                        else:
                            task.state = PARKED
                            task.park_count += 1
                            task.clock = tclock
                            task.steps = tsteps
                            task.pending_value = send_value
                            task.pending_exc = throw_exc
                            if procs is not None:
                                self._unbind(task)
                            if steps > limit:
                                raise StepLimitExceeded(limit)
                            break
                    elif tp is UnparkTask:
                        tclock += unpark_cost
                        target = op.task
                        if target.state is PARKED:
                            if op.interrupt:
                                target.pending_exc = Interrupted()
                            elif op.retry:
                                target.pending_exc = RetryWakeup()
                            target.state = RUNNABLE
                            # cost.wake, inlined
                            wbase = target.clock
                            if tclock > wbase:
                                wbase = tclock
                            target.clock = wbase + wake_latency
                            self._make_runnable(target)
                            # The fresh entry may now be the earliest.
                            next_clock = heap[0][0] if heap else _INF
                        elif op.interrupt:
                            target.interrupt_pending = True
                        elif op.retry:
                            target.retry_pending = True
                        else:
                            target.unpark_pending = True
                    elif tp is CurrentTask:
                        send_value = task
                    elif tp is Alloc:
                        tclock += alloc_cost
                    elif tp is Label:
                        pass
                    else:
                        # Unknown op subtype: fall back to the general
                        # handlers (sync task + LCG state around the call).
                        task.clock = tclock
                        task.pending_value = send_value
                        cost._lcg = lcg
                        cost.charge(task, op)
                        self._dispatch(task, op)
                        lcg = cost._lcg
                        bufi = BATCH  # cost advanced the LCG; drop the block
                        tclock = task.clock
                        send_value = task.pending_value
                        next_clock = heap[0][0] if heap else _INF
                    if steps > limit:
                        task.clock = tclock
                        task.steps = tsteps
                        task.pending_value = send_value
                        task.pending_exc = throw_exc
                        raise StepLimitExceeded(limit)
                    # -- keep_running + requeue, inlined ---------------
                    if tclock > next_clock:
                        # Wide entry: resume state rides in the heap entry.
                        # Only ``clock`` must be written back — the pop
                        # paths check ``t.clock == entry[0]`` for
                        # staleness, and an UnparkTask against a RUNNABLE
                        # task touches only the ``*_pending`` flags.
                        task.clock = tclock
                        pending = (tclock, ttid, task, tsteps, send_value, throw_exc)
                        break
        finally:
            self.total_steps = steps
            cost._lcg = lcg

    def step(self) -> bool:
        """Execute exactly one op of one task; ``False`` when nothing ran."""

        task = self.policy.next()
        if task is None:
            return False
        self._step_task(task)
        if task.state is TaskState.RUNNABLE:
            self.policy.requeue(task)
        return True

    @property
    def makespan(self) -> int:
        """Simulated completion time: the maximum task clock."""

        return max((t.clock for t in self.tasks), default=0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _step_task(self, task: Task) -> None:
        self.total_steps += 1
        try:
            if task.pending_exc is not None:
                exc = task.pending_exc
                task.pending_exc = None
                op = task.gen.throw(exc)
            else:
                value = task.pending_value
                task.pending_value = None
                op = task.gen.send(value)
        except StopIteration as stop:
            task.state = TaskState.DONE
            task.value = stop.value
            self._live -= 1
            self.policy.forget(task)
            if self.processors is not None:
                self._unbind(task)
            return
        except BaseException as exc:  # noqa: BLE001 - task failure captured
            task.state = TaskState.FAILED
            task.error = exc
            self._live -= 1
            self.policy.forget(task)
            if self.processors is not None:
                self._unbind(task)
            return
        task.steps += 1
        self.cost.charge(task, op)
        op_type = type(op)
        if op_type is Spin:
            # Spin is a contract: the task will only re-read unchanged
            # state until someone else writes, so forcing a hand-off is a
            # sound stutter reduction.  Plain Yield carries no such
            # contract and must stay a normal scheduling point.
            self.policy.on_voluntary_yield(task)
        self._dispatch(task, op)
        if self.processors is not None and task.state is not TaskState.RUNNABLE:
            self._unbind(task)
        if self._hooks:
            for hook in self._hooks:
                hook(self, task, op)

    def _dispatch(self, task: Task, op: Op) -> None:
        apply = MEMORY_OP_APPLIERS.get(type(op))
        if apply is not None:
            task.pending_value = apply(op)
            return
        t = type(op)
        if t is ParkTask:
            if task.interrupt_pending:
                task.interrupt_pending = False
                task.pending_exc = Interrupted()
            elif task.retry_pending:
                task.retry_pending = False
                task.pending_exc = RetryWakeup()
            elif task.unpark_pending:
                task.unpark_pending = False  # permit consumed; no suspension
            else:
                task.state = TaskState.PARKED
                task.park_count += 1
            return
        if t is UnparkTask:
            target: Task = op.task  # type: ignore[attr-defined]
            if target.state is TaskState.PARKED:
                if op.interrupt:  # type: ignore[attr-defined]
                    target.pending_exc = Interrupted()
                elif op.retry:  # type: ignore[attr-defined]
                    target.pending_exc = RetryWakeup()
                target.state = TaskState.RUNNABLE
                self.cost.wake(target, task.clock)
                self._make_runnable(target)
            elif op.interrupt:  # type: ignore[attr-defined]
                target.interrupt_pending = True
            elif op.retry:  # type: ignore[attr-defined]
                target.retry_pending = True
            else:
                target.unpark_pending = True
            return
        if t is CurrentTask:
            task.pending_value = task
            return
        if t is Alloc:
            stats = self.alloc_stats
            if stats is not None:
                stats.record(op.tag, op.units)  # type: ignore[attr-defined]
            return
        # Yield / Spin / Work / Label: no effect beyond the charged cost.


def run_all(
    gens: Iterable[Generator[Any, Any, Any]],
    policy: SchedulingPolicy | None = None,
    cost_model: CostModel | NullCostModel | None = None,
    max_steps: int = 50_000_000,
    names: Iterable[str] | None = None,
) -> Scheduler:
    """Convenience: spawn all generators, run to completion, return scheduler."""

    sched = Scheduler(policy=policy, cost_model=cost_model, max_steps=max_steps)
    if names is None:
        for gen in gens:
            sched.spawn(gen)
    else:
        for gen, name in zip(gens, names):
            sched.spawn(gen, name)
    sched.run()
    return sched
