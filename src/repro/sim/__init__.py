"""The simulated multicore: scheduler, cost model, exploration, tracing."""

from .costmodel import DEFAULT_PARAMS, CostModel, CostParams, NullCostModel
from .explore import ExplorationFailure, ExplorationResult, explore, explore_random, replay
from .scheduler import (
    ControlledPolicy,
    DesPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
    run_all,
)
from .sync import SimMutex
from .tasks import Task, TaskState
from .trace import LabelCollector, OpCounter, SpinCounter, Tracer

__all__ = [
    "CostModel",
    "CostParams",
    "NullCostModel",
    "DEFAULT_PARAMS",
    "Scheduler",
    "SchedulingPolicy",
    "DesPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "ControlledPolicy",
    "run_all",
    "Task",
    "TaskState",
    "SimMutex",
    "explore",
    "explore_random",
    "replay",
    "ExplorationResult",
    "ExplorationFailure",
    "Tracer",
    "OpCounter",
    "SpinCounter",
    "LabelCollector",
]
