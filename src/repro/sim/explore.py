"""Interleaving exploration: a miniature Lincheck for the op protocol.

The channel algorithms expose one shared-memory access per ``yield``, so a
schedule is fully determined by the sequence of "which task runs next"
choices.  This module enumerates such schedules:

* :func:`explore` — exhaustive, stateless DFS over scheduling choices,
  optionally with a CHESS-style *preemption bound* (most concurrency bugs
  manifest with very few preemptions, which keeps small scenarios tractable);
* :func:`explore_random` — seeded random schedules, for larger scenarios
  where exhaustive enumeration explodes.

A *scenario* is a builder ``build(sched) -> ctx`` that spawns fresh tasks on
the given scheduler (state must be rebuilt per schedule — exploration replays
from scratch).  An optional ``check(ctx, sched)`` validates each completed
execution (invariants, linearizability); any exception it raises is wrapped
in :class:`ExplorationFailure` together with the reproducing choice sequence,
so a failing race is replayable with :func:`replay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import ReproError
from .costmodel import NullCostModel
from .scheduler import ControlledPolicy, RandomPolicy, Scheduler

__all__ = ["explore", "explore_random", "replay", "ExplorationResult", "ExplorationFailure"]

Builder = Callable[[Scheduler], Any]
Checker = Callable[[Any, Scheduler], None]


class ExplorationFailure(ReproError):
    """A schedule produced a failure; carries the reproducing choices."""

    def __init__(self, choices: list[int], schedule_index: int, cause: BaseException):
        super().__init__(
            f"schedule #{schedule_index} failed with {type(cause).__name__}: {cause}\n"
            f"  reproduce with replay(build, choices={choices!r})"
        )
        self.choices = choices
        self.schedule_index = schedule_index
        self.cause = cause


@dataclass
class ExplorationResult:
    """Summary of an exploration run."""

    schedules: int = 0
    exhausted: bool = False
    #: Deepest decision stack seen (diagnostic).
    max_depth: int = 0
    #: Branching factors of the last schedule (diagnostic).
    last_branching: list[int] = field(default_factory=list)


def _run_one(
    build: Builder,
    check: Optional[Checker],
    policy: ControlledPolicy | RandomPolicy,
    max_steps: int,
    schedule_index: int,
    choices_for_report: list[int],
) -> None:
    sched = Scheduler(policy=policy, cost_model=NullCostModel(), max_steps=max_steps)
    try:
        ctx = build(sched)
        sched.run(raise_errors=True)
        if check is not None:
            check(ctx, sched)
    except BaseException as exc:  # noqa: BLE001 - rewrapped with repro info
        raise ExplorationFailure(choices_for_report, schedule_index, exc) from exc


def explore(
    build: Builder,
    check: Optional[Checker] = None,
    max_schedules: int = 20_000,
    max_steps: int = 100_000,
    preemption_bound: Optional[int] = None,
) -> ExplorationResult:
    """Exhaustively enumerate schedules of a scenario (stateless DFS).

    Returns an :class:`ExplorationResult`; ``exhausted`` is ``True`` when
    every schedule (within the preemption bound, if any) was covered before
    hitting ``max_schedules``.
    """

    result = ExplorationResult()
    choices: list[int] = []
    while True:
        policy = ControlledPolicy(choices=list(choices), preemption_bound=preemption_bound)
        _run_one(build, check, policy, max_steps, result.schedules, list(choices))
        result.schedules += 1
        branching = policy.branching
        result.max_depth = max(result.max_depth, len(branching))
        result.last_branching = branching
        if result.schedules >= max_schedules:
            return result  # budget exhausted, not fully explored
        # Advance to the lexicographically-next untried choice sequence.
        depth = len(branching)
        padded = list(choices[:depth]) + [0] * (depth - len(choices[:depth]))
        i = depth - 1
        while i >= 0 and padded[i] + 1 >= branching[i]:
            i -= 1
        if i < 0:
            result.exhausted = True
            return result
        choices = padded[:i] + [padded[i] + 1]


def explore_random(
    build: Builder,
    check: Optional[Checker] = None,
    schedules: int = 200,
    seed: int = 0,
    max_steps: int = 1_000_000,
) -> ExplorationResult:
    """Run ``schedules`` random interleavings with distinct derived seeds."""

    result = ExplorationResult()
    for i in range(schedules):
        policy = RandomPolicy(seed=seed * 1_000_003 + i)
        _run_one(build, check, policy, max_steps, i, [seed * 1_000_003 + i])
        result.schedules += 1
    result.exhausted = True
    return result


def replay(
    build: Builder,
    choices: list[int],
    check: Optional[Checker] = None,
    max_steps: int = 1_000_000,
) -> Scheduler:
    """Re-run a single schedule from a recorded choice sequence (debugging)."""

    policy = ControlledPolicy(choices=list(choices))
    sched = Scheduler(policy=policy, cost_model=NullCostModel(), max_steps=max_steps)
    ctx = build(sched)
    sched.run(raise_errors=True)
    if check is not None:
        check(ctx, sched)
    return sched
