"""Tracing and per-op statistics hooks for the simulated scheduler.

.. deprecated::
    These classes are kept for their small, convenient API, but they are
    now thin shims over the unified observability layer
    (:mod:`repro.obs`): each one owns a private
    :class:`~repro.obs.events.EventBus`, feeds it through the shared
    op→event translation (:class:`~repro.obs.events.SchedulerObserver`),
    and subscribes to the events it cares about.  There is exactly one
    hook path in the repository; new code should subscribe to an
    :class:`~repro.obs.events.EventBus` (or use
    :class:`~repro.obs.session.ObsSession`) directly.

Hooks observe every executed op (after its effect was applied) and are
used for three purposes in this repository:

* debugging failing explorations (:class:`Tracer` ring buffer);
* progress-guarantee accounting (:class:`SpinCounter` verifies that the
  rendezvous channel never blocks in a spin-wait, Section 4.2);
* benchmark statistics (:class:`OpCounter` — op mix, CAS failure rate).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque

from ..concurrent.ops import Cas, Op, Spin
from ..obs.events import EventBus, LabelEvent, OpEvent, SchedulerObserver
from .scheduler import Scheduler
from .tasks import Task

__all__ = ["Tracer", "OpCounter", "SpinCounter", "LabelCollector"]


class _EventShim:
    """Base for scheduler hooks implemented as event-bus subscribers."""

    def __init__(self) -> None:
        self._bus = EventBus()
        self._observer = SchedulerObserver(self._bus)
        self._subscribe(self._bus)

    def _subscribe(self, bus: EventBus) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, sched: Scheduler, task: Task, op: Op) -> None:
        self._observer(sched, task, op)


class Tracer(_EventShim):
    """Ring buffer of the last ``capacity`` executed ops.

    Attach with ``sched.add_hook(tracer)``; render with :meth:`format`.

    .. deprecated:: shim over :class:`repro.obs.events.EventBus`.
    """

    def __init__(self, capacity: int = 256):
        self.events: Deque[tuple[int, str, str]] = deque(maxlen=capacity)
        self._step = 0
        super().__init__()

    def _subscribe(self, bus: EventBus) -> None:
        bus.subscribe(OpEvent, self._on_op)

    def _on_op(self, event: OpEvent) -> None:
        self._step += 1
        self.events.append((self._step, event.source, repr(event.op)))

    def format(self) -> str:
        """Human-readable rendering of the buffered tail of the execution."""

        return "\n".join(f"{step:6d} {name:16s} {op}" for step, name, op in self.events)


class OpCounter(_EventShim):
    """Counts ops by kind and CAS successes/failures.

    .. deprecated:: shim over :class:`repro.obs.events.EventBus`.
    """

    def __init__(self) -> None:
        self.by_kind: Counter[str] = Counter()
        self.cas_success = 0
        self.cas_failure = 0
        super().__init__()

    def _subscribe(self, bus: EventBus) -> None:
        bus.subscribe(OpEvent, self._on_op)

    def _on_op(self, event: OpEvent) -> None:
        op = event.op
        self.by_kind[op.kind] += 1
        if type(op) is Cas:
            if event.result:
                self.cas_success += 1
            else:
                self.cas_failure += 1

    @property
    def cas_failure_rate(self) -> float:
        total = self.cas_success + self.cas_failure
        return self.cas_failure / total if total else 0.0


class SpinCounter(_EventShim):
    """Counts :class:`~repro.concurrent.ops.Spin` iterations per reason.

    The rendezvous channel must never spin-wait (obstruction freedom,
    Section 4.2); the buffered channel may spin only in the documented
    ``receive()`` / ``expandBuffer()`` race.  Tests assert both from the
    per-reason counts collected here.

    .. deprecated:: shim over :class:`repro.obs.events.EventBus`.
    """

    def __init__(self) -> None:
        self.by_reason: Counter[str] = Counter()
        self.total = 0
        super().__init__()

    def _subscribe(self, bus: EventBus) -> None:
        bus.subscribe(OpEvent, self._on_op)

    def _on_op(self, event: OpEvent) -> None:
        op = event.op
        if type(op) is Spin:
            self.total += 1
            self.by_reason[op.reason] += 1


class LabelCollector(_EventShim):
    """Collects :class:`~repro.concurrent.ops.Label` markers in order.

    .. deprecated:: shim over :class:`repro.obs.events.EventBus`.
    """

    def __init__(self) -> None:
        self.labels: list[tuple[str, str, Any]] = []
        super().__init__()

    def _subscribe(self, bus: EventBus) -> None:
        bus.subscribe(LabelEvent, self._on_label)

    def _on_label(self, event: LabelEvent) -> None:
        self.labels.append((event.source, event.name, event.payload))

    def names(self) -> list[str]:
        return [name for _, name, _ in self.labels]
