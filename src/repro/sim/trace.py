"""Tracing and per-op statistics hooks for the simulated scheduler.

Hooks observe every executed op (after its effect was applied) and are used
for three purposes in this repository:

* debugging failing explorations (:class:`Tracer` ring buffer);
* progress-guarantee accounting (:class:`SpinCounter` verifies that the
  rendezvous channel never blocks in a spin-wait, Section 4.2);
* benchmark statistics (:class:`OpCounter` — op mix, CAS failure rate).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque

from ..concurrent.ops import Cas, Label, Op, Spin
from .scheduler import Scheduler
from .tasks import Task

__all__ = ["Tracer", "OpCounter", "SpinCounter", "LabelCollector"]


class Tracer:
    """Ring buffer of the last ``capacity`` executed ops.

    Attach with ``sched.add_hook(tracer)``; render with :meth:`format`.
    """

    def __init__(self, capacity: int = 256):
        self.events: Deque[tuple[int, str, str]] = deque(maxlen=capacity)
        self._step = 0

    def __call__(self, sched: Scheduler, task: Task, op: Op) -> None:
        self._step += 1
        self.events.append((self._step, task.name, repr(op)))

    def format(self) -> str:
        """Human-readable rendering of the buffered tail of the execution."""

        return "\n".join(f"{step:6d} {name:16s} {op}" for step, name, op in self.events)


class OpCounter:
    """Counts ops by kind and CAS successes/failures."""

    def __init__(self) -> None:
        self.by_kind: Counter[str] = Counter()
        self.cas_success = 0
        self.cas_failure = 0

    def __call__(self, sched: Scheduler, task: Task, op: Op) -> None:
        self.by_kind[op.kind] += 1
        if type(op) is Cas:
            # The CAS result was just stored as the task's pending value.
            if task.pending_value:
                self.cas_success += 1
            else:
                self.cas_failure += 1

    @property
    def cas_failure_rate(self) -> float:
        total = self.cas_success + self.cas_failure
        return self.cas_failure / total if total else 0.0


class SpinCounter:
    """Counts :class:`~repro.concurrent.ops.Spin` iterations per reason.

    The rendezvous channel must never spin-wait (obstruction freedom,
    Section 4.2); the buffered channel may spin only in the documented
    ``receive()`` / ``expandBuffer()`` race.  Tests assert both from the
    per-reason counts collected here.
    """

    def __init__(self) -> None:
        self.by_reason: Counter[str] = Counter()
        self.total = 0

    def __call__(self, sched: Scheduler, task: Task, op: Op) -> None:
        if type(op) is Spin:
            self.total += 1
            self.by_reason[op.reason] += 1


class LabelCollector:
    """Collects :class:`~repro.concurrent.ops.Label` markers in order."""

    def __init__(self) -> None:
        self.labels: list[tuple[str, str, Any]] = []

    def __call__(self, sched: Scheduler, task: Task, op: Op) -> None:
        if type(op) is Label:
            self.labels.append((task.name, op.name, op.payload))

    def names(self) -> list[str]:
        return [name for _, name, _ in self.labels]
