"""Cache-coherence cost model for the simulated multicore.

This module is the heart of the DESIGN.md substitution: it replaces the
paper's 4-socket Xeon with an analytical model that preserves the three
synchronization regimes the evaluation distinguishes:

1. **FAA-based designs** pay a bounded number of RMWs per element.  RMWs on
   the *same* cell serialize (a cache line is owned by one core at a time),
   but each op completes in one attempt, so throughput degrades gently.
2. **CAS-retry designs** (Michael-Scott, Scherer-Lea-Scott) additionally pay
   for *failed* CAS attempts — a failed CAS still acquires the line
   exclusively — so wasted line transfers grow with contention.
3. **Coarse-lock designs** (Go, legacy Kotlin buffered) serialize entire
   critical sections: a waiter cannot start its section before the holder's
   release *time*, so added threads add queueing delay, not throughput.

Mechanics
---------
Each task has a local clock.  Each cell records its ``last_writer``, the
simulated time of its last write, and ``avail_time`` — the earliest time the
next conflicting RMW/write on that line may begin.

* A **read** costs ``read_hit``; if another task wrote the line since this
  task last observed it, a ``remote_miss`` is added (the line must be
  fetched) and the task's cache map is refreshed.
* A **write/RMW** starts at ``max(task.clock, cell.avail_time)`` — conflicting
  exclusive owners serialize — costs its base plus a ``remote_miss`` if the
  task was not the last writer, and then advances ``cell.avail_time``.
* **park/unpark** charge fixed scheduling costs; the wake latency is added to
  the woken task by the scheduler.
* ``Work(n)`` advances the clock by exactly ``n`` — the paper's
  "non-contended loop cycles" between operations.

Absolute constants are order-of-magnitude estimates of x86 costs in cycles
(L1 hit ≈ 1–4, cross-socket coherence miss ≈ tens-to-hundreds); EXPERIMENTS.md
records a sensitivity note.  The *shape* conclusions are stable under ±2×
perturbation of the constants (see ``tests/test_costmodel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..concurrent.cells import Cell
from ..concurrent.ops import (
    Alloc,
    Cas,
    ClockSync,
    CurrentTask,
    Faa,
    GetAndSet,
    Label,
    Op,
    ParkTask,
    Read,
    SampledWork,
    Spin,
    UnparkTask,
    Work,
    Write,
    Yield,
)
from .tasks import Task

__all__ = ["CostParams", "CostModel", "NullCostModel", "DEFAULT_PARAMS", "OpCostAudit"]


class OpCostAudit:
    """Per-op cost breakdown, filled by :class:`CostModel` when attached.

    The contention profiler (:mod:`repro.obs.profiler`) sets
    ``cost_model.audit`` to an instance of this class; the model then
    decomposes every memory op's charge into

    * ``stall`` — cycles spent waiting for the cache line's previous
      exclusive owner to release it (serialization);
    * ``miss`` — cycles of the coherence transfer itself (RFO or shared
      read miss, including its jitter share);
    * ``base`` — the op's intrinsic cost (read/write/RMW latency).

    ``cell`` is the memory location charged, or ``None`` for ops with no
    shared-memory effect (``Work``, ``Park``, …).  The record is
    overwritten on every charge; scheduler hooks read it immediately
    after the op executes.  When no audit is attached the model pays one
    ``is None`` test per op — the pay-for-use contract.
    """

    __slots__ = ("cell", "stall", "miss", "base")

    def __init__(self) -> None:
        self.cell = None
        self.stall = 0
        self.miss = 0
        self.base = 0

    @property
    def total(self) -> int:
        return self.stall + self.miss + self.base


@dataclass(frozen=True)
class CostParams:
    """Cycle costs of the simulated machine (see module docstring)."""

    read_hit: int = 1
    write: int = 3
    rmw: int = 10
    #: Exclusive-ownership (RFO) transfer for a write/RMW on a line another
    #: core owns (cross-socket average).
    remote_miss: int = 40
    #: Read miss served cache-to-cache into the Shared state.  Much cheaper
    #: than an RFO: no exclusivity needed, and concurrent readers amortize
    #: the transfer.  Distinguishing the two is what keeps the sender's
    #: FAA-to-deposit window (which contains a *read* of the opposite
    #: counter) below the counter's FAA service interval, as on real
    #: hardware — otherwise receivers systematically poison (§4.2).
    read_miss: int = 12
    #: Suspending a coroutine: capture the continuation and return to the
    #: dispatcher loop (user-space, but still hundreds of cycles).
    park: int = 300
    #: Resuming a coroutine from the waker's side: enqueue it on the
    #: dispatcher.
    unpark: int = 150
    #: Latency between the unpark and the woken coroutine's first step
    #: (dispatcher queue round-trip).  Keeping this realistic is what
    #: makes the suspension-rich steady state of §5 sticky.
    wake_latency: int = 600
    spin: int = 4
    yield_: int = 2
    #: Object allocation (bump pointer + eventual GC amortization).
    alloc: int = 15
    #: Maximum extra cycles of deterministic timing jitter per memory op.
    #: Real machines have timing variance; a perfectly periodic simulator
    #: can drive the obstruction-free rendezvous algorithm into the §4.2
    #: mutual-poisoning orbit (a send/receive pair re-poisoning forever).
    #: A few cycles of seeded pseudo-random skew break such orbits while
    #: keeping every run bit-reproducible.  Set to 0 for exact costs.
    jitter: int = 3

    def scaled(self, factor: float) -> "CostParams":
        """Return params with every *coherence* cost scaled by ``factor``.

        Used by the sensitivity tests: scaling ``remote_miss``/``rmw``
        together must not change who wins in Figure 5.
        """

        return CostParams(
            read_hit=self.read_hit,
            write=self.write,
            rmw=max(1, int(self.rmw * factor)),
            remote_miss=max(1, int(self.remote_miss * factor)),
            read_miss=max(1, int(self.read_miss * factor)),
            park=self.park,
            unpark=self.unpark,
            wake_latency=self.wake_latency,
            spin=self.spin,
            yield_=self.yield_,
            alloc=self.alloc,
            jitter=self.jitter,
        )


DEFAULT_PARAMS = CostParams()


# ----------------------------------------------------------------------
# Batched jitter-LCG states.  The LCG state stream is fixed by the seed
# alone — which op consumes a draw never changes the stream — so the
# scheduler's fast loop pulls states from a pre-generated block instead
# of paying two big-int multiplies per draw.  With numpy the whole block
# is one vectorized affine step: state_i = A^i * s + (A^{i-1}+..+1) * C
# (mod 2**64, native uint64 wraparound); without it a plain loop
# produces the identical list at the same per-draw cost as the inline
# update (no regression, just no batching win).
# ----------------------------------------------------------------------

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = 0xFFFFFFFFFFFFFFFF
LCG_BATCH = 4096

try:  # pragma: no cover - exercised indirectly via the fast path
    import numpy as _np
except Exception:  # pragma: no cover - numpy is in the standard image
    _np = None

if _np is not None:
    _apows = []
    _ccums = []
    _a, _c = 1, 0
    for _ in range(LCG_BATCH):
        _a = (_a * _LCG_A) & _LCG_MASK
        _c = (_c * _LCG_A + _LCG_C) & _LCG_MASK
        _apows.append(_a)
        _ccums.append(_c)
    _LCG_APOW = _np.array(_apows, dtype=_np.uint64)
    _LCG_CCUM = _np.array(_ccums, dtype=_np.uint64)
    del _apows, _ccums, _a, _c

    def lcg_batch(state: int) -> list[int]:
        """The next :data:`LCG_BATCH` LCG states after *state*, in order."""

        return (_LCG_APOW * _np.uint64(state) + _LCG_CCUM).tolist()

else:  # pragma: no cover - fallback without numpy

    def lcg_batch(state: int) -> list[int]:
        """The next :data:`LCG_BATCH` LCG states after *state*, in order."""

        out = []
        append = out.append
        for _ in range(LCG_BATCH):
            state = (state * _LCG_A + _LCG_C) & _LCG_MASK
            append(state)
        return out


class CostModel:
    """Charges simulated cycles per op and serializes conflicting RMWs.

    Charging dispatches through a type-keyed table
    (``type(op) -> handler``), built once per audit state: with no audit
    attached the handlers carry **no** audit branches at all (the
    pay-for-use contract made structural), and attaching an audit swaps
    in handlers that decompose every charge.  The table is rebuilt by the
    :attr:`audit` setter, never consulted per-op.
    """

    __slots__ = ("p", "_lcg", "_audit", "_charge_table")

    def __init__(self, params: CostParams | None = None, seed: int = 0):
        self.p = params or DEFAULT_PARAMS
        self._lcg = (seed * 2862933555777941757 + 3037000493) & 0xFFFFFFFFFFFFFFFF
        self._audit: OpCostAudit | None = None
        self._charge_table: dict = self._build_table()

    @property
    def audit(self) -> OpCostAudit | None:
        """Optional :class:`OpCostAudit` tap for the contention profiler.

        Assigning (or clearing) the tap rebuilds the dispatch table so
        the per-op path never tests for it.
        """

        return self._audit

    @audit.setter
    def audit(self, tap: OpCostAudit | None) -> None:
        self._audit = tap
        self._charge_table = self._build_table()

    def _jitter(self, bound: int | None = None) -> int:
        """Next deterministic timing-skew sample (cheap 64-bit LCG).

        ``bound`` overrides the default small skew: ops that pay a
        coherence miss draw from ``[0, remote_miss]`` instead, modelling
        the large arbitration variance of contended lines.  Without this,
        the two channel counters phase-lock (both tick at the uniform
        line-serialization rate) and the obstruction-free algorithm is
        driven into systematic poisoning that real hardware's timing
        chaos prevents (§4.2; see EXPERIMENTS.md).
        """

        j = self.p.jitter if bound is None else bound
        if not j:
            return 0
        self._lcg = (self._lcg * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        return (self._lcg >> 33) % (j + 1)

    # The scheduler calls exactly one of the three entry points below per op.

    def charge(self, task: Task, op: Op) -> None:
        """Advance ``task.clock`` (and cell bookkeeping) for *op*.

        One type-keyed table lookup; unknown op types (defensive) fall
        back to a one-cycle charge.
        """

        self._charge_table.get(type(op), self._charge_unknown)(task, op)

    # -- unaudited handlers (the hot path: zero audit branches) ---------

    def _charge_read(self, task: Task, op: Op) -> None:
        p = self.p
        line = op.cell.line  # type: ignore[attr-defined]
        base = p.read_hit + self._jitter()
        if line.last_writer is not None and line.last_writer != task.tid:
            seen = task.cache.get(line.loc_id, -1)
            if line.write_time > seen:
                miss = p.read_miss
                if p.jitter:
                    miss += self._jitter(p.read_miss)
                task.cache[line.loc_id] = line.write_time
                # A read cannot complete before the owning writer's
                # store retires: serve it at the line's release time.
                if line.avail_time > task.clock:
                    task.clock = line.avail_time
                task.clock += base + miss
                return
        task.clock += base

    def _charge_rmw(self, task: Task, op: Op) -> None:
        self._charge_exclusive(task, op.cell, self.p.rmw)  # type: ignore[attr-defined]

    def _charge_write(self, task: Task, op: Op) -> None:
        self._charge_exclusive(task, op.cell, self.p.write)  # type: ignore[attr-defined]

    def _charge_work(self, task: Task, op: Op) -> None:
        task.clock += op.cycles  # type: ignore[attr-defined]

    def _charge_sampled_work(self, task: Task, op: Op) -> None:
        # The draw happens at charge time (one per yielded op), so the
        # sampler's stream advances exactly as if the task had called
        # sample() itself and yielded Work(k).
        task.clock += op.sampler.sample()  # type: ignore[attr-defined]

    def _charge_yield(self, task: Task, op: Op) -> None:
        task.clock += self.p.yield_

    def _charge_spin(self, task: Task, op: Op) -> None:
        task.clock += self.p.spin

    def _charge_alloc(self, task: Task, op: Op) -> None:
        task.clock += self.p.alloc

    def _charge_park(self, task: Task, op: Op) -> None:
        task.clock += self.p.park

    def _charge_unpark(self, task: Task, op: Op) -> None:
        task.clock += self.p.unpark

    def _charge_free(self, task: Task, op: Op) -> None:
        pass

    def _charge_unknown(self, task: Task, op: Op) -> None:  # pragma: no cover
        a = self._audit
        if a is not None:
            a.cell = None
            a.stall = a.miss = a.base = 0
        task.clock += 1

    # -- audited handlers (profiler attached) ---------------------------

    def _charge_read_audited(self, task: Task, op: Op) -> None:
        p = self.p
        line = op.cell.line  # type: ignore[attr-defined]
        base = p.read_hit + self._jitter()
        miss = 0
        stall = 0
        if line.last_writer is not None and line.last_writer != task.tid:
            seen = task.cache.get(line.loc_id, -1)
            if line.write_time > seen:
                miss = p.read_miss
                if p.jitter:
                    miss += self._jitter(p.read_miss)
                task.cache[line.loc_id] = line.write_time
                if line.avail_time > task.clock:
                    stall = line.avail_time - task.clock
                    task.clock = line.avail_time
        task.clock += base + miss
        a = self._audit
        a.cell = op.cell  # type: ignore[attr-defined]
        a.stall = stall
        a.miss = miss
        a.base = base

    def _audited(self, fn):
        """Wrap a no-shared-memory handler to reset the audit record."""

        audit = self._audit

        def handler(task: Task, op: Op) -> None:
            audit.cell = None
            audit.stall = audit.miss = audit.base = 0
            fn(task, op)

        return handler

    def _build_table(self) -> dict:
        """``type(op) -> handler`` for the current audit state."""

        if self._audit is None:
            return {
                Read: self._charge_read,
                Cas: self._charge_rmw,
                Faa: self._charge_rmw,
                GetAndSet: self._charge_rmw,
                Write: self._charge_write,
                Work: self._charge_work,
                SampledWork: self._charge_sampled_work,
                Yield: self._charge_yield,
                Spin: self._charge_spin,
                Alloc: self._charge_alloc,
                ParkTask: self._charge_park,
                UnparkTask: self._charge_unpark,
                Label: self._charge_free,
                CurrentTask: self._charge_free,
                ClockSync: self._charge_free,
            }
        # _charge_exclusive fills every audit field itself; only the
        # no-shared-memory handlers need the reset wrapper.
        return {
            Read: self._charge_read_audited,
            Cas: self._charge_rmw,
            Faa: self._charge_rmw,
            GetAndSet: self._charge_rmw,
            Write: self._charge_write,
            Work: self._audited(self._charge_work),
            SampledWork: self._audited(self._charge_sampled_work),
            Yield: self._audited(self._charge_yield),
            Spin: self._audited(self._charge_spin),
            Alloc: self._audited(self._charge_alloc),
            ParkTask: self._audited(self._charge_park),
            UnparkTask: self._audited(self._charge_unpark),
            Label: self._audited(self._charge_free),
            CurrentTask: self._audited(self._charge_free),
            ClockSync: self._audited(self._charge_free),
        }

    def _charge_exclusive(self, task: Task, cell: Cell, base: int) -> None:
        """A write or RMW: acquire the line exclusively, serializing."""

        line = cell.line
        start = task.clock
        stall = 0
        if line.avail_time > start:
            stall = line.avail_time - start
            start = line.avail_time
        cost = base + self._jitter()
        miss = 0
        if line.last_writer is not None and line.last_writer != task.tid:
            miss = self.p.remote_miss
            if self.p.jitter:
                miss += self._jitter(self.p.remote_miss)
        end = start + cost + miss
        task.clock = end
        line.avail_time = end
        line.last_writer = task.tid
        line.write_time = end
        task.cache[line.loc_id] = end
        a = self._audit
        if a is not None:
            a.cell = cell
            a.stall = stall
            a.miss = miss
            a.base = cost

    def wake(self, target: Task, waker_clock: int) -> None:
        """Propagate simulated time to a task being unparked."""

        base = target.clock
        if waker_clock > base:
            base = waker_clock
        target.clock = base + self.p.wake_latency


class NullCostModel:
    """No-op cost model for interleaving exploration (clock-free)."""

    __slots__ = ()

    def charge(self, task: Task, op: Op) -> None:
        task.clock += 1  # monotone step counter keeps DES policies usable

    def wake(self, target: Task, waker_clock: int) -> None:
        if waker_clock > target.clock:
            target.clock = waker_clock
