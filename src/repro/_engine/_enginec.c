/* _enginec — the compiled engine tier for the repro simulator.
 *
 * This module is a line-for-line transcription of
 * ``repro.sim.scheduler.Scheduler._run_fast`` (the fused DES stint loop)
 * into a hand-written CPython extension.  It is NOT a new engine: the
 * pure-Python ``_run_fast`` remains the reference implementation and the
 * single source of truth for semantics; this file must produce the exact
 * same op streams, clocks, jitter-LCG states, and heap layouts, pinned by
 * the 16 golden configs in ``tests/data/golden_engine.json`` running under
 * both tiers.
 *
 * What is compiled here (the PR-3 fast-lane inventory):
 *   - the stint loop itself: pop the earliest runnable task, resume its
 *     generator one op at a time while the DES policy allows, requeue via
 *     a wide ``(clock, tid, task, steps, value, exc)`` heap entry;
 *   - the type-keyed op apply/charge dispatch (the compiled analogue of
 *     ``MEMORY_OP_APPLIERS`` + ``CostModel._charge_table``), fused per op
 *     type with the cache-coherence cost arithmetic;
 *   - the heap discipline (heappush/heappop/heappushpop exactly as
 *     ``heapq`` implements them, with the ``(clock, tid)`` comparison
 *     falling back to full-tuple rich comparison on ties so even the
 *     pathological cases match CPython bit for bit);
 *   - the bit-exact jitter LCG (the scalar recurrence; the numpy batch in
 *     ``costmodel.lcg_batch`` generates the identical state stream).
 *
 * What is NOT compiled: the algorithms themselves (channel/baseline
 * generators stay pure Python and are resumed via ``gen.send``), the
 * general observable loop, every non-default scheduling policy, the
 * processors binding logic (delegated back to ``Scheduler._bind`` /
 * ``_unbind`` / ``_make_runnable``), and the unknown-op fallback (which
 * round-trips through ``CostModel.charge`` + ``Scheduler._dispatch``
 * exactly like the Python fast lane does).
 *
 * Object access: every hot attribute lives in a ``__slots__`` member.
 * ``configure()`` resolves each slot's member-descriptor offset once and
 * validates it is a plain ``T_OBJECT_EX`` member; reads/writes are then a
 * single pointer indirection.  If any layout assumption fails, configure()
 * raises and the Python side silently stays on the reference tier.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>

#if PY_VERSION_HEX >= 0x030c0000
/* 3.12 renamed the member-type constants; the legacy names remain as
 * aliases via structmember.h, but be explicit about what we accept. */
#ifndef T_OBJECT_EX
#define T_OBJECT_EX Py_T_OBJECT_EX
#endif
#endif

#define LCG_A 6364136223846793005ULL
#define LCG_C 1442695040888963407ULL

/* ------------------------------------------------------------------ */
/* configured state                                                    */
/* ------------------------------------------------------------------ */

typedef struct {
    /* op types (exact-type dispatch, like ``type(op) is Read``) */
    PyObject *tp_read, *tp_write, *tp_cas, *tp_faa, *tp_gas;
    PyObject *tp_work, *tp_yield, *tp_spin, *tp_park, *tp_unpark;
    PyObject *tp_current, *tp_alloc, *tp_label;
    /* cell types for CAS comparison semantics */
    PyObject *tp_refcell, *tp_intcell;
    /* TaskState members (enum singletons, compared by identity) */
    PyObject *st_runnable, *st_parked, *st_done, *st_failed;
    /* exception classes */
    PyObject *exc_interrupted, *exc_retry, *exc_deadlock, *exc_steplimit;

    /* slot offsets */
    Py_ssize_t t_tid, t_name, t_gen, t_send_fn, t_state, t_clock, t_steps;
    Py_ssize_t t_pending_value, t_pending_exc;
    Py_ssize_t t_unpark_pending, t_interrupt_pending, t_retry_pending;
    Py_ssize_t t_value, t_error, t_cache, t_park_count;
    Py_ssize_t c_value, c_line;
    Py_ssize_t l_loc_id, l_last_writer, l_write_time, l_avail_time;
    Py_ssize_t op_read_cell;
    Py_ssize_t op_write_cell, op_write_value;
    Py_ssize_t op_cas_cell, op_cas_expected, op_cas_update;
    Py_ssize_t op_faa_cell, op_faa_delta;
    Py_ssize_t op_gas_cell, op_gas_value;
    Py_ssize_t op_work_cycles;
    Py_ssize_t op_unpark_task, op_unpark_interrupt, op_unpark_retry;

    int ready;
} engine_state;

static engine_state S;

/* interned attribute-name strings */
static PyObject *s_live, *s_heap, *s_cost, *s_policy, *s_p, *s_lcg;
static PyObject *s_processors, *s_unbound, *s_max_steps, *s_total_steps;
static PyObject *s_tasks, *s_bind, *s_unbind, *s_make_runnable, *s_dispatch;
static PyObject *s_charge, *s_popleft, *s_throw, *s_value, *s_compare;
static PyObject *s_read_hit, *s_write, *s_rmw, *s_remote_miss, *s_read_miss;
static PyObject *s_park, *s_unpark, *s_wake_latency, *s_spin, *s_yield_;
static PyObject *s_alloc, *s_jitter, *s_clock, *s_pending_value_str;

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* Read a slot that the reference implementation guarantees is set. */
static inline PyObject *
slot_get(PyObject *obj, Py_ssize_t off)
{
    PyObject *v = SLOT(obj, off);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "engine: unset __slots__ member");
    }
    return v; /* borrowed */
}

static inline void
slot_set(PyObject *obj, Py_ssize_t off, PyObject *v)
{
    PyObject *old = SLOT(obj, off);
    Py_INCREF(v);
    SLOT(obj, off) = v;
    Py_XDECREF(old);
}

static inline int
as_i64(PyObject *o, int64_t *out)
{
    long long v = PyLong_AsLongLong(o);
    if (v == -1 && PyErr_Occurred()) {
        return -1;
    }
    *out = (int64_t)v;
    return 0;
}

/* ------------------------------------------------------------------ */
/* heapq transcription                                                 */
/* ------------------------------------------------------------------ */

/* Entries are ``(clock, tid, task)`` or the wide stint form
 * ``(clock, tid, task, steps, value, exc)``.  Comparison never reaches
 * past ``tid`` in practice (tids are unique); if it ever would — equal
 * clock AND tid — we delegate to full-tuple rich comparison so the
 * result (including a TypeError on comparing Task objects) is exactly
 * what the pure-Python heapq would produce. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b)
        && PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        int64_t ac, bc;
        if (as_i64(PyTuple_GET_ITEM(a, 0), &ac) == 0
            && as_i64(PyTuple_GET_ITEM(b, 0), &bc) == 0) {
            if (ac != bc) {
                return ac < bc;
            }
            int64_t at, bt;
            if (as_i64(PyTuple_GET_ITEM(a, 1), &at) == 0
                && as_i64(PyTuple_GET_ITEM(b, 1), &bt) == 0) {
                if (at != bt) {
                    return at < bt;
                }
            }
            else {
                PyErr_Clear();
            }
        }
        else {
            PyErr_Clear();
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* heapq._siftdown: move heap[pos] toward the root. */
static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = entry_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt) {
            break;
        }
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent); /* steals parent ref */
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem); /* steals newitem ref */
    return 0;
}

/* heapq._siftup: move the hole at pos down to a leaf, then sift down. */
static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = entry_lt(PyList_GET_ITEM(heap, childpos),
                              PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt) {
                childpos = rightpos;
            }
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

/* Returns a new reference, or NULL on error (heap must be non-empty). */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) == 0) {
        return lastelt;
    }
    PyObject *returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    PyList_SetItem(heap, 0, lastelt); /* steals lastelt */
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

/* heappushpop(heap, item): new reference to the resulting minimum. */
static PyObject *
heap_pushpop(PyObject *heap, PyObject *item)
{
    if (PyList_GET_SIZE(heap) > 0) {
        PyObject *top = PyList_GET_ITEM(heap, 0);
        int lt = entry_lt(top, item);
        if (lt < 0) {
            return NULL;
        }
        if (lt) {
            Py_INCREF(top);
            Py_INCREF(item);
            PyList_SetItem(heap, 0, item); /* steals item copy */
            if (heap_siftup(heap, 0) < 0) {
                Py_DECREF(top);
                return NULL;
            }
            return top;
        }
    }
    Py_INCREF(item);
    return item;
}

/* ------------------------------------------------------------------ */
/* configure()                                                         */
/* ------------------------------------------------------------------ */

static int
resolve_slot(PyObject *cls, const char *name, Py_ssize_t *out)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    if (descr == NULL) {
        return -1;
    }
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_RuntimeError,
                     "engine layout mismatch: %s.%s is not a __slots__ member",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    PyMemberDef *def = ((PyMemberDescrObject *)descr)->d_member;
    if (def->type != T_OBJECT_EX || def->flags != 0) {
        PyErr_Format(PyExc_RuntimeError,
                     "engine layout mismatch: %s.%s has unexpected member kind",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    *out = def->offset;
    Py_DECREF(descr);
    return 0;
}

static PyObject *
grab(PyObject *cfg, const char *key)
{
    PyObject *v = PyDict_GetItemString(cfg, key); /* borrowed */
    if (v == NULL) {
        PyErr_Format(PyExc_KeyError, "engine configure: missing %s", key);
        return NULL;
    }
    Py_INCREF(v);
    return v;
}

static PyObject *
engine_configure(PyObject *self, PyObject *cfg)
{
    if (!PyDict_Check(cfg)) {
        PyErr_SetString(PyExc_TypeError, "configure() expects a dict");
        return NULL;
    }
    S.ready = 0;

#define GRAB(field, key)                          \
    do {                                          \
        Py_XDECREF(S.field);                      \
        S.field = grab(cfg, key);                 \
        if (S.field == NULL) return NULL;         \
    } while (0)

    GRAB(tp_read, "Read");
    GRAB(tp_write, "Write");
    GRAB(tp_cas, "Cas");
    GRAB(tp_faa, "Faa");
    GRAB(tp_gas, "GetAndSet");
    GRAB(tp_work, "Work");
    GRAB(tp_yield, "Yield");
    GRAB(tp_spin, "Spin");
    GRAB(tp_park, "ParkTask");
    GRAB(tp_unpark, "UnparkTask");
    GRAB(tp_current, "CurrentTask");
    GRAB(tp_alloc, "Alloc");
    GRAB(tp_label, "Label");
    GRAB(tp_refcell, "RefCell");
    GRAB(tp_intcell, "IntCell");
    GRAB(st_runnable, "RUNNABLE");
    GRAB(st_parked, "PARKED");
    GRAB(st_done, "DONE");
    GRAB(st_failed, "FAILED");
    GRAB(exc_interrupted, "Interrupted");
    GRAB(exc_retry, "RetryWakeup");
    GRAB(exc_deadlock, "DeadlockError");
    GRAB(exc_steplimit, "StepLimitExceeded");
#undef GRAB

    PyObject *task_cls = PyDict_GetItemString(cfg, "Task");
    PyObject *cell_cls = PyDict_GetItemString(cfg, "Cell");
    PyObject *line_cls = PyDict_GetItemString(cfg, "CacheLine");
    if (task_cls == NULL || cell_cls == NULL || line_cls == NULL) {
        PyErr_SetString(PyExc_KeyError, "engine configure: missing Task/Cell/CacheLine");
        return NULL;
    }

#define RS(cls, name, field)                              \
    if (resolve_slot(cls, name, &S.field) < 0) return NULL
    RS(task_cls, "tid", t_tid);
    RS(task_cls, "name", t_name);
    RS(task_cls, "gen", t_gen);
    RS(task_cls, "send_fn", t_send_fn);
    RS(task_cls, "state", t_state);
    RS(task_cls, "clock", t_clock);
    RS(task_cls, "steps", t_steps);
    RS(task_cls, "pending_value", t_pending_value);
    RS(task_cls, "pending_exc", t_pending_exc);
    RS(task_cls, "unpark_pending", t_unpark_pending);
    RS(task_cls, "interrupt_pending", t_interrupt_pending);
    RS(task_cls, "retry_pending", t_retry_pending);
    RS(task_cls, "value", t_value);
    RS(task_cls, "error", t_error);
    RS(task_cls, "cache", t_cache);
    RS(task_cls, "park_count", t_park_count);
    RS(cell_cls, "value", c_value);
    RS(cell_cls, "line", c_line);
    RS(line_cls, "loc_id", l_loc_id);
    RS(line_cls, "last_writer", l_last_writer);
    RS(line_cls, "write_time", l_write_time);
    RS(line_cls, "avail_time", l_avail_time);
    RS(S.tp_read, "cell", op_read_cell);
    RS(S.tp_write, "cell", op_write_cell);
    RS(S.tp_write, "value", op_write_value);
    RS(S.tp_cas, "cell", op_cas_cell);
    RS(S.tp_cas, "expected", op_cas_expected);
    RS(S.tp_cas, "update", op_cas_update);
    RS(S.tp_faa, "cell", op_faa_cell);
    RS(S.tp_faa, "delta", op_faa_delta);
    RS(S.tp_gas, "cell", op_gas_cell);
    RS(S.tp_gas, "value", op_gas_value);
    RS(S.tp_work, "cycles", op_work_cycles);
    RS(S.tp_unpark, "task", op_unpark_task);
    RS(S.tp_unpark, "interrupt", op_unpark_interrupt);
    RS(S.tp_unpark, "retry", op_unpark_retry);
#undef RS

    S.ready = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* run_fast()                                                          */
/* ------------------------------------------------------------------ */

/* Read an int attribute (through normal attribute lookup — cold path). */
static int
attr_i64(PyObject *obj, PyObject *name, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) {
        return -1;
    }
    int rc = as_i64(v, out);
    Py_DECREF(v);
    return rc;
}

static int
live_count(PyObject *sched, int64_t *out)
{
    return attr_i64(sched, s_live, out);
}

static int
live_add(PyObject *sched, long delta)
{
    int64_t live;
    if (live_count(sched, &live) < 0) {
        return -1;
    }
    PyObject *nv = PyLong_FromLongLong(live + delta);
    if (nv == NULL) {
        return -1;
    }
    int rc = PyObject_SetAttr(sched, s_live, nv);
    Py_DECREF(nv);
    return rc;
}

/* Call ``self.<meth>(arg)`` discarding the result. */
static int
call_method1(PyObject *obj, PyObject *meth, PyObject *arg)
{
    PyObject *r = PyObject_CallMethodObjArgs(obj, meth, arg, NULL);
    if (r == NULL) {
        return -1;
    }
    Py_DECREF(r);
    return 0;
}

/* The cost-model jitter draw: advance the LCG, return a bounded sample. */
static inline int64_t
jitter_draw(uint64_t *lcg, int64_t bound_plus1)
{
    *lcg = *lcg * LCG_A + LCG_C;
    return (int64_t)((*lcg >> 33) % (uint64_t)bound_plus1);
}

/* Mark the running task finished (DONE/FAILED bookkeeping shared path). */
static int
finish_task(PyObject *sched, PyObject *task, PyObject *state,
            int64_t tclock, int64_t tsteps, int procs_enabled)
{
    slot_set(task, S.t_state, state);
    PyObject *c = PyLong_FromLongLong(tclock);
    PyObject *st = PyLong_FromLongLong(tsteps);
    if (c == NULL || st == NULL) {
        Py_XDECREF(c);
        Py_XDECREF(st);
        return -1;
    }
    slot_set(task, S.t_clock, c);
    slot_set(task, S.t_steps, st);
    Py_DECREF(c);
    Py_DECREF(st);
    slot_set(task, S.t_pending_value, Py_None);
    slot_set(task, S.t_pending_exc, Py_None);
    if (live_add(sched, -1) < 0) {
        return -1;
    }
    if (procs_enabled && call_method1(sched, s_unbind, task) < 0) {
        return -1;
    }
    return 0;
}

static void
raise_step_limit(int64_t limit)
{
    PyObject *lim = PyLong_FromLongLong(limit);
    if (lim != NULL) {
        PyErr_SetObject(S.exc_steplimit, lim);
        Py_DECREF(lim);
    }
}

static PyObject *
engine_run_fast(PyObject *self, PyObject *sched)
{
    if (!S.ready) {
        PyErr_SetString(PyExc_RuntimeError, "engine not configured");
        return NULL;
    }

    PyObject *cost = NULL, *policy = NULL, *heap = NULL, *params = NULL;
    PyObject *unbound = NULL, *procs_obj = NULL, *tasks_list = NULL;
    PyObject *pending = NULL;
    PyObject *result = NULL;
    int failed = 1;
    int engaged = 0; /* set once steps/lcg are loaded; gates the finally-sync */

    cost = PyObject_GetAttr(sched, s_cost);
    if (cost == NULL) goto cleanup;
    policy = PyObject_GetAttr(sched, s_policy);
    if (policy == NULL) goto cleanup;
    heap = PyObject_GetAttr(policy, s_heap);
    if (heap == NULL || !PyList_CheckExact(heap)) {
        if (heap != NULL) {
            PyErr_SetString(PyExc_TypeError, "engine: policy._heap is not a list");
        }
        goto cleanup;
    }
    params = PyObject_GetAttr(cost, s_p);
    if (params == NULL) goto cleanup;
    unbound = PyObject_GetAttr(sched, s_unbound);
    if (unbound == NULL) goto cleanup;
    procs_obj = PyObject_GetAttr(sched, s_processors);
    if (procs_obj == NULL) goto cleanup;
    tasks_list = PyObject_GetAttr(sched, s_tasks);
    if (tasks_list == NULL) goto cleanup;
    if (!PyList_CheckExact(tasks_list)) {
        PyErr_SetString(PyExc_TypeError, "engine: scheduler.tasks is not a list");
        goto cleanup;
    }
    int procs_enabled = (procs_obj != Py_None);

    int64_t read_hit, write_cost, rmw_cost, remote_miss, read_miss;
    int64_t park_cost, unpark_cost, wake_latency, spin_cost, yield_cost;
    int64_t alloc_cost, jit, limit, steps;
    if (attr_i64(params, s_read_hit, &read_hit) < 0) goto cleanup;
    if (attr_i64(params, s_write, &write_cost) < 0) goto cleanup;
    if (attr_i64(params, s_rmw, &rmw_cost) < 0) goto cleanup;
    if (attr_i64(params, s_remote_miss, &remote_miss) < 0) goto cleanup;
    if (attr_i64(params, s_read_miss, &read_miss) < 0) goto cleanup;
    if (attr_i64(params, s_park, &park_cost) < 0) goto cleanup;
    if (attr_i64(params, s_unpark, &unpark_cost) < 0) goto cleanup;
    if (attr_i64(params, s_wake_latency, &wake_latency) < 0) goto cleanup;
    if (attr_i64(params, s_spin, &spin_cost) < 0) goto cleanup;
    if (attr_i64(params, s_yield_, &yield_cost) < 0) goto cleanup;
    if (attr_i64(params, s_alloc, &alloc_cost) < 0) goto cleanup;
    if (attr_i64(params, s_jitter, &jit) < 0) goto cleanup;
    if (attr_i64(sched, s_max_steps, &limit) < 0) goto cleanup;
    if (attr_i64(sched, s_total_steps, &steps) < 0) goto cleanup;
    int64_t jit1 = jit + 1, rm1 = remote_miss + 1, rd1 = read_miss + 1;

    uint64_t lcg = 0;
    {
        PyObject *l = PyObject_GetAttr(cost, s_lcg);
        if (l == NULL) goto cleanup;
        lcg = PyLong_AsUnsignedLongLong(l);
        Py_DECREF(l);
        if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto cleanup;
    }
    engaged = 1;

    /* ---------------- outer loop: one stint per iteration ------------ */
    for (;;) {
        int64_t live;
        if (live_count(sched, &live) < 0) goto cleanup;
        if (live <= 0) break;

        /* -- policy.next(), inlined ----------------------------------- */
        PyObject *entry = NULL;
        if (pending != NULL) {
            PyObject *e;
            if (PyList_GET_SIZE(heap) > 0) {
                e = heap_pushpop(heap, pending);
            }
            else {
                e = pending;
                Py_INCREF(e);
            }
            Py_CLEAR(pending);
            if (e == NULL) goto cleanup;
            PyObject *t = PyTuple_GET_ITEM(e, 2);
            int64_t tc, ec;
            PyObject *tco = slot_get(t, S.t_clock);
            if (tco == NULL) { Py_DECREF(e); goto cleanup; }
            if (as_i64(tco, &tc) < 0 || as_i64(PyTuple_GET_ITEM(e, 0), &ec) < 0) {
                Py_DECREF(e);
                goto cleanup;
            }
            if (SLOT(t, S.t_state) == S.st_runnable && tc == ec) {
                entry = e;
            }
            else {
                Py_DECREF(e);
            }
        }
        if (entry == NULL) {
            while (PyList_GET_SIZE(heap) > 0) {
                PyObject *e = heap_pop(heap);
                if (e == NULL) goto cleanup;
                PyObject *t = PyTuple_GET_ITEM(e, 2);
                int64_t tc, ec;
                PyObject *tco = slot_get(t, S.t_clock);
                if (tco == NULL) { Py_DECREF(e); goto cleanup; }
                if (as_i64(tco, &tc) < 0 || as_i64(PyTuple_GET_ITEM(e, 0), &ec) < 0) {
                    Py_DECREF(e);
                    goto cleanup;
                }
                if (SLOT(t, S.t_state) != S.st_runnable || tc != ec) {
                    Py_DECREF(e); /* stale entry; a fresher one exists */
                    continue;
                }
                entry = e;
                break;
            }
        }
        if (entry == NULL) {
            int has_unbound = PyObject_IsTrue(unbound);
            if (has_unbound < 0) goto cleanup;
            if (has_unbound) { /* defensive: bind and keep going */
                PyObject *t = PyObject_CallMethodObjArgs(unbound, s_popleft, NULL);
                if (t == NULL) goto cleanup;
                int rc = call_method1(sched, s_bind, t);
                Py_DECREF(t);
                if (rc < 0) goto cleanup;
                continue;
            }
            /* deadlock check over all tasks */
            PyObject *parked = PyList_New(0);
            if (parked == NULL) goto cleanup;
            Py_ssize_t ntasks = PyList_GET_SIZE(tasks_list);
            for (Py_ssize_t i = 0; i < ntasks; i++) {
                PyObject *t = PyList_GET_ITEM(tasks_list, i);
                if (SLOT(t, S.t_state) == S.st_parked) {
                    PyObject *nm = slot_get(t, S.t_name);
                    if (nm == NULL || PyList_Append(parked, nm) < 0) {
                        Py_DECREF(parked);
                        goto cleanup;
                    }
                }
            }
            if (PyList_GET_SIZE(parked) > 0) {
                PyErr_SetObject(S.exc_deadlock, parked);
                Py_DECREF(parked);
                goto cleanup;
            }
            Py_DECREF(parked);
            break; /* spawned nothing / all finished */
        }

        /* -- stint setup ---------------------------------------------- */
        PyObject *task = PyTuple_GET_ITEM(entry, 2);
        Py_INCREF(task);
        PyObject *gen = slot_get(task, S.t_gen);           /* borrowed */
        PyObject *send = slot_get(task, S.t_send_fn);      /* borrowed */
        PyObject *tid_obj = slot_get(task, S.t_tid);       /* borrowed */
        PyObject *tcache = slot_get(task, S.t_cache);      /* borrowed */
        if (gen == NULL || send == NULL || tid_obj == NULL || tcache == NULL) {
            Py_DECREF(task);
            Py_DECREF(entry);
            goto cleanup;
        }
        int64_t ttid, tclock, tsteps;
        PyObject *send_value = NULL; /* owned or NULL (= None) */
        PyObject *throw_exc = NULL;  /* owned or NULL (= no exception) */
        {
            PyObject *tco = slot_get(task, S.t_clock);
            if (tco == NULL || as_i64(tid_obj, &ttid) < 0 || as_i64(tco, &tclock) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
        }
        if (PyTuple_GET_SIZE(entry) == 6) {
            if (as_i64(PyTuple_GET_ITEM(entry, 3), &tsteps) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            send_value = PyTuple_GET_ITEM(entry, 4);
            Py_INCREF(send_value);
            PyObject *e5 = PyTuple_GET_ITEM(entry, 5);
            if (e5 != Py_None) {
                throw_exc = e5;
                Py_INCREF(throw_exc);
            }
        }
        else {
            PyObject *ts = slot_get(task, S.t_steps);
            if (ts == NULL || as_i64(ts, &tsteps) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            send_value = slot_get(task, S.t_pending_value);
            if (send_value == NULL) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            Py_INCREF(send_value);
            PyObject *pe = SLOT(task, S.t_pending_exc);
            if (pe != NULL && pe != Py_None) {
                throw_exc = pe;
                Py_INCREF(throw_exc);
            }
        }
        Py_DECREF(entry);

        int64_t next_clock = INT64_MAX;
        if (PyList_GET_SIZE(heap) > 0) {
            if (as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0), &next_clock) < 0) {
                Py_XDECREF(send_value);
                Py_XDECREF(throw_exc);
                Py_DECREF(task);
                goto cleanup;
            }
        }

        /* -- inner loop: one op per iteration ------------------------- */
        int stint_error = 0;
        for (;;) {
            steps += 1;
            PyObject *op;
            if (throw_exc != NULL) {
                PyObject *exc = throw_exc;
                throw_exc = NULL;
                op = PyObject_CallMethodObjArgs(gen, s_throw, exc, NULL);
                Py_DECREF(exc);
            }
            else {
                PyObject *value = send_value; /* may be NULL = None */
                send_value = NULL;
                op = PyObject_CallOneArg(send, value ? value : Py_None);
                Py_XDECREF(value);
            }
            if (op == NULL) {
                /* task completed or failed */
                PyObject *ptype, *pvalue, *ptb;
                PyErr_Fetch(&ptype, &pvalue, &ptb);
                PyErr_NormalizeException(&ptype, &pvalue, &ptb);
                if (ptb != NULL && pvalue != NULL) {
                    PyException_SetTraceback(pvalue, ptb);
                }
                int is_stop = (ptype != NULL
                               && PyErr_GivenExceptionMatches(ptype, PyExc_StopIteration));
                if (is_stop) {
                    PyObject *retval = pvalue
                        ? PyObject_GetAttr(pvalue, s_value)
                        : Py_NewRef(Py_None);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                    if (retval == NULL) {
                        stint_error = 1;
                        break;
                    }
                    slot_set(task, S.t_value, retval);
                    Py_DECREF(retval);
                    if (finish_task(sched, task, S.st_done, tclock, tsteps,
                                    procs_enabled) < 0) {
                        stint_error = 1;
                        break;
                    }
                }
                else if (pvalue != NULL) {
                    slot_set(task, S.t_error, pvalue);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                    if (finish_task(sched, task, S.st_failed, tclock, tsteps,
                                    procs_enabled) < 0) {
                        stint_error = 1;
                        break;
                    }
                }
                else {
                    /* send() returned NULL without an exception set */
                    PyErr_Restore(ptype, pvalue, ptb);
                    if (!PyErr_Occurred()) {
                        PyErr_SetString(PyExc_SystemError,
                                        "engine: generator returned NULL without error");
                    }
                    stint_error = 1;
                    break;
                }
                if (steps > limit) {
                    raise_step_limit(limit);
                    stint_error = 1;
                }
                break;
            }
            tsteps += 1;
            PyObject *tp = (PyObject *)Py_TYPE(op);

            /* -- cost.charge + apply_memory_op, fused ----------------- */
            if (tp == S.tp_read) {
                PyObject *cell = slot_get(op, S.op_read_cell);
                PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                if (line == NULL) goto op_error;
                int64_t base = jit ? read_hit + jitter_draw(&lcg, jit1) : read_hit;
                PyObject *lw = SLOT(line, S.l_last_writer);
                int64_t lwv = -1;
                if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0) goto op_error;
                if (lw != NULL && lw != Py_None && lwv != ttid) {
                    PyObject *loc = slot_get(line, S.l_loc_id);
                    PyObject *wt_obj = loc ? slot_get(line, S.l_write_time) : NULL;
                    if (wt_obj == NULL) goto op_error;
                    int64_t wt, seen = -1;
                    if (as_i64(wt_obj, &wt) < 0) goto op_error;
                    PyObject *seen_obj = PyDict_GetItemWithError(tcache, loc);
                    if (seen_obj == NULL && PyErr_Occurred()) goto op_error;
                    if (seen_obj != NULL && as_i64(seen_obj, &seen) < 0) goto op_error;
                    if (wt > seen) {
                        int64_t miss = read_miss;
                        if (jit && read_miss) {
                            miss += jitter_draw(&lcg, rd1);
                        }
                        if (PyDict_SetItem(tcache, loc, wt_obj) < 0) goto op_error;
                        /* A read cannot complete before the owning
                         * writer's store retires. */
                        PyObject *av_obj = slot_get(line, S.l_avail_time);
                        int64_t avail;
                        if (av_obj == NULL || as_i64(av_obj, &avail) < 0) goto op_error;
                        if (avail > tclock) {
                            tclock = avail;
                        }
                        tclock += base + miss;
                    }
                    else {
                        tclock += base;
                    }
                }
                else {
                    tclock += base;
                }
                send_value = slot_get(cell, S.c_value);
                if (send_value == NULL) goto op_error;
                Py_INCREF(send_value);
            }
            else if (tp == S.tp_faa || tp == S.tp_cas || tp == S.tp_gas
                     || tp == S.tp_write) {
                Py_ssize_t cell_off =
                    tp == S.tp_faa ? S.op_faa_cell :
                    tp == S.tp_cas ? S.op_cas_cell :
                    tp == S.tp_gas ? S.op_gas_cell : S.op_write_cell;
                PyObject *cell = slot_get(op, cell_off);
                PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                if (line == NULL) goto op_error;
                int64_t start = tclock;
                {
                    PyObject *at_obj = slot_get(line, S.l_avail_time);
                    int64_t at;
                    if (at_obj == NULL || as_i64(at_obj, &at) < 0) goto op_error;
                    if (at > start) {
                        start = at;
                    }
                }
                int64_t base = jit ? jitter_draw(&lcg, jit1) : 0;
                base += (tp == S.tp_write) ? write_cost : rmw_cost;
                PyObject *lw = SLOT(line, S.l_last_writer);
                int64_t end, lwv = -1;
                if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0) goto op_error;
                if (lw != NULL && lw != Py_None && lwv != ttid) {
                    int64_t miss = remote_miss;
                    if (jit && remote_miss) {
                        miss += jitter_draw(&lcg, rm1);
                    }
                    end = start + base + miss;
                }
                else {
                    end = start + base;
                }
                tclock = end;
                {
                    PyObject *end_obj = PyLong_FromLongLong(end);
                    if (end_obj == NULL) goto op_error;
                    slot_set(line, S.l_avail_time, end_obj);
                    slot_set(line, S.l_last_writer, tid_obj);
                    slot_set(line, S.l_write_time, end_obj);
                    PyObject *loc = slot_get(line, S.l_loc_id);
                    if (loc == NULL
                        || PyDict_SetItem(tcache, loc, end_obj) < 0) {
                        Py_DECREF(end_obj);
                        goto op_error;
                    }
                    Py_DECREF(end_obj);
                }
                if (tp == S.tp_faa) {
                    PyObject *old = slot_get(cell, S.c_value);
                    PyObject *delta = old ? slot_get(op, S.op_faa_delta) : NULL;
                    if (delta == NULL) goto op_error;
                    Py_INCREF(old);
                    PyObject *nv = PyNumber_Add(old, delta);
                    if (nv == NULL) {
                        Py_DECREF(old);
                        goto op_error;
                    }
                    slot_set(cell, S.c_value, nv);
                    Py_DECREF(nv);
                    send_value = old;
                }
                else if (tp == S.tp_cas) {
                    PyObject *cur = slot_get(cell, S.c_value);
                    PyObject *expected = cur ? slot_get(op, S.op_cas_expected) : NULL;
                    if (expected == NULL) goto op_error;
                    int eq;
                    PyObject *cell_tp = (PyObject *)Py_TYPE(cell);
                    if (cell_tp == S.tp_refcell) {
                        eq = (cur == expected);
                    }
                    else if (cell_tp == S.tp_intcell) {
                        PyObject *r = PyObject_RichCompare(cur, expected, Py_EQ);
                        if (r == NULL) goto op_error;
                        eq = PyObject_IsTrue(r);
                        Py_DECREF(r);
                        if (eq < 0) goto op_error;
                    }
                    else {
                        /* custom cell subtype: defer to its compare() */
                        PyObject *r = PyObject_CallMethodObjArgs(
                            cell, s_compare, cur, expected, NULL);
                        if (r == NULL) goto op_error;
                        eq = PyObject_IsTrue(r);
                        Py_DECREF(r);
                        if (eq < 0) goto op_error;
                    }
                    if (eq) {
                        PyObject *update = slot_get(op, S.op_cas_update);
                        if (update == NULL) goto op_error;
                        slot_set(cell, S.c_value, update);
                        send_value = Py_NewRef(Py_True);
                    }
                    else {
                        send_value = Py_NewRef(Py_False);
                    }
                }
                else if (tp == S.tp_write) {
                    PyObject *nv = slot_get(op, S.op_write_value);
                    if (nv == NULL) goto op_error;
                    slot_set(cell, S.c_value, nv);
                    /* resumes with None: send_value stays NULL */
                }
                else { /* GetAndSet */
                    PyObject *old = slot_get(cell, S.c_value);
                    PyObject *nv = old ? slot_get(op, S.op_gas_value) : NULL;
                    if (nv == NULL) goto op_error;
                    Py_INCREF(old);
                    slot_set(cell, S.c_value, nv);
                    send_value = old;
                }
            }
            else if (tp == S.tp_work) {
                PyObject *cyc = slot_get(op, S.op_work_cycles);
                int64_t cycles;
                if (cyc == NULL || as_i64(cyc, &cycles) < 0) goto op_error;
                tclock += cycles;
            }
            else if (tp == S.tp_yield) {
                tclock += yield_cost;
            }
            else if (tp == S.tp_spin) {
                /* DesPolicy.on_voluntary_yield is the base-class no-op */
                tclock += spin_cost;
            }
            else if (tp == S.tp_park) {
                tclock += park_cost;
                PyObject *ip = SLOT(task, S.t_interrupt_pending);
                PyObject *rp = SLOT(task, S.t_retry_pending);
                PyObject *up = SLOT(task, S.t_unpark_pending);
                int ipt = ip ? PyObject_IsTrue(ip) : 0;
                int rpt = rp ? PyObject_IsTrue(rp) : 0;
                int upt = up ? PyObject_IsTrue(up) : 0;
                if (ipt < 0 || rpt < 0 || upt < 0) goto op_error;
                if (ipt) {
                    slot_set(task, S.t_interrupt_pending, Py_False);
                    throw_exc = PyObject_CallNoArgs(S.exc_interrupted);
                    if (throw_exc == NULL) goto op_error;
                }
                else if (rpt) {
                    slot_set(task, S.t_retry_pending, Py_False);
                    throw_exc = PyObject_CallNoArgs(S.exc_retry);
                    if (throw_exc == NULL) goto op_error;
                }
                else if (upt) {
                    slot_set(task, S.t_unpark_pending, Py_False); /* permit consumed */
                }
                else {
                    slot_set(task, S.t_state, S.st_parked);
                    {
                        PyObject *pc = slot_get(task, S.t_park_count);
                        int64_t pcv;
                        if (pc == NULL || as_i64(pc, &pcv) < 0) goto op_error;
                        PyObject *npc = PyLong_FromLongLong(pcv + 1);
                        if (npc == NULL) goto op_error;
                        slot_set(task, S.t_park_count, npc);
                        Py_DECREF(npc);
                    }
                    PyObject *c = PyLong_FromLongLong(tclock);
                    PyObject *st = PyLong_FromLongLong(tsteps);
                    if (c == NULL || st == NULL) {
                        Py_XDECREF(c);
                        Py_XDECREF(st);
                        goto op_error;
                    }
                    slot_set(task, S.t_clock, c);
                    slot_set(task, S.t_steps, st);
                    Py_DECREF(c);
                    Py_DECREF(st);
                    slot_set(task, S.t_pending_value,
                             send_value ? send_value : Py_None);
                    slot_set(task, S.t_pending_exc,
                             throw_exc ? throw_exc : Py_None);
                    Py_DECREF(op);
                    if (procs_enabled && call_method1(sched, s_unbind, task) < 0) {
                        stint_error = 1;
                        break;
                    }
                    if (steps > limit) {
                        raise_step_limit(limit);
                        stint_error = 1;
                    }
                    break;
                }
            }
            else if (tp == S.tp_unpark) {
                tclock += unpark_cost;
                PyObject *target = slot_get(op, S.op_unpark_task);
                if (target == NULL) goto op_error;
                PyObject *oi = slot_get(op, S.op_unpark_interrupt);
                PyObject *orr = oi ? slot_get(op, S.op_unpark_retry) : NULL;
                if (orr == NULL) goto op_error;
                int interrupt = PyObject_IsTrue(oi);
                int retry = PyObject_IsTrue(orr);
                if (interrupt < 0 || retry < 0) goto op_error;
                if (SLOT(target, S.t_state) == S.st_parked) {
                    if (interrupt) {
                        PyObject *e = PyObject_CallNoArgs(S.exc_interrupted);
                        if (e == NULL) goto op_error;
                        slot_set(target, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    else if (retry) {
                        PyObject *e = PyObject_CallNoArgs(S.exc_retry);
                        if (e == NULL) goto op_error;
                        slot_set(target, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    slot_set(target, S.t_state, S.st_runnable);
                    /* cost.wake, inlined */
                    PyObject *tc_obj = slot_get(target, S.t_clock);
                    int64_t wbase;
                    if (tc_obj == NULL || as_i64(tc_obj, &wbase) < 0) goto op_error;
                    if (tclock > wbase) {
                        wbase = tclock;
                    }
                    PyObject *nc = PyLong_FromLongLong(wbase + wake_latency);
                    if (nc == NULL) goto op_error;
                    slot_set(target, S.t_clock, nc);
                    Py_DECREF(nc);
                    if (call_method1(sched, s_make_runnable, target) < 0) goto op_error;
                    /* The fresh entry may now be the earliest. */
                    next_clock = INT64_MAX;
                    if (PyList_GET_SIZE(heap) > 0
                        && as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0),
                                  &next_clock) < 0) goto op_error;
                }
                else if (interrupt) {
                    slot_set(target, S.t_interrupt_pending, Py_True);
                }
                else if (retry) {
                    slot_set(target, S.t_retry_pending, Py_True);
                }
                else {
                    slot_set(target, S.t_unpark_pending, Py_True);
                }
            }
            else if (tp == S.tp_current) {
                send_value = Py_NewRef(task);
            }
            else if (tp == S.tp_alloc) {
                tclock += alloc_cost;
            }
            else if (tp == S.tp_label) {
                /* no effect */
            }
            else {
                /* Unknown op subtype: fall back to the general handlers
                 * (sync task + LCG state around the call), exactly like
                 * the Python fast lane. */
                PyObject *c = PyLong_FromLongLong(tclock);
                if (c == NULL) goto op_error;
                slot_set(task, S.t_clock, c);
                Py_DECREF(c);
                slot_set(task, S.t_pending_value,
                         send_value ? send_value : Py_None);
                Py_CLEAR(send_value);
                PyObject *l = PyLong_FromUnsignedLongLong(lcg);
                if (l == NULL || PyObject_SetAttr(cost, s_lcg, l) < 0) {
                    Py_XDECREF(l);
                    goto op_error;
                }
                Py_DECREF(l);
                PyObject *r = PyObject_CallMethodObjArgs(cost, s_charge,
                                                         task, op, NULL);
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                r = PyObject_CallMethodObjArgs(sched, s_dispatch, task, op, NULL);
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                l = PyObject_GetAttr(cost, s_lcg);
                if (l == NULL) goto op_error;
                lcg = PyLong_AsUnsignedLongLong(l);
                Py_DECREF(l);
                if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto op_error;
                PyObject *tc_obj = slot_get(task, S.t_clock);
                if (tc_obj == NULL || as_i64(tc_obj, &tclock) < 0) goto op_error;
                send_value = slot_get(task, S.t_pending_value);
                if (send_value == NULL) goto op_error;
                Py_INCREF(send_value);
                next_clock = INT64_MAX;
                if (PyList_GET_SIZE(heap) > 0
                    && as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0),
                              &next_clock) < 0) goto op_error;
            }

            if (steps > limit) {
                PyObject *c = PyLong_FromLongLong(tclock);
                PyObject *st = PyLong_FromLongLong(tsteps);
                if (c != NULL && st != NULL) {
                    slot_set(task, S.t_clock, c);
                    slot_set(task, S.t_steps, st);
                    slot_set(task, S.t_pending_value,
                             send_value ? send_value : Py_None);
                    slot_set(task, S.t_pending_exc,
                             throw_exc ? throw_exc : Py_None);
                    raise_step_limit(limit);
                }
                Py_XDECREF(c);
                Py_XDECREF(st);
                Py_DECREF(op);
                stint_error = 1;
                break;
            }

            /* -- keep_running + requeue, inlined ---------------------- */
            if (tclock > next_clock) {
                /* Wide entry: resume state rides in the heap entry. */
                PyObject *c = PyLong_FromLongLong(tclock);
                PyObject *st = PyLong_FromLongLong(tsteps);
                if (c == NULL || st == NULL) {
                    Py_XDECREF(c);
                    Py_XDECREF(st);
                    Py_DECREF(op);
                    stint_error = 1;
                    break;
                }
                slot_set(task, S.t_clock, c);
                PyObject *wide = PyTuple_New(6);
                if (wide == NULL) {
                    Py_DECREF(c);
                    Py_DECREF(st);
                    Py_DECREF(op);
                    stint_error = 1;
                    break;
                }
                PyTuple_SET_ITEM(wide, 0, c);                       /* steals */
                PyTuple_SET_ITEM(wide, 1, Py_NewRef(tid_obj));
                PyTuple_SET_ITEM(wide, 2, Py_NewRef(task));
                PyTuple_SET_ITEM(wide, 3, st);                      /* steals */
                PyTuple_SET_ITEM(wide, 4,
                                 send_value ? send_value : Py_NewRef(Py_None));
                send_value = NULL;                                  /* moved */
                PyTuple_SET_ITEM(wide, 5,
                                 throw_exc ? throw_exc : Py_NewRef(Py_None));
                throw_exc = NULL;                                   /* moved */
                pending = wide;
                Py_DECREF(op);
                break;
            }
            Py_DECREF(op);
            continue;

        op_error:
            Py_DECREF(op);
            stint_error = 1;
            break;
        }

        Py_XDECREF(send_value);
        Py_XDECREF(throw_exc);
        Py_DECREF(task);
        if (stint_error) goto cleanup;
    }

    failed = 0;
    result = Py_NewRef(Py_None);

cleanup:
    /* ``finally:`` — restore global engine state exactly. */
    {
        PyObject *etype = NULL, *evalue = NULL, *etb = NULL;
        if (failed) {
            PyErr_Fetch(&etype, &evalue, &etb);
        }
        if (engaged) {
            PyObject *steps_obj = PyLong_FromLongLong(steps);
            if (steps_obj != NULL) {
                PyObject_SetAttr(sched, s_total_steps, steps_obj);
                Py_DECREF(steps_obj);
            }
            PyObject *lcg_obj = PyLong_FromUnsignedLongLong(lcg);
            if (lcg_obj != NULL) {
                PyObject_SetAttr(cost, s_lcg, lcg_obj);
                Py_DECREF(lcg_obj);
            }
            if (PyErr_Occurred()) {
                /* a sync failure must not mask the original error */
                if (etype != NULL) {
                    PyErr_Clear();
                }
            }
        }
        if (etype != NULL || evalue != NULL || etb != NULL) {
            PyErr_Restore(etype, evalue, etb);
        }
    }
    Py_XDECREF(pending);
    Py_XDECREF(cost);
    Py_XDECREF(policy);
    Py_XDECREF(heap);
    Py_XDECREF(params);
    Py_XDECREF(unbound);
    Py_XDECREF(procs_obj);
    Py_XDECREF(tasks_list);
    return result;
}

/* NOTE: the fused loop intentionally skips ``steps`` sync until the
 * cleanup block above, exactly mirroring the Python fast lane's
 * ``finally`` — observers attach only between runs, never during. */

static PyObject *
engine_configured(PyObject *self, PyObject *noargs)
{
    return PyBool_FromLong(S.ready);
}

static PyMethodDef engine_methods[] = {
    {"configure", engine_configure, METH_O,
     "Bind the engine to the repro classes; validates __slots__ layouts."},
    {"run_fast", engine_run_fast, METH_O,
     "Run a Scheduler's fused DES loop natively (bit-identical to _run_fast)."},
    {"configured", engine_configured, METH_NOARGS,
     "True once configure() has validated the object layouts."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef engine_module = {
    PyModuleDef_HEAD_INIT,
    "repro._engine._enginec",
    "Compiled engine tier: the fused DES stint loop in C.",
    -1,
    engine_methods,
};

PyMODINIT_FUNC
PyInit__enginec(void)
{
#define INTERN(var, text)                        \
    do {                                         \
        var = PyUnicode_InternFromString(text);  \
        if (var == NULL) return NULL;            \
    } while (0)
    INTERN(s_live, "_live");
    INTERN(s_heap, "_heap");
    INTERN(s_cost, "cost");
    INTERN(s_policy, "policy");
    INTERN(s_p, "p");
    INTERN(s_lcg, "_lcg");
    INTERN(s_processors, "processors");
    INTERN(s_unbound, "_unbound");
    INTERN(s_max_steps, "max_steps");
    INTERN(s_total_steps, "total_steps");
    INTERN(s_tasks, "tasks");
    INTERN(s_bind, "_bind");
    INTERN(s_unbind, "_unbind");
    INTERN(s_make_runnable, "_make_runnable");
    INTERN(s_dispatch, "_dispatch");
    INTERN(s_charge, "charge");
    INTERN(s_popleft, "popleft");
    INTERN(s_throw, "throw");
    INTERN(s_value, "value");
    INTERN(s_compare, "compare");
    INTERN(s_read_hit, "read_hit");
    INTERN(s_write, "write");
    INTERN(s_rmw, "rmw");
    INTERN(s_remote_miss, "remote_miss");
    INTERN(s_read_miss, "read_miss");
    INTERN(s_park, "park");
    INTERN(s_unpark, "unpark");
    INTERN(s_wake_latency, "wake_latency");
    INTERN(s_spin, "spin");
    INTERN(s_yield_, "yield_");
    INTERN(s_alloc, "alloc");
    INTERN(s_jitter, "jitter");
    INTERN(s_clock, "clock");
    INTERN(s_pending_value_str, "pending_value");
#undef INTERN
    memset(&S, 0, sizeof(S));
    return PyModule_Create(&engine_module);
}
