/* _enginec — the compiled engine tier for the repro simulator.
 *
 * This module is a line-for-line transcription of
 * ``repro.sim.scheduler.Scheduler._run_fast`` (the fused DES stint loop)
 * into a hand-written CPython extension.  It is NOT a new engine: the
 * pure-Python ``_run_fast`` remains the reference implementation and the
 * single source of truth for semantics; this file must produce the exact
 * same op streams, clocks, jitter-LCG states, and heap layouts, pinned by
 * the 16 golden configs in ``tests/data/golden_engine.json`` running under
 * both tiers.
 *
 * What is compiled here (the PR-3 fast-lane inventory):
 *   - the stint loop itself: pop the earliest runnable task, resume its
 *     generator one op at a time while the DES policy allows, requeue via
 *     a wide ``(clock, tid, task, steps, value, exc)`` heap entry;
 *   - the type-keyed op apply/charge dispatch (the compiled analogue of
 *     ``MEMORY_OP_APPLIERS`` + ``CostModel._charge_table``), fused per op
 *     type with the cache-coherence cost arithmetic;
 *   - the heap discipline (heappush/heappop/heappushpop exactly as
 *     ``heapq`` implements them, with the ``(clock, tid)`` comparison
 *     falling back to full-tuple rich comparison on ties so even the
 *     pathological cases match CPython bit for bit);
 *   - the bit-exact jitter LCG (the scalar recurrence; the numpy batch in
 *     ``costmodel.lcg_batch`` generates the identical state stream).
 *
 * ``run_observed`` is the second executor (the PR-9 observed-path
 * core): a transcription of ``Scheduler._run_general`` +
 * ``_step_task`` + ``DesPolicy`` that keeps heap scheduling, generator
 * resumption, and the exact-type charge/op-apply dispatch native while
 * calling out to Python at every observation point — scheduler hooks,
 * the ``CostModel`` audit tap (filled natively when it is exactly
 * ``OpCostAudit``, delegated to ``cost.charge`` for custom taps), and
 * the ``alloc_stats`` collector.  Unlike the fast lane it writes task
 * state (clock, steps, pending value/exc) and the global step counter
 * through to the Python attributes after every op, so hooks observe
 * exactly the state the pure-Python loop would show them.
 *
 * What is NOT compiled: the algorithms themselves (channel/baseline
 * generators stay pure Python and are resumed via ``gen.send``), every
 * non-default scheduling policy, the processors binding logic
 * (delegated back to ``Scheduler._bind`` / ``_unbind`` /
 * ``_make_runnable``), and the unknown-op fallback (which round-trips
 * through ``CostModel.charge`` + ``Scheduler._dispatch`` exactly like
 * the Python loops do).
 *
 * Object access: every hot attribute lives in a ``__slots__`` member.
 * ``configure()`` resolves each slot's member-descriptor offset once and
 * validates it is a plain ``T_OBJECT_EX`` member; reads/writes are then a
 * single pointer indirection.  If any layout assumption fails, configure()
 * raises and the Python side silently stays on the reference tier.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <math.h>

#if PY_VERSION_HEX >= 0x030c0000
/* 3.12 renamed the member-type constants; the legacy names remain as
 * aliases via structmember.h, but be explicit about what we accept. */
#ifndef T_OBJECT_EX
#define T_OBJECT_EX Py_T_OBJECT_EX
#endif
#endif

#define LCG_A 6364136223846793005ULL
#define LCG_C 1442695040888963407ULL

/* ------------------------------------------------------------------ */
/* configured state                                                    */
/* ------------------------------------------------------------------ */

typedef struct {
    /* op types (exact-type dispatch, like ``type(op) is Read``) */
    PyObject *tp_read, *tp_write, *tp_cas, *tp_faa, *tp_gas;
    PyObject *tp_work, *tp_yield, *tp_spin, *tp_park, *tp_unpark;
    PyObject *tp_current, *tp_alloc, *tp_label, *tp_sampledwork;
    /* cell types for CAS comparison semantics */
    PyObject *tp_refcell, *tp_intcell;
    /* the canonical sampler type (native draw) and the audit tap type */
    PyObject *tp_geowork, *tp_audit;
    /* TaskState members (enum singletons, compared by identity) */
    PyObject *st_runnable, *st_parked, *st_done, *st_failed;
    /* exception classes */
    PyObject *exc_interrupted, *exc_retry, *exc_deadlock, *exc_steplimit;

    /* slot offsets */
    Py_ssize_t t_tid, t_name, t_gen, t_send_fn, t_state, t_clock, t_steps;
    Py_ssize_t t_pending_value, t_pending_exc;
    Py_ssize_t t_unpark_pending, t_interrupt_pending, t_retry_pending;
    Py_ssize_t t_value, t_error, t_cache, t_park_count;
    Py_ssize_t c_value, c_line;
    Py_ssize_t l_loc_id, l_last_writer, l_write_time, l_avail_time;
    Py_ssize_t op_read_cell;
    Py_ssize_t op_write_cell, op_write_value;
    Py_ssize_t op_cas_cell, op_cas_expected, op_cas_update;
    Py_ssize_t op_faa_cell, op_faa_delta;
    Py_ssize_t op_gas_cell, op_gas_value;
    Py_ssize_t op_work_cycles;
    Py_ssize_t op_unpark_task, op_unpark_interrupt, op_unpark_retry;
    Py_ssize_t op_sw_sampler;
    Py_ssize_t op_alloc_tag, op_alloc_units;
    Py_ssize_t gw_mean, gw_randf, gw_log1mp;
    Py_ssize_t a_cell, a_stall, a_miss, a_base;
    Py_ssize_t cm_audit;

    /* --- algorithm kernels (PR 10) --------------------------------- */
    /* cell-state sentinels (identity-compared singletons) */
    PyObject *cs_buffered, *cs_in_buffer, *cs_done, *cs_done_rcv, *cs_broken;
    PyObject *cs_cancelled, *cs_int_send, *cs_int_rcv, *cs_sr_rcv, *cs_sr_eb;
    /* waiter life-cycle sentinels */
    PyObject *ws_init, *ws_parked, *ws_permit, *ws_resumed;
    /* waiter kinds (isinstance: select-linked instances are subclasses) */
    PyObject *cls_sender, *cls_receiver;
    PyObject *exc_closed_send, *exc_closed_recv;
    PyObject *faaq_broken;     /* the FAA queue's poison sentinel */
    PyObject *cur_task_op;     /* the CURRENT_TASK singleton op */
    PyObject *fn_acquire_kit, *fn_release_kit;
    /* Segment / _QSegment / Waiter slot offsets */
    Py_ssize_t sg_id, sg_cnt, sg_states, sg_elems, sg_prev;
    Py_ssize_t qs_id, qs_cells;
    Py_ssize_t w_task, w_state;
    Py_ssize_t op_spin_reason;
    /* bumped on every successful configure(); stamps pooled kernels */
    uint64_t kcfg_gen;

    int ready;
} engine_state;

static engine_state S;

/* interned attribute-name strings */
static PyObject *s_live, *s_heap, *s_cost, *s_policy, *s_p, *s_lcg;
static PyObject *s_processors, *s_unbound, *s_max_steps, *s_total_steps;
static PyObject *s_tasks, *s_bind, *s_unbind, *s_make_runnable, *s_dispatch;
static PyObject *s_charge, *s_popleft, *s_throw, *s_value, *s_compare;
static PyObject *s_read_hit, *s_write, *s_rmw, *s_remote_miss, *s_read_miss;
static PyObject *s_park, *s_unpark, *s_wake_latency, *s_spin, *s_yield_;
static PyObject *s_alloc, *s_jitter, *s_clock, *s_pending_value_str;
static PyObject *s_hooks, *s_alloc_stats, *s_record, *s_forget, *s_sample;
/* algorithm-kernel strings (PR 10) */
static PyObject *s_of, *s_send, *s_close, *s_try_unpark, *s_famf;
static PyObject *s_find_segment, *s_mark_closed, *s_mark_cancelled;
static PyObject *s_park_sender, *s_park_receiver, *s_close_recheck;
static PyObject *s_on_interrupted, *s_expand_buffer;
static PyObject *s_seg_size, *s_stats, *s_segm_s, *s_segm_r, *s_segm_b;
static PyObject *s_cap_s, *s_cap_r, *s_cap_b, *s_ulist;
static PyObject *s_head_attr, *s_tail_attr, *s_enq_idx, *s_deq_idx;
static PyObject *s_cells_processed, *s_send_restarts, *s_rcv_restarts;
static PyObject *s_sends, *s_receives, *s_eliminations, *s_poisoned;
static PyObject *s_rcv_wait_eb;

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* Read a slot that the reference implementation guarantees is set. */
static inline PyObject *
slot_get(PyObject *obj, Py_ssize_t off)
{
    PyObject *v = SLOT(obj, off);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "engine: unset __slots__ member");
    }
    return v; /* borrowed */
}

static inline void
slot_set(PyObject *obj, Py_ssize_t off, PyObject *v)
{
    PyObject *old = SLOT(obj, off);
    Py_INCREF(v);
    SLOT(obj, off) = v;
    Py_XDECREF(old);
}

static inline int
as_i64(PyObject *o, int64_t *out)
{
    long long v = PyLong_AsLongLong(o);
    if (v == -1 && PyErr_Occurred()) {
        return -1;
    }
    *out = (int64_t)v;
    return 0;
}

static inline int
set_slot_i64(PyObject *obj, Py_ssize_t off, int64_t v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (o == NULL) {
        return -1;
    }
    slot_set(obj, off, o);
    Py_DECREF(o);
    return 0;
}

static inline int
set_attr_i64(PyObject *obj, PyObject *name, int64_t v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (o == NULL) {
        return -1;
    }
    int rc = PyObject_SetAttr(obj, name, o);
    Py_DECREF(o);
    return rc;
}

/* ------------------------------------------------------------------ */
/* heapq transcription                                                 */
/* ------------------------------------------------------------------ */

/* Entries are ``(clock, tid, task)`` or the wide stint form
 * ``(clock, tid, task, steps, value, exc)``.  Comparison never reaches
 * past ``tid`` in practice (tids are unique); if it ever would — equal
 * clock AND tid — we delegate to full-tuple rich comparison so the
 * result (including a TypeError on comparing Task objects) is exactly
 * what the pure-Python heapq would produce. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b)
        && PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        int64_t ac, bc;
        if (as_i64(PyTuple_GET_ITEM(a, 0), &ac) == 0
            && as_i64(PyTuple_GET_ITEM(b, 0), &bc) == 0) {
            if (ac != bc) {
                return ac < bc;
            }
            int64_t at, bt;
            if (as_i64(PyTuple_GET_ITEM(a, 1), &at) == 0
                && as_i64(PyTuple_GET_ITEM(b, 1), &bt) == 0) {
                if (at != bt) {
                    return at < bt;
                }
            }
            else {
                PyErr_Clear();
            }
        }
        else {
            PyErr_Clear();
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* heapq._siftdown: move heap[pos] toward the root. */
static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = entry_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt) {
            break;
        }
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent); /* steals parent ref */
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem); /* steals newitem ref */
    return 0;
}

/* heapq._siftup: move the hole at pos down to a leaf, then sift down. */
static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = entry_lt(PyList_GET_ITEM(heap, childpos),
                              PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt) {
                childpos = rightpos;
            }
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

/* Returns a new reference, or NULL on error (heap must be non-empty). */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) == 0) {
        return lastelt;
    }
    PyObject *returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    PyList_SetItem(heap, 0, lastelt); /* steals lastelt */
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

/* heappushpop(heap, item): new reference to the resulting minimum. */
static PyObject *
heap_pushpop(PyObject *heap, PyObject *item)
{
    if (PyList_GET_SIZE(heap) > 0) {
        PyObject *top = PyList_GET_ITEM(heap, 0);
        int lt = entry_lt(top, item);
        if (lt < 0) {
            return NULL;
        }
        if (lt) {
            Py_INCREF(top);
            Py_INCREF(item);
            PyList_SetItem(heap, 0, item); /* steals item copy */
            if (heap_siftup(heap, 0) < 0) {
                Py_DECREF(top);
                return NULL;
            }
            return top;
        }
    }
    Py_INCREF(item);
    return item;
}

/* heappush(heap, item). */
static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0) {
        return -1;
    }
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* ------------------------------------------------------------------ */
/* configure()                                                         */
/* ------------------------------------------------------------------ */

static int
resolve_slot(PyObject *cls, const char *name, Py_ssize_t *out)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    if (descr == NULL) {
        return -1;
    }
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_RuntimeError,
                     "engine layout mismatch: %s.%s is not a __slots__ member",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    PyMemberDef *def = ((PyMemberDescrObject *)descr)->d_member;
    if (def->type != T_OBJECT_EX || def->flags != 0) {
        PyErr_Format(PyExc_RuntimeError,
                     "engine layout mismatch: %s.%s has unexpected member kind",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    *out = def->offset;
    Py_DECREF(descr);
    return 0;
}

static PyObject *
grab(PyObject *cfg, const char *key)
{
    PyObject *v = PyDict_GetItemString(cfg, key); /* borrowed */
    if (v == NULL) {
        PyErr_Format(PyExc_KeyError, "engine configure: missing %s", key);
        return NULL;
    }
    Py_INCREF(v);
    return v;
}

static PyObject *
engine_configure(PyObject *self, PyObject *cfg)
{
    (void)self;
    if (!PyDict_Check(cfg)) {
        PyErr_SetString(PyExc_TypeError, "configure() expects a dict");
        return NULL;
    }
    S.ready = 0;

#define GRAB(field, key)                          \
    do {                                          \
        Py_XDECREF(S.field);                      \
        S.field = grab(cfg, key);                 \
        if (S.field == NULL) return NULL;         \
    } while (0)

    GRAB(tp_read, "Read");
    GRAB(tp_write, "Write");
    GRAB(tp_cas, "Cas");
    GRAB(tp_faa, "Faa");
    GRAB(tp_gas, "GetAndSet");
    GRAB(tp_work, "Work");
    GRAB(tp_yield, "Yield");
    GRAB(tp_spin, "Spin");
    GRAB(tp_park, "ParkTask");
    GRAB(tp_unpark, "UnparkTask");
    GRAB(tp_current, "CurrentTask");
    GRAB(tp_alloc, "Alloc");
    GRAB(tp_label, "Label");
    GRAB(tp_sampledwork, "SampledWork");
    GRAB(tp_refcell, "RefCell");
    GRAB(tp_intcell, "IntCell");
    GRAB(tp_geowork, "GeometricWork");
    GRAB(tp_audit, "OpCostAudit");
    GRAB(st_runnable, "RUNNABLE");
    GRAB(st_parked, "PARKED");
    GRAB(st_done, "DONE");
    GRAB(st_failed, "FAILED");
    GRAB(exc_interrupted, "Interrupted");
    GRAB(exc_retry, "RetryWakeup");
    GRAB(exc_deadlock, "DeadlockError");
    GRAB(exc_steplimit, "StepLimitExceeded");
    GRAB(cs_buffered, "C_BUFFERED");
    GRAB(cs_in_buffer, "C_IN_BUFFER");
    GRAB(cs_done, "C_DONE");
    GRAB(cs_done_rcv, "C_DONE_RCV");
    GRAB(cs_broken, "C_BROKEN");
    GRAB(cs_cancelled, "C_CANCELLED");
    GRAB(cs_int_send, "C_INTERRUPTED_SEND");
    GRAB(cs_int_rcv, "C_INTERRUPTED_RCV");
    GRAB(cs_sr_rcv, "C_S_RESUMING_RCV");
    GRAB(cs_sr_eb, "C_S_RESUMING_EB");
    GRAB(ws_init, "W_INIT");
    GRAB(ws_parked, "W_PARKED");
    GRAB(ws_permit, "W_PERMIT");
    GRAB(ws_resumed, "W_RESUMED");
    GRAB(cls_sender, "SenderWaiter");
    GRAB(cls_receiver, "ReceiverWaiter");
    GRAB(exc_closed_send, "ChannelClosedForSend");
    GRAB(exc_closed_recv, "ChannelClosedForReceive");
    GRAB(faaq_broken, "FAAQ_BROKEN");
    GRAB(cur_task_op, "CURRENT_TASK");
    GRAB(fn_acquire_kit, "acquire_kit");
    GRAB(fn_release_kit, "release_kit");
#undef GRAB

    PyObject *task_cls = PyDict_GetItemString(cfg, "Task");
    PyObject *cell_cls = PyDict_GetItemString(cfg, "Cell");
    PyObject *line_cls = PyDict_GetItemString(cfg, "CacheLine");
    PyObject *cm_cls = PyDict_GetItemString(cfg, "CostModel");
    PyObject *waiter_cls = PyDict_GetItemString(cfg, "Waiter");
    PyObject *segment_cls = PyDict_GetItemString(cfg, "Segment");
    PyObject *qsegment_cls = PyDict_GetItemString(cfg, "QSegment");
    if (task_cls == NULL || cell_cls == NULL || line_cls == NULL
        || cm_cls == NULL || waiter_cls == NULL || segment_cls == NULL
        || qsegment_cls == NULL) {
        PyErr_SetString(PyExc_KeyError,
                        "engine configure: missing Task/Cell/CacheLine/CostModel"
                        "/Waiter/Segment/QSegment");
        return NULL;
    }

#define RS(cls, name, field)                              \
    if (resolve_slot(cls, name, &S.field) < 0) return NULL
    RS(task_cls, "tid", t_tid);
    RS(task_cls, "name", t_name);
    RS(task_cls, "gen", t_gen);
    RS(task_cls, "send_fn", t_send_fn);
    RS(task_cls, "state", t_state);
    RS(task_cls, "clock", t_clock);
    RS(task_cls, "steps", t_steps);
    RS(task_cls, "pending_value", t_pending_value);
    RS(task_cls, "pending_exc", t_pending_exc);
    RS(task_cls, "unpark_pending", t_unpark_pending);
    RS(task_cls, "interrupt_pending", t_interrupt_pending);
    RS(task_cls, "retry_pending", t_retry_pending);
    RS(task_cls, "value", t_value);
    RS(task_cls, "error", t_error);
    RS(task_cls, "cache", t_cache);
    RS(task_cls, "park_count", t_park_count);
    RS(cell_cls, "value", c_value);
    RS(cell_cls, "line", c_line);
    RS(line_cls, "loc_id", l_loc_id);
    RS(line_cls, "last_writer", l_last_writer);
    RS(line_cls, "write_time", l_write_time);
    RS(line_cls, "avail_time", l_avail_time);
    RS(S.tp_read, "cell", op_read_cell);
    RS(S.tp_write, "cell", op_write_cell);
    RS(S.tp_write, "value", op_write_value);
    RS(S.tp_cas, "cell", op_cas_cell);
    RS(S.tp_cas, "expected", op_cas_expected);
    RS(S.tp_cas, "update", op_cas_update);
    RS(S.tp_faa, "cell", op_faa_cell);
    RS(S.tp_faa, "delta", op_faa_delta);
    RS(S.tp_gas, "cell", op_gas_cell);
    RS(S.tp_gas, "value", op_gas_value);
    RS(S.tp_work, "cycles", op_work_cycles);
    RS(S.tp_unpark, "task", op_unpark_task);
    RS(S.tp_unpark, "interrupt", op_unpark_interrupt);
    RS(S.tp_unpark, "retry", op_unpark_retry);
    RS(S.tp_sampledwork, "sampler", op_sw_sampler);
    RS(S.tp_alloc, "tag", op_alloc_tag);
    RS(S.tp_alloc, "units", op_alloc_units);
    RS(S.tp_geowork, "mean", gw_mean);
    RS(S.tp_geowork, "_randf", gw_randf);
    RS(S.tp_geowork, "_log1mp", gw_log1mp);
    RS(S.tp_audit, "cell", a_cell);
    RS(S.tp_audit, "stall", a_stall);
    RS(S.tp_audit, "miss", a_miss);
    RS(S.tp_audit, "base", a_base);
    RS(cm_cls, "_audit", cm_audit);
    RS(waiter_cls, "task", w_task);
    RS(waiter_cls, "_state", w_state);
    RS(segment_cls, "id", sg_id);
    RS(segment_cls, "_cnt", sg_cnt);
    RS(segment_cls, "states", sg_states);
    RS(segment_cls, "elems", sg_elems);
    RS(segment_cls, "_prev", sg_prev);
    RS(qsegment_cls, "id", qs_id);
    RS(qsegment_cls, "cells", qs_cells);
    RS(S.tp_spin, "reason", op_spin_reason);
#undef RS

    S.kcfg_gen += 1;   /* invalidate pooled kernels from the old config */
    S.ready = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* run_fast()                                                          */
/* ------------------------------------------------------------------ */

/* Read an int attribute (through normal attribute lookup — cold path). */
static int
attr_i64(PyObject *obj, PyObject *name, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) {
        return -1;
    }
    int rc = as_i64(v, out);
    Py_DECREF(v);
    return rc;
}

static int
live_count(PyObject *sched, int64_t *out)
{
    return attr_i64(sched, s_live, out);
}

static int
live_add(PyObject *sched, long delta)
{
    int64_t live;
    if (live_count(sched, &live) < 0) {
        return -1;
    }
    PyObject *nv = PyLong_FromLongLong(live + delta);
    if (nv == NULL) {
        return -1;
    }
    int rc = PyObject_SetAttr(sched, s_live, nv);
    Py_DECREF(nv);
    return rc;
}

/* Call ``self.<meth>(arg)`` discarding the result (vectorcall). */
static int
call_method1(PyObject *obj, PyObject *meth, PyObject *arg)
{
    PyObject *args[2] = {obj, arg};
    PyObject *r = PyObject_VectorcallMethod(
        meth, args, 2 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
    if (r == NULL) {
        return -1;
    }
    Py_DECREF(r);
    return 0;
}

/* Draw one cycle count from ``op.sampler``, bit-exact to
 * ``GeometricWork.sample()``: for the canonical sampler the uniform
 * variate comes from the cached ``rng.random`` bound method (the same
 * Mersenne-Twister stream Python would consume) and the inverse-CDF
 * transform runs in libm — CPython's ``math.log`` is the same ``log``,
 * so the doubles (and the truncation to int) are identical.  Foreign
 * samplers fall back to calling ``sample()``. */
static int
sampled_work_draw(PyObject *op, int64_t *out)
{
    PyObject *sampler = slot_get(op, S.op_sw_sampler);
    if (sampler == NULL) {
        return -1;
    }
    if ((PyObject *)Py_TYPE(sampler) == S.tp_geowork) {
        PyObject *mean_obj = slot_get(sampler, S.gw_mean);
        int64_t mean;
        if (mean_obj == NULL || as_i64(mean_obj, &mean) < 0) {
            return -1;
        }
        if (mean == 0) {
            *out = 0;
            return 0;
        }
        PyObject *randf = slot_get(sampler, S.gw_randf);
        if (randf == NULL) {
            return -1;
        }
        PyObject *u_obj = PyObject_CallNoArgs(randf);
        if (u_obj == NULL) {
            return -1;
        }
        double u = PyFloat_AsDouble(u_obj);
        Py_DECREF(u_obj);
        if (u == -1.0 && PyErr_Occurred()) {
            return -1;
        }
        PyObject *l_obj = slot_get(sampler, S.gw_log1mp);
        if (l_obj == NULL) {
            return -1;
        }
        double log1mp = PyFloat_AsDouble(l_obj);
        if (log1mp == -1.0 && PyErr_Occurred()) {
            return -1;
        }
        if (u < 1e-12) {
            u = 1e-12;
        }
        *out = (int64_t)(log(u) / log1mp);
        return 0;
    }
    PyObject *r = PyObject_VectorcallMethod(
        s_sample, &sampler, 1 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
    if (r == NULL) {
        return -1;
    }
    int rc = as_i64(r, out);
    Py_DECREF(r);
    return rc;
}

/* Fill the attached OpCostAudit exactly like the audited handlers do. */
static int
audit_fill(PyObject *audit, PyObject *cell, int64_t stall, int64_t miss,
           int64_t base)
{
    slot_set(audit, S.a_cell, cell);
    if (set_slot_i64(audit, S.a_stall, stall) < 0) {
        return -1;
    }
    if (set_slot_i64(audit, S.a_miss, miss) < 0) {
        return -1;
    }
    return set_slot_i64(audit, S.a_base, base);
}

/* The cost-model jitter draw: advance the LCG, return a bounded sample. */
static inline int64_t
jitter_draw(uint64_t *lcg, int64_t bound_plus1)
{
    *lcg = *lcg * LCG_A + LCG_C;
    return (int64_t)((*lcg >> 33) % (uint64_t)bound_plus1);
}

/* Mark the running task finished (DONE/FAILED bookkeeping shared path). */
static int
finish_task(PyObject *sched, PyObject *task, PyObject *state,
            int64_t tclock, int64_t tsteps, int procs_enabled)
{
    slot_set(task, S.t_state, state);
    PyObject *c = PyLong_FromLongLong(tclock);
    PyObject *st = PyLong_FromLongLong(tsteps);
    if (c == NULL || st == NULL) {
        Py_XDECREF(c);
        Py_XDECREF(st);
        return -1;
    }
    slot_set(task, S.t_clock, c);
    slot_set(task, S.t_steps, st);
    Py_DECREF(c);
    Py_DECREF(st);
    slot_set(task, S.t_pending_value, Py_None);
    slot_set(task, S.t_pending_exc, Py_None);
    if (live_add(sched, -1) < 0) {
        return -1;
    }
    if (procs_enabled && call_method1(sched, s_unbind, task) < 0) {
        return -1;
    }
    return 0;
}

static void
raise_step_limit(int64_t limit)
{
    PyObject *lim = PyLong_FromLongLong(limit);
    if (lim != NULL) {
        PyErr_SetObject(S.exc_steplimit, lim);
        Py_DECREF(lim);
    }
}

static PyObject *
engine_run_fast(PyObject *self, PyObject *sched)
{
    (void)self;
    if (!S.ready) {
        PyErr_SetString(PyExc_RuntimeError, "engine not configured");
        return NULL;
    }

    PyObject *cost = NULL, *policy = NULL, *heap = NULL, *params = NULL;
    PyObject *unbound = NULL, *procs_obj = NULL, *tasks_list = NULL;
    PyObject *pending = NULL;
    PyObject *result = NULL;
    int failed = 1;
    int engaged = 0; /* set once steps/lcg are loaded; gates the finally-sync */

    cost = PyObject_GetAttr(sched, s_cost);
    if (cost == NULL) goto cleanup;
    policy = PyObject_GetAttr(sched, s_policy);
    if (policy == NULL) goto cleanup;
    heap = PyObject_GetAttr(policy, s_heap);
    if (heap == NULL || !PyList_CheckExact(heap)) {
        if (heap != NULL) {
            PyErr_SetString(PyExc_TypeError, "engine: policy._heap is not a list");
        }
        goto cleanup;
    }
    params = PyObject_GetAttr(cost, s_p);
    if (params == NULL) goto cleanup;
    unbound = PyObject_GetAttr(sched, s_unbound);
    if (unbound == NULL) goto cleanup;
    procs_obj = PyObject_GetAttr(sched, s_processors);
    if (procs_obj == NULL) goto cleanup;
    tasks_list = PyObject_GetAttr(sched, s_tasks);
    if (tasks_list == NULL) goto cleanup;
    if (!PyList_CheckExact(tasks_list)) {
        PyErr_SetString(PyExc_TypeError, "engine: scheduler.tasks is not a list");
        goto cleanup;
    }
    int procs_enabled = (procs_obj != Py_None);

    int64_t read_hit, write_cost, rmw_cost, remote_miss, read_miss;
    int64_t park_cost, unpark_cost, wake_latency, spin_cost, yield_cost;
    int64_t alloc_cost, jit, limit, steps;
    if (attr_i64(params, s_read_hit, &read_hit) < 0) goto cleanup;
    if (attr_i64(params, s_write, &write_cost) < 0) goto cleanup;
    if (attr_i64(params, s_rmw, &rmw_cost) < 0) goto cleanup;
    if (attr_i64(params, s_remote_miss, &remote_miss) < 0) goto cleanup;
    if (attr_i64(params, s_read_miss, &read_miss) < 0) goto cleanup;
    if (attr_i64(params, s_park, &park_cost) < 0) goto cleanup;
    if (attr_i64(params, s_unpark, &unpark_cost) < 0) goto cleanup;
    if (attr_i64(params, s_wake_latency, &wake_latency) < 0) goto cleanup;
    if (attr_i64(params, s_spin, &spin_cost) < 0) goto cleanup;
    if (attr_i64(params, s_yield_, &yield_cost) < 0) goto cleanup;
    if (attr_i64(params, s_alloc, &alloc_cost) < 0) goto cleanup;
    if (attr_i64(params, s_jitter, &jit) < 0) goto cleanup;
    if (attr_i64(sched, s_max_steps, &limit) < 0) goto cleanup;
    if (attr_i64(sched, s_total_steps, &steps) < 0) goto cleanup;
    int64_t jit1 = jit + 1, rm1 = remote_miss + 1, rd1 = read_miss + 1;

    uint64_t lcg = 0;
    {
        PyObject *l = PyObject_GetAttr(cost, s_lcg);
        if (l == NULL) goto cleanup;
        lcg = PyLong_AsUnsignedLongLong(l);
        Py_DECREF(l);
        if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto cleanup;
    }
    engaged = 1;

    /* ---------------- outer loop: one stint per iteration ------------ */
    for (;;) {
        int64_t live;
        if (live_count(sched, &live) < 0) goto cleanup;
        if (live <= 0) break;

        /* -- policy.next(), inlined ----------------------------------- */
        PyObject *entry = NULL;
        if (pending != NULL) {
            PyObject *e;
            if (PyList_GET_SIZE(heap) > 0) {
                e = heap_pushpop(heap, pending);
            }
            else {
                e = pending;
                Py_INCREF(e);
            }
            Py_CLEAR(pending);
            if (e == NULL) goto cleanup;
            PyObject *t = PyTuple_GET_ITEM(e, 2);
            int64_t tc, ec;
            PyObject *tco = slot_get(t, S.t_clock);
            if (tco == NULL) { Py_DECREF(e); goto cleanup; }
            if (as_i64(tco, &tc) < 0 || as_i64(PyTuple_GET_ITEM(e, 0), &ec) < 0) {
                Py_DECREF(e);
                goto cleanup;
            }
            if (SLOT(t, S.t_state) == S.st_runnable && tc == ec) {
                entry = e;
            }
            else {
                Py_DECREF(e);
            }
        }
        if (entry == NULL) {
            while (PyList_GET_SIZE(heap) > 0) {
                PyObject *e = heap_pop(heap);
                if (e == NULL) goto cleanup;
                PyObject *t = PyTuple_GET_ITEM(e, 2);
                int64_t tc, ec;
                PyObject *tco = slot_get(t, S.t_clock);
                if (tco == NULL) { Py_DECREF(e); goto cleanup; }
                if (as_i64(tco, &tc) < 0 || as_i64(PyTuple_GET_ITEM(e, 0), &ec) < 0) {
                    Py_DECREF(e);
                    goto cleanup;
                }
                if (SLOT(t, S.t_state) != S.st_runnable || tc != ec) {
                    Py_DECREF(e); /* stale entry; a fresher one exists */
                    continue;
                }
                entry = e;
                break;
            }
        }
        if (entry == NULL) {
            int has_unbound = PyObject_IsTrue(unbound);
            if (has_unbound < 0) goto cleanup;
            if (has_unbound) { /* defensive: bind and keep going */
                PyObject *t = PyObject_CallMethodObjArgs(unbound, s_popleft, NULL);
                if (t == NULL) goto cleanup;
                int rc = call_method1(sched, s_bind, t);
                Py_DECREF(t);
                if (rc < 0) goto cleanup;
                continue;
            }
            /* deadlock check over all tasks */
            PyObject *parked = PyList_New(0);
            if (parked == NULL) goto cleanup;
            Py_ssize_t ntasks = PyList_GET_SIZE(tasks_list);
            for (Py_ssize_t i = 0; i < ntasks; i++) {
                PyObject *t = PyList_GET_ITEM(tasks_list, i);
                if (SLOT(t, S.t_state) == S.st_parked) {
                    PyObject *nm = slot_get(t, S.t_name);
                    if (nm == NULL || PyList_Append(parked, nm) < 0) {
                        Py_DECREF(parked);
                        goto cleanup;
                    }
                }
            }
            if (PyList_GET_SIZE(parked) > 0) {
                PyErr_SetObject(S.exc_deadlock, parked);
                Py_DECREF(parked);
                goto cleanup;
            }
            Py_DECREF(parked);
            break; /* spawned nothing / all finished */
        }

        /* -- stint setup ---------------------------------------------- */
        PyObject *task = PyTuple_GET_ITEM(entry, 2);
        Py_INCREF(task);
        PyObject *gen = slot_get(task, S.t_gen);           /* borrowed */
        PyObject *send = slot_get(task, S.t_send_fn);      /* borrowed */
        PyObject *tid_obj = slot_get(task, S.t_tid);       /* borrowed */
        PyObject *tcache = slot_get(task, S.t_cache);      /* borrowed */
        if (gen == NULL || send == NULL || tid_obj == NULL || tcache == NULL) {
            Py_DECREF(task);
            Py_DECREF(entry);
            goto cleanup;
        }
        int64_t ttid, tclock, tsteps;
        PyObject *send_value = NULL; /* owned or NULL (= None) */
        PyObject *throw_exc = NULL;  /* owned or NULL (= no exception) */
        {
            PyObject *tco = slot_get(task, S.t_clock);
            if (tco == NULL || as_i64(tid_obj, &ttid) < 0 || as_i64(tco, &tclock) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
        }
        if (PyTuple_GET_SIZE(entry) == 6) {
            if (as_i64(PyTuple_GET_ITEM(entry, 3), &tsteps) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            send_value = PyTuple_GET_ITEM(entry, 4);
            Py_INCREF(send_value);
            PyObject *e5 = PyTuple_GET_ITEM(entry, 5);
            if (e5 != Py_None) {
                throw_exc = e5;
                Py_INCREF(throw_exc);
            }
        }
        else {
            PyObject *ts = slot_get(task, S.t_steps);
            if (ts == NULL || as_i64(ts, &tsteps) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            send_value = slot_get(task, S.t_pending_value);
            if (send_value == NULL) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            Py_INCREF(send_value);
            PyObject *pe = SLOT(task, S.t_pending_exc);
            if (pe != NULL && pe != Py_None) {
                throw_exc = pe;
                Py_INCREF(throw_exc);
            }
        }
        Py_DECREF(entry);

        int64_t next_clock = INT64_MAX;
        if (PyList_GET_SIZE(heap) > 0) {
            if (as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0), &next_clock) < 0) {
                Py_XDECREF(send_value);
                Py_XDECREF(throw_exc);
                Py_DECREF(task);
                goto cleanup;
            }
        }

        /* -- inner loop: one op per iteration ------------------------- */
        int stint_error = 0;
        for (;;) {
            steps += 1;
            PyObject *op;
            if (throw_exc != NULL) {
                PyObject *exc = throw_exc;
                PyObject *targs[2] = {gen, exc};
                throw_exc = NULL;
                op = PyObject_VectorcallMethod(
                    s_throw, targs, 2 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                Py_DECREF(exc);
            }
            else {
                PyObject *value = send_value; /* may be NULL = None */
                send_value = NULL;
                op = PyObject_CallOneArg(send, value ? value : Py_None);
                Py_XDECREF(value);
            }
            if (op == NULL) {
                /* task completed or failed */
                PyObject *ptype, *pvalue, *ptb;
                PyErr_Fetch(&ptype, &pvalue, &ptb);
                PyErr_NormalizeException(&ptype, &pvalue, &ptb);
                if (ptb != NULL && pvalue != NULL) {
                    PyException_SetTraceback(pvalue, ptb);
                }
                int is_stop = (ptype != NULL
                               && PyErr_GivenExceptionMatches(ptype, PyExc_StopIteration));
                if (is_stop) {
                    PyObject *retval = pvalue
                        ? PyObject_GetAttr(pvalue, s_value)
                        : Py_NewRef(Py_None);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                    if (retval == NULL) {
                        stint_error = 1;
                        break;
                    }
                    slot_set(task, S.t_value, retval);
                    Py_DECREF(retval);
                    if (finish_task(sched, task, S.st_done, tclock, tsteps,
                                    procs_enabled) < 0) {
                        stint_error = 1;
                        break;
                    }
                }
                else if (pvalue != NULL) {
                    slot_set(task, S.t_error, pvalue);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                    if (finish_task(sched, task, S.st_failed, tclock, tsteps,
                                    procs_enabled) < 0) {
                        stint_error = 1;
                        break;
                    }
                }
                else {
                    /* send() returned NULL without an exception set */
                    PyErr_Restore(ptype, pvalue, ptb);
                    if (!PyErr_Occurred()) {
                        PyErr_SetString(PyExc_SystemError,
                                        "engine: generator returned NULL without error");
                    }
                    stint_error = 1;
                    break;
                }
                if (steps > limit) {
                    raise_step_limit(limit);
                    stint_error = 1;
                }
                break;
            }
            tsteps += 1;
            PyObject *tp = (PyObject *)Py_TYPE(op);

            /* -- cost.charge + apply_memory_op, fused ----------------- */
            if (tp == S.tp_read) {
                PyObject *cell = slot_get(op, S.op_read_cell);
                PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                if (line == NULL) goto op_error;
                int64_t base = jit ? read_hit + jitter_draw(&lcg, jit1) : read_hit;
                PyObject *lw = SLOT(line, S.l_last_writer);
                int64_t lwv = -1;
                if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0) goto op_error;
                if (lw != NULL && lw != Py_None && lwv != ttid) {
                    PyObject *loc = slot_get(line, S.l_loc_id);
                    PyObject *wt_obj = loc ? slot_get(line, S.l_write_time) : NULL;
                    if (wt_obj == NULL) goto op_error;
                    int64_t wt, seen = -1;
                    if (as_i64(wt_obj, &wt) < 0) goto op_error;
                    PyObject *seen_obj = PyDict_GetItemWithError(tcache, loc);
                    if (seen_obj == NULL && PyErr_Occurred()) goto op_error;
                    if (seen_obj != NULL && as_i64(seen_obj, &seen) < 0) goto op_error;
                    if (wt > seen) {
                        int64_t miss = read_miss;
                        if (jit && read_miss) {
                            miss += jitter_draw(&lcg, rd1);
                        }
                        if (PyDict_SetItem(tcache, loc, wt_obj) < 0) goto op_error;
                        /* A read cannot complete before the owning
                         * writer's store retires. */
                        PyObject *av_obj = slot_get(line, S.l_avail_time);
                        int64_t avail;
                        if (av_obj == NULL || as_i64(av_obj, &avail) < 0) goto op_error;
                        if (avail > tclock) {
                            tclock = avail;
                        }
                        tclock += base + miss;
                    }
                    else {
                        tclock += base;
                    }
                }
                else {
                    tclock += base;
                }
                send_value = slot_get(cell, S.c_value);
                if (send_value == NULL) goto op_error;
                Py_INCREF(send_value);
            }
            else if (tp == S.tp_faa || tp == S.tp_cas || tp == S.tp_gas
                     || tp == S.tp_write) {
                Py_ssize_t cell_off =
                    tp == S.tp_faa ? S.op_faa_cell :
                    tp == S.tp_cas ? S.op_cas_cell :
                    tp == S.tp_gas ? S.op_gas_cell : S.op_write_cell;
                PyObject *cell = slot_get(op, cell_off);
                PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                if (line == NULL) goto op_error;
                int64_t start = tclock;
                {
                    PyObject *at_obj = slot_get(line, S.l_avail_time);
                    int64_t at;
                    if (at_obj == NULL || as_i64(at_obj, &at) < 0) goto op_error;
                    if (at > start) {
                        start = at;
                    }
                }
                int64_t base = jit ? jitter_draw(&lcg, jit1) : 0;
                base += (tp == S.tp_write) ? write_cost : rmw_cost;
                PyObject *lw = SLOT(line, S.l_last_writer);
                int64_t end, lwv = -1;
                if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0) goto op_error;
                if (lw != NULL && lw != Py_None && lwv != ttid) {
                    int64_t miss = remote_miss;
                    if (jit && remote_miss) {
                        miss += jitter_draw(&lcg, rm1);
                    }
                    end = start + base + miss;
                }
                else {
                    end = start + base;
                }
                tclock = end;
                {
                    PyObject *end_obj = PyLong_FromLongLong(end);
                    if (end_obj == NULL) goto op_error;
                    slot_set(line, S.l_avail_time, end_obj);
                    slot_set(line, S.l_last_writer, tid_obj);
                    slot_set(line, S.l_write_time, end_obj);
                    PyObject *loc = slot_get(line, S.l_loc_id);
                    if (loc == NULL
                        || PyDict_SetItem(tcache, loc, end_obj) < 0) {
                        Py_DECREF(end_obj);
                        goto op_error;
                    }
                    Py_DECREF(end_obj);
                }
                if (tp == S.tp_faa) {
                    PyObject *old = slot_get(cell, S.c_value);
                    PyObject *delta = old ? slot_get(op, S.op_faa_delta) : NULL;
                    if (delta == NULL) goto op_error;
                    Py_INCREF(old);
                    PyObject *nv = PyNumber_Add(old, delta);
                    if (nv == NULL) {
                        Py_DECREF(old);
                        goto op_error;
                    }
                    slot_set(cell, S.c_value, nv);
                    Py_DECREF(nv);
                    send_value = old;
                }
                else if (tp == S.tp_cas) {
                    PyObject *cur = slot_get(cell, S.c_value);
                    PyObject *expected = cur ? slot_get(op, S.op_cas_expected) : NULL;
                    if (expected == NULL) goto op_error;
                    int eq;
                    PyObject *cell_tp = (PyObject *)Py_TYPE(cell);
                    if (cell_tp == S.tp_refcell) {
                        eq = (cur == expected);
                    }
                    else if (cell_tp == S.tp_intcell) {
                        PyObject *r = PyObject_RichCompare(cur, expected, Py_EQ);
                        if (r == NULL) goto op_error;
                        eq = PyObject_IsTrue(r);
                        Py_DECREF(r);
                        if (eq < 0) goto op_error;
                    }
                    else {
                        /* custom cell subtype: defer to its compare() */
                        PyObject *cmpargs[3] = {cell, cur, expected};
                        PyObject *r = PyObject_VectorcallMethod(
                            s_compare, cmpargs,
                            3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                        if (r == NULL) goto op_error;
                        eq = PyObject_IsTrue(r);
                        Py_DECREF(r);
                        if (eq < 0) goto op_error;
                    }
                    if (eq) {
                        PyObject *update = slot_get(op, S.op_cas_update);
                        if (update == NULL) goto op_error;
                        slot_set(cell, S.c_value, update);
                        send_value = Py_NewRef(Py_True);
                    }
                    else {
                        send_value = Py_NewRef(Py_False);
                    }
                }
                else if (tp == S.tp_write) {
                    PyObject *nv = slot_get(op, S.op_write_value);
                    if (nv == NULL) goto op_error;
                    slot_set(cell, S.c_value, nv);
                    /* resumes with None: send_value stays NULL */
                }
                else { /* GetAndSet */
                    PyObject *old = slot_get(cell, S.c_value);
                    PyObject *nv = old ? slot_get(op, S.op_gas_value) : NULL;
                    if (nv == NULL) goto op_error;
                    Py_INCREF(old);
                    slot_set(cell, S.c_value, nv);
                    send_value = old;
                }
            }
            else if (tp == S.tp_work) {
                PyObject *cyc = slot_get(op, S.op_work_cycles);
                int64_t cycles;
                if (cyc == NULL || as_i64(cyc, &cycles) < 0) goto op_error;
                tclock += cycles;
            }
            else if (tp == S.tp_sampledwork) {
                /* Drawn from the sampler's own RNG stream, not the
                 * jitter LCG; zero draws charge zero cycles. */
                int64_t k;
                if (sampled_work_draw(op, &k) < 0) goto op_error;
                tclock += k;
            }
            else if (tp == S.tp_yield) {
                tclock += yield_cost;
            }
            else if (tp == S.tp_spin) {
                /* DesPolicy.on_voluntary_yield is the base-class no-op */
                tclock += spin_cost;
            }
            else if (tp == S.tp_park) {
                tclock += park_cost;
                PyObject *ip = SLOT(task, S.t_interrupt_pending);
                PyObject *rp = SLOT(task, S.t_retry_pending);
                PyObject *up = SLOT(task, S.t_unpark_pending);
                int ipt = ip ? PyObject_IsTrue(ip) : 0;
                int rpt = rp ? PyObject_IsTrue(rp) : 0;
                int upt = up ? PyObject_IsTrue(up) : 0;
                if (ipt < 0 || rpt < 0 || upt < 0) goto op_error;
                if (ipt) {
                    slot_set(task, S.t_interrupt_pending, Py_False);
                    throw_exc = PyObject_CallNoArgs(S.exc_interrupted);
                    if (throw_exc == NULL) goto op_error;
                }
                else if (rpt) {
                    slot_set(task, S.t_retry_pending, Py_False);
                    throw_exc = PyObject_CallNoArgs(S.exc_retry);
                    if (throw_exc == NULL) goto op_error;
                }
                else if (upt) {
                    slot_set(task, S.t_unpark_pending, Py_False); /* permit consumed */
                }
                else {
                    slot_set(task, S.t_state, S.st_parked);
                    {
                        PyObject *pc = slot_get(task, S.t_park_count);
                        int64_t pcv;
                        if (pc == NULL || as_i64(pc, &pcv) < 0) goto op_error;
                        PyObject *npc = PyLong_FromLongLong(pcv + 1);
                        if (npc == NULL) goto op_error;
                        slot_set(task, S.t_park_count, npc);
                        Py_DECREF(npc);
                    }
                    PyObject *c = PyLong_FromLongLong(tclock);
                    PyObject *st = PyLong_FromLongLong(tsteps);
                    if (c == NULL || st == NULL) {
                        Py_XDECREF(c);
                        Py_XDECREF(st);
                        goto op_error;
                    }
                    slot_set(task, S.t_clock, c);
                    slot_set(task, S.t_steps, st);
                    Py_DECREF(c);
                    Py_DECREF(st);
                    slot_set(task, S.t_pending_value,
                             send_value ? send_value : Py_None);
                    slot_set(task, S.t_pending_exc,
                             throw_exc ? throw_exc : Py_None);
                    Py_DECREF(op);
                    if (procs_enabled && call_method1(sched, s_unbind, task) < 0) {
                        stint_error = 1;
                        break;
                    }
                    if (steps > limit) {
                        raise_step_limit(limit);
                        stint_error = 1;
                    }
                    break;
                }
            }
            else if (tp == S.tp_unpark) {
                tclock += unpark_cost;
                PyObject *target = slot_get(op, S.op_unpark_task);
                if (target == NULL) goto op_error;
                PyObject *oi = slot_get(op, S.op_unpark_interrupt);
                PyObject *orr = oi ? slot_get(op, S.op_unpark_retry) : NULL;
                if (orr == NULL) goto op_error;
                int interrupt = PyObject_IsTrue(oi);
                int retry = PyObject_IsTrue(orr);
                if (interrupt < 0 || retry < 0) goto op_error;
                if (SLOT(target, S.t_state) == S.st_parked) {
                    if (interrupt) {
                        PyObject *e = PyObject_CallNoArgs(S.exc_interrupted);
                        if (e == NULL) goto op_error;
                        slot_set(target, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    else if (retry) {
                        PyObject *e = PyObject_CallNoArgs(S.exc_retry);
                        if (e == NULL) goto op_error;
                        slot_set(target, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    slot_set(target, S.t_state, S.st_runnable);
                    /* cost.wake, inlined */
                    PyObject *tc_obj = slot_get(target, S.t_clock);
                    int64_t wbase;
                    if (tc_obj == NULL || as_i64(tc_obj, &wbase) < 0) goto op_error;
                    if (tclock > wbase) {
                        wbase = tclock;
                    }
                    PyObject *nc = PyLong_FromLongLong(wbase + wake_latency);
                    if (nc == NULL) goto op_error;
                    slot_set(target, S.t_clock, nc);
                    Py_DECREF(nc);
                    if (call_method1(sched, s_make_runnable, target) < 0) goto op_error;
                    /* The fresh entry may now be the earliest. */
                    next_clock = INT64_MAX;
                    if (PyList_GET_SIZE(heap) > 0
                        && as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0),
                                  &next_clock) < 0) goto op_error;
                }
                else if (interrupt) {
                    slot_set(target, S.t_interrupt_pending, Py_True);
                }
                else if (retry) {
                    slot_set(target, S.t_retry_pending, Py_True);
                }
                else {
                    slot_set(target, S.t_unpark_pending, Py_True);
                }
            }
            else if (tp == S.tp_current) {
                send_value = Py_NewRef(task);
            }
            else if (tp == S.tp_alloc) {
                tclock += alloc_cost;
            }
            else if (tp == S.tp_label) {
                /* no effect */
            }
            else {
                /* Unknown op subtype: fall back to the general handlers
                 * (sync task + LCG state around the call), exactly like
                 * the Python fast lane. */
                PyObject *c = PyLong_FromLongLong(tclock);
                if (c == NULL) goto op_error;
                slot_set(task, S.t_clock, c);
                Py_DECREF(c);
                slot_set(task, S.t_pending_value,
                         send_value ? send_value : Py_None);
                Py_CLEAR(send_value);
                PyObject *l = PyLong_FromUnsignedLongLong(lcg);
                if (l == NULL || PyObject_SetAttr(cost, s_lcg, l) < 0) {
                    Py_XDECREF(l);
                    goto op_error;
                }
                Py_DECREF(l);
                PyObject *r;
                {
                    PyObject *fargs[3] = {cost, task, op};
                    r = PyObject_VectorcallMethod(
                        s_charge, fargs, 3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                }
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                {
                    PyObject *fargs[3] = {sched, task, op};
                    r = PyObject_VectorcallMethod(
                        s_dispatch, fargs, 3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                }
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                l = PyObject_GetAttr(cost, s_lcg);
                if (l == NULL) goto op_error;
                lcg = PyLong_AsUnsignedLongLong(l);
                Py_DECREF(l);
                if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto op_error;
                PyObject *tc_obj = slot_get(task, S.t_clock);
                if (tc_obj == NULL || as_i64(tc_obj, &tclock) < 0) goto op_error;
                send_value = slot_get(task, S.t_pending_value);
                if (send_value == NULL) goto op_error;
                Py_INCREF(send_value);
                next_clock = INT64_MAX;
                if (PyList_GET_SIZE(heap) > 0
                    && as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0),
                              &next_clock) < 0) goto op_error;
            }

            if (steps > limit) {
                PyObject *c = PyLong_FromLongLong(tclock);
                PyObject *st = PyLong_FromLongLong(tsteps);
                if (c != NULL && st != NULL) {
                    slot_set(task, S.t_clock, c);
                    slot_set(task, S.t_steps, st);
                    slot_set(task, S.t_pending_value,
                             send_value ? send_value : Py_None);
                    slot_set(task, S.t_pending_exc,
                             throw_exc ? throw_exc : Py_None);
                    raise_step_limit(limit);
                }
                Py_XDECREF(c);
                Py_XDECREF(st);
                Py_DECREF(op);
                stint_error = 1;
                break;
            }

            /* -- keep_running + requeue, inlined ---------------------- */
            if (tclock > next_clock) {
                /* Wide entry: resume state rides in the heap entry. */
                PyObject *c = PyLong_FromLongLong(tclock);
                PyObject *st = PyLong_FromLongLong(tsteps);
                if (c == NULL || st == NULL) {
                    Py_XDECREF(c);
                    Py_XDECREF(st);
                    Py_DECREF(op);
                    stint_error = 1;
                    break;
                }
                slot_set(task, S.t_clock, c);
                PyObject *wide = PyTuple_New(6);
                if (wide == NULL) {
                    Py_DECREF(c);
                    Py_DECREF(st);
                    Py_DECREF(op);
                    stint_error = 1;
                    break;
                }
                PyTuple_SET_ITEM(wide, 0, c);                       /* steals */
                PyTuple_SET_ITEM(wide, 1, Py_NewRef(tid_obj));
                PyTuple_SET_ITEM(wide, 2, Py_NewRef(task));
                PyTuple_SET_ITEM(wide, 3, st);                      /* steals */
                PyTuple_SET_ITEM(wide, 4,
                                 send_value ? send_value : Py_NewRef(Py_None));
                send_value = NULL;                                  /* moved */
                PyTuple_SET_ITEM(wide, 5,
                                 throw_exc ? throw_exc : Py_NewRef(Py_None));
                throw_exc = NULL;                                   /* moved */
                pending = wide;
                Py_DECREF(op);
                break;
            }
            Py_DECREF(op);
            continue;

        op_error:
            Py_DECREF(op);
            stint_error = 1;
            break;
        }

        Py_XDECREF(send_value);
        Py_XDECREF(throw_exc);
        Py_DECREF(task);
        if (stint_error) goto cleanup;
    }

    failed = 0;
    result = Py_NewRef(Py_None);

cleanup:
    /* ``finally:`` — restore global engine state exactly. */
    {
        PyObject *etype = NULL, *evalue = NULL, *etb = NULL;
        if (failed) {
            PyErr_Fetch(&etype, &evalue, &etb);
        }
        if (engaged) {
            PyObject *steps_obj = PyLong_FromLongLong(steps);
            if (steps_obj != NULL) {
                PyObject_SetAttr(sched, s_total_steps, steps_obj);
                Py_DECREF(steps_obj);
            }
            PyObject *lcg_obj = PyLong_FromUnsignedLongLong(lcg);
            if (lcg_obj != NULL) {
                PyObject_SetAttr(cost, s_lcg, lcg_obj);
                Py_DECREF(lcg_obj);
            }
            if (PyErr_Occurred()) {
                /* a sync failure must not mask the original error */
                if (etype != NULL) {
                    PyErr_Clear();
                }
            }
        }
        if (etype != NULL || evalue != NULL || etb != NULL) {
            PyErr_Restore(etype, evalue, etb);
        }
    }
    Py_XDECREF(pending);
    Py_XDECREF(cost);
    Py_XDECREF(policy);
    Py_XDECREF(heap);
    Py_XDECREF(params);
    Py_XDECREF(unbound);
    Py_XDECREF(procs_obj);
    Py_XDECREF(tasks_list);
    return result;
}

/* NOTE: the fused loop intentionally skips ``steps`` sync until the
 * cleanup block above, exactly mirroring the Python fast lane's
 * ``finally`` — observers attach only between runs, never during. */

/* ------------------------------------------------------------------ */
/* run_observed()                                                      */
/* ------------------------------------------------------------------ */

/* The observed-path core: ``_run_general`` + ``_step_task`` +
 * ``DesPolicy`` transcribed, with Python callouts at observation
 * points.  Parity contract (pinned by the hooked-golden tests):
 *
 *   - per-op write-through: ``sched.total_steps`` is stored *before*
 *     the generator resumes (the resumed task can read it, exactly as
 *     in Python), and ``task.clock`` / ``task.steps`` / pending
 *     value/exc are stored before any hook runs;
 *   - the resume clears exactly one of pending_exc / pending_value,
 *     like ``_step_task`` (the other may legitimately stay stale);
 *   - the audit tap is re-read from ``cost._audit`` every op (hooks
 *     may attach or clear it mid-run); a tap that is exactly
 *     ``OpCostAudit`` is filled natively, any other type routes the
 *     whole charge through ``cost.charge`` so duck-typed taps keep
 *     working;
 *   - the jitter LCG lives in a C local but is synced into
 *     ``cost._lcg`` before every Python callout that could read it
 *     (hooks, charge fallback) and re-read afterwards;
 *   - completion calls ``policy.forget(task)`` and does NOT bump
 *     ``task.steps`` or run hooks, exactly like ``_step_task``.
 */
static PyObject *
engine_run_observed(PyObject *self, PyObject *sched)
{
    (void)self;
    if (!S.ready) {
        PyErr_SetString(PyExc_RuntimeError, "engine not configured");
        return NULL;
    }

    PyObject *cost = NULL, *policy = NULL, *heap = NULL, *params = NULL;
    PyObject *unbound = NULL, *procs_obj = NULL, *tasks_list = NULL;
    PyObject *charge_fn = NULL, *dispatch_fn = NULL;
    PyObject *result = NULL;
    int failed = 1;
    int engaged = 0;

    cost = PyObject_GetAttr(sched, s_cost);
    if (cost == NULL) goto cleanup;
    policy = PyObject_GetAttr(sched, s_policy);
    if (policy == NULL) goto cleanup;
    heap = PyObject_GetAttr(policy, s_heap);
    if (heap == NULL || !PyList_CheckExact(heap)) {
        if (heap != NULL) {
            PyErr_SetString(PyExc_TypeError, "engine: policy._heap is not a list");
        }
        goto cleanup;
    }
    params = PyObject_GetAttr(cost, s_p);
    if (params == NULL) goto cleanup;
    unbound = PyObject_GetAttr(sched, s_unbound);
    if (unbound == NULL) goto cleanup;
    procs_obj = PyObject_GetAttr(sched, s_processors);
    if (procs_obj == NULL) goto cleanup;
    tasks_list = PyObject_GetAttr(sched, s_tasks);
    if (tasks_list == NULL) goto cleanup;
    if (!PyList_CheckExact(tasks_list)) {
        PyErr_SetString(PyExc_TypeError, "engine: scheduler.tasks is not a list");
        goto cleanup;
    }
    /* Cached callables for the per-op Python fallback (unknown op types
     * and custom audit taps); the bound methods never change mid-run. */
    charge_fn = PyObject_GetAttr(cost, s_charge);
    if (charge_fn == NULL) goto cleanup;
    dispatch_fn = PyObject_GetAttr(sched, s_dispatch);
    if (dispatch_fn == NULL) goto cleanup;
    int procs_enabled = (procs_obj != Py_None);

    int64_t read_hit, write_cost, rmw_cost, remote_miss, read_miss;
    int64_t park_cost, unpark_cost, wake_latency, spin_cost, yield_cost;
    int64_t alloc_cost, jit, limit, steps;
    if (attr_i64(params, s_read_hit, &read_hit) < 0) goto cleanup;
    if (attr_i64(params, s_write, &write_cost) < 0) goto cleanup;
    if (attr_i64(params, s_rmw, &rmw_cost) < 0) goto cleanup;
    if (attr_i64(params, s_remote_miss, &remote_miss) < 0) goto cleanup;
    if (attr_i64(params, s_read_miss, &read_miss) < 0) goto cleanup;
    if (attr_i64(params, s_park, &park_cost) < 0) goto cleanup;
    if (attr_i64(params, s_unpark, &unpark_cost) < 0) goto cleanup;
    if (attr_i64(params, s_wake_latency, &wake_latency) < 0) goto cleanup;
    if (attr_i64(params, s_spin, &spin_cost) < 0) goto cleanup;
    if (attr_i64(params, s_yield_, &yield_cost) < 0) goto cleanup;
    if (attr_i64(params, s_alloc, &alloc_cost) < 0) goto cleanup;
    if (attr_i64(params, s_jitter, &jit) < 0) goto cleanup;
    if (attr_i64(sched, s_max_steps, &limit) < 0) goto cleanup;
    if (attr_i64(sched, s_total_steps, &steps) < 0) goto cleanup;
    int64_t jit1 = jit + 1, rm1 = remote_miss + 1, rd1 = read_miss + 1;

    uint64_t lcg = 0;
    {
        PyObject *l = PyObject_GetAttr(cost, s_lcg);
        if (l == NULL) goto cleanup;
        lcg = PyLong_AsUnsignedLongLong(l);
        Py_DECREF(l);
        if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto cleanup;
    }
    int lcg_synced = 1; /* cost._lcg currently equals the local */
    engaged = 1;

    /* ---------------- outer loop: one stint per iteration ------------ */
    for (;;) {
        int64_t live;
        if (live_count(sched, &live) < 0) goto cleanup;
        if (live <= 0) break;

        /* -- policy.next(), transcribed ------------------------------- */
        PyObject *task = NULL;
        while (PyList_GET_SIZE(heap) > 0) {
            PyObject *e = heap_pop(heap);
            if (e == NULL) goto cleanup;
            PyObject *t = PyTuple_GET_ITEM(e, 2);
            int64_t tc, ec;
            PyObject *tco = slot_get(t, S.t_clock);
            if (tco == NULL || as_i64(tco, &tc) < 0
                || as_i64(PyTuple_GET_ITEM(e, 0), &ec) < 0) {
                Py_DECREF(e);
                goto cleanup;
            }
            if (SLOT(t, S.t_state) != S.st_runnable || tc != ec) {
                Py_DECREF(e); /* stale entry; a fresher one exists */
                continue;
            }
            if (PyTuple_GET_SIZE(e) == 6) {
                /* Wide stint entry: restore the resume state the fast
                 * lane parked in the entry. */
                slot_set(t, S.t_steps, PyTuple_GET_ITEM(e, 3));
                slot_set(t, S.t_pending_value, PyTuple_GET_ITEM(e, 4));
                slot_set(t, S.t_pending_exc, PyTuple_GET_ITEM(e, 5));
            }
            task = Py_NewRef(t);
            Py_DECREF(e);
            break;
        }
        if (task == NULL) {
            int has_unbound = PyObject_IsTrue(unbound);
            if (has_unbound < 0) goto cleanup;
            if (has_unbound) { /* defensive: bind and keep going */
                PyObject *t = PyObject_CallMethodObjArgs(unbound, s_popleft, NULL);
                if (t == NULL) goto cleanup;
                int rc = call_method1(sched, s_bind, t);
                Py_DECREF(t);
                if (rc < 0) goto cleanup;
                continue;
            }
            /* deadlock check over all tasks */
            PyObject *parked = PyList_New(0);
            if (parked == NULL) goto cleanup;
            Py_ssize_t ntasks = PyList_GET_SIZE(tasks_list);
            for (Py_ssize_t i = 0; i < ntasks; i++) {
                PyObject *t = PyList_GET_ITEM(tasks_list, i);
                if (SLOT(t, S.t_state) == S.st_parked) {
                    PyObject *nm = slot_get(t, S.t_name);
                    if (nm == NULL || PyList_Append(parked, nm) < 0) {
                        Py_DECREF(parked);
                        goto cleanup;
                    }
                }
            }
            if (PyList_GET_SIZE(parked) > 0) {
                PyErr_SetObject(S.exc_deadlock, parked);
                Py_DECREF(parked);
                goto cleanup;
            }
            Py_DECREF(parked);
            break; /* spawned nothing / all finished */
        }

        /* -- stint setup ---------------------------------------------- */
        PyObject *gen = slot_get(task, S.t_gen);           /* borrowed */
        PyObject *send = slot_get(task, S.t_send_fn);      /* borrowed */
        PyObject *tid_obj = slot_get(task, S.t_tid);       /* borrowed */
        PyObject *tcache = slot_get(task, S.t_cache);      /* borrowed */
        int64_t ttid, tclock;
        if (gen == NULL || send == NULL || tid_obj == NULL || tcache == NULL) {
            Py_DECREF(task);
            goto cleanup;
        }
        {
            PyObject *tco = slot_get(task, S.t_clock);
            if (tco == NULL || as_i64(tid_obj, &ttid) < 0
                || as_i64(tco, &tclock) < 0) {
                Py_DECREF(task);
                goto cleanup;
            }
        }

        /* -- inner loop: one _step_task per iteration ----------------- */
        int stint_error = 0;
        while (!stint_error) {
            steps += 1;
            if (set_attr_i64(sched, s_total_steps, steps) < 0) {
                stint_error = 1;
                break;
            }
            PyObject *op = NULL;
            PyObject *pe = SLOT(task, S.t_pending_exc);
            if (pe != NULL && pe != Py_None) {
                Py_INCREF(pe);
                slot_set(task, S.t_pending_exc, Py_None);
                PyObject *targs[2] = {gen, pe};
                op = PyObject_VectorcallMethod(
                    s_throw, targs, 2 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                Py_DECREF(pe);
            }
            else {
                PyObject *val = slot_get(task, S.t_pending_value);
                if (val == NULL) {
                    stint_error = 1;
                    break;
                }
                Py_INCREF(val);
                slot_set(task, S.t_pending_value, Py_None);
                op = PyObject_CallOneArg(send, val);
                Py_DECREF(val);
            }
            if (op == NULL) {
                /* task completed or failed */
                PyObject *ptype, *pvalue, *ptb;
                PyErr_Fetch(&ptype, &pvalue, &ptb);
                PyErr_NormalizeException(&ptype, &pvalue, &ptb);
                if (ptb != NULL && pvalue != NULL) {
                    PyException_SetTraceback(pvalue, ptb);
                }
                int is_stop = (ptype != NULL
                               && PyErr_GivenExceptionMatches(ptype, PyExc_StopIteration));
                if (is_stop) {
                    PyObject *retval = pvalue
                        ? PyObject_GetAttr(pvalue, s_value)
                        : Py_NewRef(Py_None);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                    if (retval == NULL) {
                        stint_error = 1;
                        break;
                    }
                    slot_set(task, S.t_state, S.st_done);
                    slot_set(task, S.t_value, retval);
                    Py_DECREF(retval);
                }
                else if (pvalue != NULL) {
                    slot_set(task, S.t_state, S.st_failed);
                    slot_set(task, S.t_error, pvalue);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                }
                else {
                    PyErr_Restore(ptype, pvalue, ptb);
                    if (!PyErr_Occurred()) {
                        PyErr_SetString(PyExc_SystemError,
                                        "engine: generator returned NULL without error");
                    }
                    stint_error = 1;
                    break;
                }
                if (live_add(sched, -1) < 0
                    || call_method1(policy, s_forget, task) < 0
                    || (procs_enabled
                        && call_method1(sched, s_unbind, task) < 0)) {
                    stint_error = 1;
                    break;
                }
                if (steps > limit) {
                    raise_step_limit(limit);
                    stint_error = 1;
                }
                break;
            }

            /* task.steps += 1 (write-through; hooks read it) */
            {
                PyObject *ts = slot_get(task, S.t_steps);
                int64_t tsv;
                if (ts == NULL || as_i64(ts, &tsv) < 0) goto op_error;
                if (set_slot_i64(task, S.t_steps, tsv + 1) < 0) goto op_error;
            }

            PyObject *tp = (PyObject *)Py_TYPE(op);
            /* Re-read the audit tap every op: hooks attach/clear it. */
            PyObject *audit = SLOT(cost, S.cm_audit); /* borrowed */
            int audited = 0;
            if (audit != NULL && audit != Py_None) {
                audited = ((PyObject *)Py_TYPE(audit) == S.tp_audit) ? 1 : -1;
            }
            int known = (tp == S.tp_read || tp == S.tp_faa || tp == S.tp_cas
                         || tp == S.tp_gas || tp == S.tp_write
                         || tp == S.tp_work || tp == S.tp_sampledwork
                         || tp == S.tp_yield || tp == S.tp_spin
                         || tp == S.tp_park || tp == S.tp_unpark
                         || tp == S.tp_current || tp == S.tp_alloc
                         || tp == S.tp_label);

            if (!known || audited < 0) {
                /* -- cost.charge + _dispatch via Python --------------- */
                /* task.clock/pending_* attributes are already current
                 * (write-through), so the round-trip is exact. */
                if (!lcg_synced) {
                    PyObject *l = PyLong_FromUnsignedLongLong(lcg);
                    if (l == NULL || PyObject_SetAttr(cost, s_lcg, l) < 0) {
                        Py_XDECREF(l);
                        goto op_error;
                    }
                    Py_DECREF(l);
                    lcg_synced = 1;
                }
                PyObject *r;
                {
                    PyObject *fargs[2] = {task, op};
                    r = PyObject_Vectorcall(charge_fn, fargs, 2, NULL);
                }
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                {
                    PyObject *fargs[2] = {task, op};
                    r = PyObject_Vectorcall(dispatch_fn, fargs, 2, NULL);
                }
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                {
                    PyObject *l = PyObject_GetAttr(cost, s_lcg);
                    if (l == NULL) goto op_error;
                    lcg = PyLong_AsUnsignedLongLong(l);
                    Py_DECREF(l);
                    if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto op_error;
                }
                PyObject *tco = slot_get(task, S.t_clock);
                if (tco == NULL || as_i64(tco, &tclock) < 0) goto op_error;
            }
            else {
                /* -- native fused charge + apply ---------------------- */
                if (audited
                    && !(tp == S.tp_read || tp == S.tp_faa || tp == S.tp_cas
                         || tp == S.tp_gas || tp == S.tp_write)) {
                    /* no-shared-memory op: the _audited wrapper reset */
                    if (audit_fill(audit, Py_None, 0, 0, 0) < 0) goto op_error;
                }
                if (tp == S.tp_read) {
                    PyObject *cell = slot_get(op, S.op_read_cell);
                    PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                    if (line == NULL) goto op_error;
                    int64_t base = read_hit;
                    if (jit) {
                        base += jitter_draw(&lcg, jit1);
                        lcg_synced = 0;
                    }
                    int64_t miss = 0, stall = 0;
                    PyObject *lw = SLOT(line, S.l_last_writer);
                    int64_t lwv = -1;
                    if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0)
                        goto op_error;
                    if (lw != NULL && lw != Py_None && lwv != ttid) {
                        PyObject *loc = slot_get(line, S.l_loc_id);
                        PyObject *wt_obj = loc ? slot_get(line, S.l_write_time) : NULL;
                        if (wt_obj == NULL) goto op_error;
                        int64_t wt, seen = -1;
                        if (as_i64(wt_obj, &wt) < 0) goto op_error;
                        PyObject *seen_obj = PyDict_GetItemWithError(tcache, loc);
                        if (seen_obj == NULL && PyErr_Occurred()) goto op_error;
                        if (seen_obj != NULL && as_i64(seen_obj, &seen) < 0)
                            goto op_error;
                        if (wt > seen) {
                            miss = read_miss;
                            if (jit && read_miss) {
                                miss += jitter_draw(&lcg, rd1);
                                lcg_synced = 0;
                            }
                            if (PyDict_SetItem(tcache, loc, wt_obj) < 0)
                                goto op_error;
                            PyObject *av_obj = slot_get(line, S.l_avail_time);
                            int64_t avail;
                            if (av_obj == NULL || as_i64(av_obj, &avail) < 0)
                                goto op_error;
                            if (avail > tclock) {
                                stall = avail - tclock;
                                tclock = avail;
                            }
                        }
                    }
                    tclock += base + miss;
                    PyObject *v = slot_get(cell, S.c_value);
                    if (v == NULL) goto op_error;
                    slot_set(task, S.t_pending_value, v);
                    if (audited
                        && audit_fill(audit, cell, stall, miss, base) < 0)
                        goto op_error;
                }
                else if (tp == S.tp_faa || tp == S.tp_cas || tp == S.tp_gas
                         || tp == S.tp_write) {
                    Py_ssize_t cell_off =
                        tp == S.tp_faa ? S.op_faa_cell :
                        tp == S.tp_cas ? S.op_cas_cell :
                        tp == S.tp_gas ? S.op_gas_cell : S.op_write_cell;
                    PyObject *cell = slot_get(op, cell_off);
                    PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                    if (line == NULL) goto op_error;
                    int64_t start = tclock, stall = 0;
                    {
                        PyObject *at_obj = slot_get(line, S.l_avail_time);
                        int64_t at;
                        if (at_obj == NULL || as_i64(at_obj, &at) < 0)
                            goto op_error;
                        if (at > start) {
                            stall = at - start;
                            start = at;
                        }
                    }
                    int64_t basec = 0;
                    if (jit) {
                        basec = jitter_draw(&lcg, jit1);
                        lcg_synced = 0;
                    }
                    basec += (tp == S.tp_write) ? write_cost : rmw_cost;
                    PyObject *lw = SLOT(line, S.l_last_writer);
                    int64_t end, lwv = -1, miss = 0;
                    if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0)
                        goto op_error;
                    if (lw != NULL && lw != Py_None && lwv != ttid) {
                        miss = remote_miss;
                        if (jit && remote_miss) {
                            miss += jitter_draw(&lcg, rm1);
                            lcg_synced = 0;
                        }
                    }
                    end = start + basec + miss;
                    tclock = end;
                    {
                        PyObject *end_obj = PyLong_FromLongLong(end);
                        if (end_obj == NULL) goto op_error;
                        slot_set(line, S.l_avail_time, end_obj);
                        slot_set(line, S.l_last_writer, tid_obj);
                        slot_set(line, S.l_write_time, end_obj);
                        PyObject *loc = slot_get(line, S.l_loc_id);
                        if (loc == NULL
                            || PyDict_SetItem(tcache, loc, end_obj) < 0) {
                            Py_DECREF(end_obj);
                            goto op_error;
                        }
                        Py_DECREF(end_obj);
                    }
                    if (audited
                        && audit_fill(audit, cell, stall, miss, basec) < 0)
                        goto op_error;
                    if (tp == S.tp_faa) {
                        PyObject *old = slot_get(cell, S.c_value);
                        PyObject *delta = old ? slot_get(op, S.op_faa_delta) : NULL;
                        if (delta == NULL) goto op_error;
                        Py_INCREF(old);
                        PyObject *nv = PyNumber_Add(old, delta);
                        if (nv == NULL) {
                            Py_DECREF(old);
                            goto op_error;
                        }
                        slot_set(cell, S.c_value, nv);
                        Py_DECREF(nv);
                        slot_set(task, S.t_pending_value, old);
                        Py_DECREF(old);
                    }
                    else if (tp == S.tp_cas) {
                        PyObject *cur = slot_get(cell, S.c_value);
                        PyObject *expected =
                            cur ? slot_get(op, S.op_cas_expected) : NULL;
                        if (expected == NULL) goto op_error;
                        int eq;
                        PyObject *cell_tp = (PyObject *)Py_TYPE(cell);
                        if (cell_tp == S.tp_refcell) {
                            eq = (cur == expected);
                        }
                        else if (cell_tp == S.tp_intcell) {
                            PyObject *r = PyObject_RichCompare(cur, expected, Py_EQ);
                            if (r == NULL) goto op_error;
                            eq = PyObject_IsTrue(r);
                            Py_DECREF(r);
                            if (eq < 0) goto op_error;
                        }
                        else {
                            PyObject *cmpargs[3] = {cell, cur, expected};
                            PyObject *r = PyObject_VectorcallMethod(
                                s_compare, cmpargs,
                                3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                            if (r == NULL) goto op_error;
                            eq = PyObject_IsTrue(r);
                            Py_DECREF(r);
                            if (eq < 0) goto op_error;
                        }
                        if (eq) {
                            PyObject *update = slot_get(op, S.op_cas_update);
                            if (update == NULL) goto op_error;
                            slot_set(cell, S.c_value, update);
                            slot_set(task, S.t_pending_value, Py_True);
                        }
                        else {
                            slot_set(task, S.t_pending_value, Py_False);
                        }
                    }
                    else if (tp == S.tp_write) {
                        PyObject *nv = slot_get(op, S.op_write_value);
                        if (nv == NULL) goto op_error;
                        slot_set(cell, S.c_value, nv);
                        /* the Write applier returns None */
                        slot_set(task, S.t_pending_value, Py_None);
                    }
                    else { /* GetAndSet */
                        PyObject *old = slot_get(cell, S.c_value);
                        PyObject *nv = old ? slot_get(op, S.op_gas_value) : NULL;
                        if (nv == NULL) goto op_error;
                        Py_INCREF(old);
                        slot_set(cell, S.c_value, nv);
                        slot_set(task, S.t_pending_value, old);
                        Py_DECREF(old);
                    }
                }
                else if (tp == S.tp_work) {
                    PyObject *cyc = slot_get(op, S.op_work_cycles);
                    int64_t cycles;
                    if (cyc == NULL || as_i64(cyc, &cycles) < 0) goto op_error;
                    tclock += cycles;
                }
                else if (tp == S.tp_sampledwork) {
                    int64_t k;
                    if (sampled_work_draw(op, &k) < 0) goto op_error;
                    tclock += k;
                }
                else if (tp == S.tp_yield) {
                    tclock += yield_cost;
                }
                else if (tp == S.tp_spin) {
                    /* DesPolicy.on_voluntary_yield is the base no-op */
                    tclock += spin_cost;
                }
                else if (tp == S.tp_park) {
                    tclock += park_cost;
                    PyObject *ip = SLOT(task, S.t_interrupt_pending);
                    PyObject *rp = SLOT(task, S.t_retry_pending);
                    PyObject *up = SLOT(task, S.t_unpark_pending);
                    int ipt = ip ? PyObject_IsTrue(ip) : 0;
                    int rpt = rp ? PyObject_IsTrue(rp) : 0;
                    int upt = up ? PyObject_IsTrue(up) : 0;
                    if (ipt < 0 || rpt < 0 || upt < 0) goto op_error;
                    if (ipt) {
                        slot_set(task, S.t_interrupt_pending, Py_False);
                        PyObject *e = PyObject_CallNoArgs(S.exc_interrupted);
                        if (e == NULL) goto op_error;
                        slot_set(task, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    else if (rpt) {
                        slot_set(task, S.t_retry_pending, Py_False);
                        PyObject *e = PyObject_CallNoArgs(S.exc_retry);
                        if (e == NULL) goto op_error;
                        slot_set(task, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    else if (upt) {
                        slot_set(task, S.t_unpark_pending, Py_False);
                    }
                    else {
                        slot_set(task, S.t_state, S.st_parked);
                        PyObject *pc = slot_get(task, S.t_park_count);
                        int64_t pcv;
                        if (pc == NULL || as_i64(pc, &pcv) < 0) goto op_error;
                        if (set_slot_i64(task, S.t_park_count, pcv + 1) < 0)
                            goto op_error;
                    }
                }
                else if (tp == S.tp_unpark) {
                    tclock += unpark_cost;
                    PyObject *target = slot_get(op, S.op_unpark_task);
                    if (target == NULL) goto op_error;
                    PyObject *oi = slot_get(op, S.op_unpark_interrupt);
                    PyObject *orr = oi ? slot_get(op, S.op_unpark_retry) : NULL;
                    if (orr == NULL) goto op_error;
                    int interrupt = PyObject_IsTrue(oi);
                    int retry = PyObject_IsTrue(orr);
                    if (interrupt < 0 || retry < 0) goto op_error;
                    if (SLOT(target, S.t_state) == S.st_parked) {
                        if (interrupt) {
                            PyObject *e = PyObject_CallNoArgs(S.exc_interrupted);
                            if (e == NULL) goto op_error;
                            slot_set(target, S.t_pending_exc, e);
                            Py_DECREF(e);
                        }
                        else if (retry) {
                            PyObject *e = PyObject_CallNoArgs(S.exc_retry);
                            if (e == NULL) goto op_error;
                            slot_set(target, S.t_pending_exc, e);
                            Py_DECREF(e);
                        }
                        slot_set(target, S.t_state, S.st_runnable);
                        /* cost.wake with the *charged* clock, like
                         * _dispatch (charge ran first there too) */
                        PyObject *tc_obj = slot_get(target, S.t_clock);
                        int64_t wbase;
                        if (tc_obj == NULL || as_i64(tc_obj, &wbase) < 0)
                            goto op_error;
                        if (tclock > wbase) {
                            wbase = tclock;
                        }
                        if (set_slot_i64(target, S.t_clock,
                                         wbase + wake_latency) < 0)
                            goto op_error;
                        if (call_method1(sched, s_make_runnable, target) < 0)
                            goto op_error;
                    }
                    else if (interrupt) {
                        slot_set(target, S.t_interrupt_pending, Py_True);
                    }
                    else if (retry) {
                        slot_set(target, S.t_retry_pending, Py_True);
                    }
                    else {
                        slot_set(target, S.t_unpark_pending, Py_True);
                    }
                }
                else if (tp == S.tp_current) {
                    slot_set(task, S.t_pending_value, task);
                }
                else if (tp == S.tp_alloc) {
                    tclock += alloc_cost;
                    PyObject *stats = PyObject_GetAttr(sched, s_alloc_stats);
                    if (stats == NULL) goto op_error;
                    if (stats != Py_None) {
                        PyObject *tag = slot_get(op, S.op_alloc_tag);
                        PyObject *units = tag ? slot_get(op, S.op_alloc_units) : NULL;
                        if (units == NULL) {
                            Py_DECREF(stats);
                            goto op_error;
                        }
                        PyObject *rargs[3] = {stats, tag, units};
                        PyObject *r = PyObject_VectorcallMethod(
                            s_record, rargs,
                            3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                        if (r == NULL) {
                            Py_DECREF(stats);
                            goto op_error;
                        }
                        Py_DECREF(r);
                    }
                    Py_DECREF(stats);
                }
                else { /* Label: no effect */
                }
                /* write the charged clock through before any hook runs */
                if (set_slot_i64(task, S.t_clock, tclock) < 0) goto op_error;
            }

            if (procs_enabled && SLOT(task, S.t_state) != S.st_runnable) {
                if (call_method1(sched, s_unbind, task) < 0) goto op_error;
            }

            /* -- hook callouts ------------------------------------------ */
            {
                PyObject *hooks = PyObject_GetAttr(sched, s_hooks);
                if (hooks == NULL) goto op_error;
                if (!PyList_Check(hooks)) {
                    Py_DECREF(hooks);
                    PyErr_SetString(PyExc_TypeError,
                                    "engine: scheduler._hooks is not a list");
                    goto op_error;
                }
                if (PyList_GET_SIZE(hooks) > 0) {
                    if (!lcg_synced) {
                        PyObject *l = PyLong_FromUnsignedLongLong(lcg);
                        if (l == NULL || PyObject_SetAttr(cost, s_lcg, l) < 0) {
                            Py_XDECREF(l);
                            Py_DECREF(hooks);
                            goto op_error;
                        }
                        Py_DECREF(l);
                        lcg_synced = 1;
                    }
                    PyObject *hargs[3] = {sched, task, op};
                    int hook_error = 0;
                    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(hooks); i++) {
                        PyObject *h = PyList_GET_ITEM(hooks, i);
                        Py_INCREF(h);
                        PyObject *hr = PyObject_Vectorcall(h, hargs, 3, NULL);
                        Py_DECREF(h);
                        if (hr == NULL) {
                            hook_error = 1;
                            break;
                        }
                        Py_DECREF(hr);
                    }
                    Py_DECREF(hooks);
                    if (hook_error) goto op_error;
                    /* hooks may legitimately mutate what they observe */
                    {
                        PyObject *l = PyObject_GetAttr(cost, s_lcg);
                        if (l == NULL) goto op_error;
                        lcg = PyLong_AsUnsignedLongLong(l);
                        Py_DECREF(l);
                        if (lcg == (uint64_t)-1 && PyErr_Occurred())
                            goto op_error;
                        lcg_synced = 1;
                    }
                    PyObject *tco = slot_get(task, S.t_clock);
                    if (tco == NULL || as_i64(tco, &tclock) < 0) goto op_error;
                }
                else {
                    Py_DECREF(hooks);
                }
            }
            Py_DECREF(op);
            op = NULL;

            /* -- _run_general post-step checks -------------------------- */
            if (steps > limit) {
                raise_step_limit(limit);
                stint_error = 1;
                break;
            }
            if (SLOT(task, S.t_state) != S.st_runnable) {
                break;
            }
            /* -- policy.keep_running, transcribed ----------------------- */
            int kr = 1;
            for (;;) {
                if (PyList_GET_SIZE(heap) == 0) {
                    kr = 1;
                    break;
                }
                PyObject *top = PyList_GET_ITEM(heap, 0);
                PyObject *other = PyTuple_GET_ITEM(top, 2);
                int64_t eclock, oclock;
                if (as_i64(PyTuple_GET_ITEM(top, 0), &eclock) < 0) {
                    stint_error = 1;
                    break;
                }
                PyObject *oc = slot_get(other, S.t_clock);
                if (oc == NULL || as_i64(oc, &oclock) < 0) {
                    stint_error = 1;
                    break;
                }
                if (SLOT(other, S.t_state) != S.st_runnable
                    || oclock != eclock || other == task) {
                    PyObject *junk = heap_pop(heap);
                    if (junk == NULL) {
                        stint_error = 1;
                        break;
                    }
                    Py_DECREF(junk);
                    continue;
                }
                kr = (tclock <= eclock);
                break;
            }
            if (stint_error) break;
            if (!kr) {
                /* policy.requeue(task): narrow (clock, tid, task) entry */
                PyObject *c_obj = slot_get(task, S.t_clock);
                if (c_obj == NULL) {
                    stint_error = 1;
                    break;
                }
                PyObject *entry = PyTuple_Pack(3, c_obj, tid_obj, task);
                if (entry == NULL) {
                    stint_error = 1;
                    break;
                }
                int rc = heap_push(heap, entry);
                Py_DECREF(entry);
                if (rc < 0) {
                    stint_error = 1;
                }
                break;
            }
            continue;

        op_error:
            Py_XDECREF(op);
            stint_error = 1;
            break;
        }

        Py_DECREF(task);
        if (stint_error) goto cleanup;
    }

    failed = 0;
    result = Py_NewRef(Py_None);

cleanup:
    /* ``finally:`` — restore global engine state exactly. */
    {
        PyObject *etype = NULL, *evalue = NULL, *etb = NULL;
        if (failed) {
            PyErr_Fetch(&etype, &evalue, &etb);
        }
        if (engaged) {
            PyObject *steps_obj = PyLong_FromLongLong(steps);
            if (steps_obj != NULL) {
                PyObject_SetAttr(sched, s_total_steps, steps_obj);
                Py_DECREF(steps_obj);
            }
            PyObject *lcg_obj = PyLong_FromUnsignedLongLong(lcg);
            if (lcg_obj != NULL) {
                PyObject_SetAttr(cost, s_lcg, lcg_obj);
                Py_DECREF(lcg_obj);
            }
            if (PyErr_Occurred()) {
                if (etype != NULL) {
                    PyErr_Clear();
                }
            }
        }
        if (etype != NULL || evalue != NULL || etb != NULL) {
            PyErr_Restore(etype, evalue, etb);
        }
    }
    Py_XDECREF(cost);
    Py_XDECREF(policy);
    Py_XDECREF(heap);
    Py_XDECREF(params);
    Py_XDECREF(unbound);
    Py_XDECREF(procs_obj);
    Py_XDECREF(tasks_list);
    Py_XDECREF(charge_fn);
    Py_XDECREF(dispatch_fn);
    return result;
}

/* ------------------------------------------------------------------ */
/* algorithm kernels (PR 10)                                           */
/* ------------------------------------------------------------------ */
/*
 * Each kernel is an iterator object transcribing one fused PARK-mode
 * fast path (RendezvousChannel / BufferedChannel send/receive, FAAQueue
 * enqueue/dequeue) into a C state machine.  The dispatch wrappers return
 * it in place of the fused generator; the caller's ``yield from`` (or
 * the stint loop directly) drives it through the normal generator
 * protocol: tp_iternext / send() step the machine, throw() / close()
 * forward to the active Python delegate or unwind.  Every step returns
 * the next op object, so the existing charge/dispatch code executes and
 * prices the IDENTICAL op stream — one yielded op per outer resume.
 *
 * Off-fast-path work (segment walks, parking, close/cancel marking,
 * expand_buffer) runs as Python sub-generators ("delegates"), exactly
 * the frames the fused generators delegate to with ``yield from``.
 */

#define KERN_POOL_CAP 64

enum {
    K_RZ_SEND, K_RZ_RECV, K_BUF_SEND, K_BUF_RECV, K_FAAQ_ENQ, K_FAAQ_DEQ
};

/* updCell outcome (mirrors base.RESTART / SUCCESS / CLOSED) */
enum { KO_RESTART = 0, KO_SUCCESS = 1, KO_CLOSED = 2 };

typedef struct {
    PyObject_HEAD
    int kind;
    int pc;            /* resume point: the pc stored before each yield */
    int done;
    int outcome;
    int ok;            /* unpark-dance result, crosses yields */
    int cache_kind;    /* kind the pooled channel registers were cut for */
    uint64_t cfg_gen;  /* the configure() generation the ops belong to */
    int64_t kseg;      /* segment size K */
    int64_t idx;       /* reserved counter value s / r / i */
    int64_t raw;       /* raw reserved counter value (close flag kept) */
    int64_t aux;       /* buffered send: r across the B read */
    int64_t sid;       /* target segment id */
    int64_t ci;        /* in-segment cell index */
    /* object registers (owned) */
    PyObject *chan;    /* channel / queue */
    PyObject *elem;    /* outgoing element, or the claimed value */
    PyObject *list;    /* chan._list */
    PyObject *stats;
    PyObject *anchor;  /* _segm_s / _segm_r / _tail / _head */
    PyObject *ctr;     /* reservation counter: S / R / enqIdx / deqIdx */
    PyObject *ctr2;    /* the opposite counter */
    PyObject *bcell;   /* B (buffered send) */
    PyObject *segm;
    PyObject *state_cell;
    PyObject *elem_cell;
    PyObject *state;
    PyObject *wcell;
    PyObject *waiter;
    PyObject *kit;     /* Python OpKit handed to expand_buffer delegates */
    PyObject *deleg;   /* active Python delegate generator */
    PyObject *dres;    /* last delegate return value */
    /* owned reusable op instances (the OpKit flyweight discipline) */
    PyObject *op_read, *op_write, *op_cas, *op_faa, *op_gas;
    PyObject *op_unpark, *op_spin;
} KernelObject;

static PyTypeObject KernelType;

static KernelObject *kern_pool[KERN_POOL_CAP];
static int kern_pool_len = 0;

#define KCLOSE_BIT (((int64_t)1) << 60)
#define KCOUNTER_OF(raw) ((raw) & (KCLOSE_BIT - 1))
#define KIS_FLAGGED(raw) (((raw) & KCLOSE_BIT) != 0)

#define KSET(reg, v) Py_XSETREF(k->reg, Py_NewRef(v))
#define KY(pc_, expr)                               \
    do {                                            \
        PyObject *_o = (expr);                      \
        if (_o == NULL) goto fail;                  \
        k->pc = (pc_);                              \
        return _o;                                  \
    } while (0)
#define KDELEG(pc_)                                 \
    do {                                            \
        int _rc = deleg_resume(k, sv, &op);         \
        if (_rc < 0) goto fail;                     \
        if (_rc == 1) { k->pc = (pc_); return op; } \
    } while (0)

/* Allocate a bare op instance, skipping __init__ (slots start NULL). */
static PyObject *
blank_op(PyObject *tp_obj)
{
    if (!PyType_Check(tp_obj)) {
        PyErr_SetString(PyExc_TypeError, "engine kernel: op class expected");
        return NULL;
    }
    PyTypeObject *tp = (PyTypeObject *)tp_obj;
    return tp->tp_alloc(tp, 0);
}

static void
op_slot_clear(PyObject *op, Py_ssize_t off)
{
    if (op == NULL) {
        return;
    }
    PyObject *old = SLOT(op, off);
    SLOT(op, off) = NULL;
    Py_XDECREF(old);
}

/* Drop the per-step payloads the ops hold.  The preset slots — faa
 * cell/delta, unpark interrupt/retry, spin reason — ride along with the
 * pooled kernel's cached channel registers (kern_dealloc keeps chan/
 * ctr/... alive), so a same-channel reuse skips kern_preset entirely;
 * a cache miss re-stamps them. */
static void
kern_ops_release_payload(KernelObject *k)
{
    op_slot_clear(k->op_read, S.op_read_cell);
    op_slot_clear(k->op_write, S.op_write_cell);
    op_slot_clear(k->op_write, S.op_write_value);
    op_slot_clear(k->op_cas, S.op_cas_cell);
    op_slot_clear(k->op_cas, S.op_cas_expected);
    op_slot_clear(k->op_cas, S.op_cas_update);
    op_slot_clear(k->op_gas, S.op_gas_cell);
    op_slot_clear(k->op_gas, S.op_gas_value);
    op_slot_clear(k->op_unpark, S.op_unpark_task);
}

/* Terminal transition: release the kit and the transient registers.
 * Idempotent; preserves any exception currently being raised. */
static void
kern_finalize(KernelObject *k)
{
    k->done = 1;
    if (k->kit != NULL) {
        PyObject *t, *v, *tb;
        PyErr_Fetch(&t, &v, &tb);
        if (S.fn_release_kit != NULL) {
            PyObject *r = PyObject_CallOneArg(S.fn_release_kit, k->kit);
            if (r == NULL) {
                PyErr_Clear();
            }
            else {
                Py_DECREF(r);
            }
        }
        PyErr_Restore(t, v, tb);
        Py_CLEAR(k->kit);
    }
    Py_CLEAR(k->deleg);
    Py_CLEAR(k->dres);
    Py_CLEAR(k->segm);
    Py_CLEAR(k->state_cell);
    Py_CLEAR(k->elem_cell);
    Py_CLEAR(k->state);
    Py_CLEAR(k->wcell);
    Py_CLEAR(k->waiter);
    Py_CLEAR(k->elem);
}

/* Finish the iterator: StopIteration carrying ``value`` (NULL = None).
 * The instance is built explicitly so tuple values survive normalize. */
static PyObject *
kern_ret(KernelObject *k, PyObject *value)
{
    PyObject *v = Py_NewRef(value != NULL ? value : Py_None);
    kern_finalize(k);
    if (v == Py_None) {
        Py_DECREF(v);
        PyErr_SetNone(PyExc_StopIteration);
        return NULL;
    }
    PyObject *si = PyObject_CallOneArg(PyExc_StopIteration, v);
    Py_DECREF(v);
    if (si == NULL) {
        return NULL;
    }
    PyErr_SetObject(PyExc_StopIteration, si);
    Py_DECREF(si);
    return NULL;
}

static PyObject *
kern_raise_closed(KernelObject *k, PyObject *exc_class)
{
    kern_finalize(k);
    PyErr_SetNone(exc_class);
    return NULL;
}

/* The fused paths' AssertionError, message-identical. */
static PyObject *
kern_impossible(KernelObject *k, const char *side)
{
    PyErr_Format(PyExc_AssertionError,
                 "%s found impossible cell state %R at %lld:%lld",
                 side, k->state, (long long)k->sid, (long long)k->ci);
    kern_finalize(k);
    return NULL;
}

static int
kstat_inc(KernelObject *k, PyObject *name)
{
    int64_t v;
    if (attr_i64(k->stats, name, &v) < 0) {
        return -1;
    }
    return set_attr_i64(k->stats, name, v + 1);
}

static int
k_slot_i64(PyObject *obj, Py_ssize_t off, int64_t *out)
{
    PyObject *v = slot_get(obj, off);
    if (v == NULL) {
        return -1;
    }
    return as_i64(v, out);
}

/* segm.states[i] / segm.elems[i] / qseg.cells[i] — borrowed. */
static PyObject *
kseg_cell(PyObject *segm, Py_ssize_t list_off, int64_t i)
{
    PyObject *lst = slot_get(segm, list_off);
    if (lst == NULL) {
        return NULL;
    }
    if (!PyList_Check(lst) || i < 0 || i >= PyList_GET_SIZE(lst)) {
        PyErr_SetString(PyExc_IndexError,
                        "engine kernel: segment cell index out of range");
        return NULL;
    }
    return PyList_GET_ITEM(lst, i);
}

/* -- op builders: mutate the owned instance, return a new ref ------- */

static PyObject *
k_read(KernelObject *k, PyObject *cell)
{
    slot_set(k->op_read, S.op_read_cell, cell);
    return Py_NewRef(k->op_read);
}

static PyObject *
k_write(KernelObject *k, PyObject *cell, PyObject *value)
{
    slot_set(k->op_write, S.op_write_cell, cell);
    slot_set(k->op_write, S.op_write_value, value);
    return Py_NewRef(k->op_write);
}

static PyObject *
k_cas(KernelObject *k, PyObject *cell, PyObject *expected, PyObject *update)
{
    slot_set(k->op_cas, S.op_cas_cell, cell);
    slot_set(k->op_cas, S.op_cas_expected, expected);
    slot_set(k->op_cas, S.op_cas_update, update);
    return Py_NewRef(k->op_cas);
}

/* The counter-fix CAS: both operands are fresh ints. */
static PyObject *
k_cas_ii(KernelObject *k, PyObject *cell, int64_t expected, int64_t update)
{
    PyObject *e = PyLong_FromLongLong(expected);
    if (e == NULL) {
        return NULL;
    }
    PyObject *u = PyLong_FromLongLong(update);
    if (u == NULL) {
        Py_DECREF(e);
        return NULL;
    }
    PyObject *op = k_cas(k, cell, e, u);
    Py_DECREF(e);
    Py_DECREF(u);
    return op;
}

static PyObject *
k_gas(KernelObject *k, PyObject *cell, PyObject *value)
{
    slot_set(k->op_gas, S.op_gas_cell, cell);
    slot_set(k->op_gas, S.op_gas_value, value);
    return Py_NewRef(k->op_gas);
}

static PyObject *
k_unpark(KernelObject *k, PyObject *task)
{
    slot_set(k->op_unpark, S.op_unpark_task, task);
    return Py_NewRef(k->op_unpark);
}

/* -- delegates: the off-fast-path Python sub-generators ------------- */

/* Capture a StopIteration's payload.  1 = captured (*out new ref),
 * 0 = a different exception is (still) set. */
static int
k_fetch_stop(PyObject **out)
{
    if (!PyErr_ExceptionMatches(PyExc_StopIteration)) {
        return 0;
    }
    PyObject *t, *v, *tb;
    PyErr_Fetch(&t, &v, &tb);
    PyErr_NormalizeException(&t, &v, &tb);
    PyObject *val;
    if (v != NULL) {
        val = PyObject_GetAttr(v, s_value);
    }
    else {
        val = Py_NewRef(Py_None);
    }
    Py_XDECREF(t);
    Py_XDECREF(v);
    Py_XDECREF(tb);
    if (val == NULL) {
        return 0;
    }
    *out = val;
    return 1;
}

static int
deleg_begin(KernelObject *k, PyObject *gen)
{
    if (gen == NULL) {
        return -1;
    }
    Py_XSETREF(k->deleg, gen);
    Py_CLEAR(k->dres);
    return 0;
}

/* Step the active delegate.  1 = it yielded an op (*op_out new ref),
 * 0 = it returned (k->dres holds the value), -1 = it raised.  A NULL
 * delegate means throw() already completed it and parked the result. */
static int
deleg_resume(KernelObject *k, PyObject *sv, PyObject **op_out)
{
    if (k->deleg == NULL) {
        return 0;
    }
    /* PyIter_Send hits the generator's am_send slot directly: no
     * ``send`` attribute lookup, and a completing delegate hands its
     * return value back without raising StopIteration at all. */
    PyObject *res = NULL;
    PySendResult sr = PyIter_Send(k->deleg, sv != NULL ? sv : Py_None, &res);
    if (sr == PYGEN_NEXT) {
        *op_out = res;
        return 1;
    }
    if (sr == PYGEN_RETURN) {
        Py_CLEAR(k->deleg);
        Py_XSETREF(k->dres, res);
        return 0;
    }
    PyObject *val;
    if (k_fetch_stop(&val)) {
        /* Non-generator iterators surface completion as StopIteration. */
        Py_CLEAR(k->deleg);
        Py_XSETREF(k->dres, val);
        return 0;
    }
    return -1;
}

static int
k_dres_true(KernelObject *k)
{
    return PyObject_IsTrue(k->dres != NULL ? k->dres : Py_None);
}

/* find_and_move_forward(anchor, segm, sid[, checked_start][, cur]) */
static int
k_begin_famf(KernelObject *k, int checked, PyObject *cur)
{
    PyObject *sid_o = PyLong_FromLongLong(k->sid);
    if (sid_o == NULL) {
        return -1;
    }
    PyObject *g;
    if (cur != NULL) {
        g = PyObject_CallMethodObjArgs(k->list, s_famf, k->anchor, k->segm,
                                       sid_o, Py_False, cur, NULL);
    }
    else if (checked) {
        g = PyObject_CallMethodObjArgs(k->list, s_famf, k->anchor, k->segm,
                                       sid_o, Py_True, NULL);
    }
    else {
        g = PyObject_CallMethodObjArgs(k->list, s_famf, k->anchor, k->segm,
                                       sid_o, NULL);
    }
    Py_DECREF(sid_o);
    return deleg_begin(k, g);
}

/* _mark_closed_send_cell / _mark_cancelled_rcv_cell (segm, sid, i) */
static int
k_begin_mark(KernelObject *k, PyObject *meth_name)
{
    PyObject *sid_o = PyLong_FromLongLong(k->sid);
    if (sid_o == NULL) {
        return -1;
    }
    PyObject *ci_o = PyLong_FromLongLong(k->ci);
    PyObject *g = NULL;
    if (ci_o != NULL) {
        g = PyObject_CallMethodObjArgs(k->chan, meth_name, k->segm, sid_o,
                                       ci_o, NULL);
    }
    Py_DECREF(sid_o);
    Py_XDECREF(ci_o);
    return deleg_begin(k, g);
}

/* _park_sender / _park_receiver (w, segm, i) */
static int
k_begin_park(KernelObject *k, PyObject *meth_name)
{
    PyObject *ci_o = PyLong_FromLongLong(k->ci);
    PyObject *g = NULL;
    if (ci_o != NULL) {
        g = PyObject_CallMethodObjArgs(k->chan, meth_name, k->waiter, k->segm,
                                       ci_o, NULL);
    }
    Py_XDECREF(ci_o);
    return deleg_begin(k, g);
}

/* _close_recheck_receiver(w, r) */
static int
k_begin_recheck(KernelObject *k)
{
    PyObject *r_o = PyLong_FromLongLong(k->idx);
    PyObject *g = NULL;
    if (r_o != NULL) {
        g = PyObject_CallMethodObjArgs(k->chan, s_close_recheck, k->waiter,
                                       r_o, NULL);
    }
    Py_XDECREF(r_o);
    return deleg_begin(k, g);
}

/* segm.on_interrupted_cell() / state.try_unpark() */
static int
k_begin_meth0(KernelObject *k, PyObject *obj, PyObject *name)
{
    return deleg_begin(k, PyObject_CallMethodNoArgs(obj, name));
}

/* expand_buffer(kit) — always a Python delegate (DESIGN.md §14) */
static int
k_begin_expand(KernelObject *k)
{
    return deleg_begin(k, PyObject_CallMethodOneArg(k->chan, s_expand_buffer,
                                                    k->kit));
}

/* FAAQueue._find_segment(anchor, seg_id, cur) */
static int
k_begin_findseg(KernelObject *k)
{
    PyObject *sid_o = PyLong_FromLongLong(k->sid);
    PyObject *g = NULL;
    if (sid_o != NULL) {
        g = PyObject_CallMethodObjArgs(k->chan, s_find_segment, k->anchor,
                                       sid_o, k->segm, NULL);
    }
    Py_XDECREF(sid_o);
    return deleg_begin(k, g);
}

/* SenderWaiter.of(task) / ReceiverWaiter.of(task) — runs in Python so
 * waiter-id allocation and task.current_waiter publication match. */
static int
k_make_waiter(KernelObject *k, PyObject *cls, PyObject *task)
{
    PyObject *w = PyObject_CallMethodOneArg(cls, s_of, task);
    if (w == NULL) {
        return -1;
    }
    Py_XSETREF(k->waiter, w);
    return 0;
}

/* -- RendezvousChannel._send_fused, transcribed --------------------- */

static PyObject *
rz_send_step(KernelObject *k, PyObject *sv)
{
    PyObject *op = NULL;
    int rc;
    switch (k->pc) {
    case 0:
restart:
        KY(1, k_read(k, k->anchor));
    case 1:
        KSET(segm, sv);
        KY(2, Py_NewRef(k->op_faa));
    case 2: {
        if (as_i64(sv, &k->raw) < 0) {
            goto fail;
        }
        if (kstat_inc(k, s_cells_processed) < 0) {
            goto fail;
        }
        k->idx = KCOUNTER_OF(k->raw);
        k->sid = k->idx / k->kseg;
        k->ci = k->idx % k->kseg;
        if (KIS_FLAGGED(k->raw)) {
            if (k_begin_mark(k, s_mark_closed) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg3;
        }
        int64_t seg_id;
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (seg_id >= k->sid) {
            PyObject *cnt_cell = slot_get(k->segm, S.sg_cnt);
            if (cnt_cell == NULL) {
                goto fail;
            }
            KY(4, k_read(k, cnt_cell));
        }
        if (k_begin_famf(k, 0, NULL) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg8;
    }
    case 3:
deleg3:
        KDELEG(3);
        return kern_raise_closed(k, S.exc_closed_send);
    case 4: {
        int64_t cnt;
        if (as_i64(sv, &cnt) < 0) {
            goto fail;
        }
        if (cnt % (k->kseg + 1) == k->kseg && cnt / (k->kseg + 1) == 0) {
            if (k_begin_famf(k, 1, NULL) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg5;
        }
        KY(6, k_read(k, k->anchor));
    }
    case 5:
deleg5:
        KDELEG(5);
        KSET(segm, k->dres);
        goto moved;
    case 6: {
        int64_t cur_id, seg_id;
        if (k_slot_i64(sv, S.sg_id, &cur_id) < 0) {
            goto fail;
        }
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (cur_id < seg_id) {
            if (k_begin_famf(k, 0, sv) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg7;
        }
        goto moved;
    }
    case 7:
deleg7:
        KDELEG(7);
        KSET(segm, k->dres);
        goto moved;
    case 8:
deleg8:
        KDELEG(8);
        KSET(segm, k->dres);
moved: {
        int64_t seg_id;
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (seg_id != k->sid) {
            KY(9, k_cas_ii(k, k->ctr, k->raw + 1,
                           (k->raw - k->idx) + seg_id * k->kseg));
        }
        PyObject *sc = kseg_cell(k->segm, S.sg_states, k->ci);
        if (sc == NULL) {
            goto fail;
        }
        KSET(state_cell, sc);
        PyObject *ec = kseg_cell(k->segm, S.sg_elems, k->ci);
        if (ec == NULL) {
            goto fail;
        }
        KSET(elem_cell, ec);
        KY(10, k_write(k, k->elem_cell, k->elem));
    }
    case 9:
        if (kstat_inc(k, s_send_restarts) < 0) {
            goto fail;
        }
        goto restart;
    case 10:
updcell:
        KY(11, k_read(k, k->state_cell));
    case 11:
        KSET(state, sv);
        KY(12, k_read(k, k->ctr2));
    case 12: {
        int64_t r_raw;
        if (as_i64(sv, &r_raw) < 0) {
            goto fail;
        }
        int64_t r = KCOUNTER_OF(r_raw);
        if (k->state == Py_None && k->idx >= r) {
            /* EMPTY and no receiver is coming => suspend. */
            KY(13, Py_NewRef(S.cur_task_op));
        }
        rc = PyObject_IsInstance(k->state, S.cls_receiver);
        if (rc < 0) {
            goto fail;
        }
        if (rc) {
            /* Waiting receiver => try to resume it. */
            PyObject *wc = slot_get(k->state, S.w_state);
            if (wc == NULL) {
                goto fail;
            }
            KSET(wcell, wc);
            KY(19, k_read(k, k->wcell));
        }
        if (k->state == Py_None) {
            /* EMPTY but a receiver is incoming => eliminate. */
            KY(26, k_cas(k, k->state_cell, Py_None, S.cs_buffered));
        }
        if (k->state == S.cs_int_rcv || k->state == S.cs_broken
            || k->state == S.cs_cancelled) {
            KY(27, k_write(k, k->elem_cell, Py_None));
        }
        return kern_impossible(k, "send");
    }
    case 13:
        if (k_make_waiter(k, S.cls_sender, sv) < 0) {
            goto fail;
        }
        KY(14, k_cas(k, k->state_cell, Py_None, k->waiter));
    case 14:
        if (sv == Py_True) {
            if (k_begin_park(k, s_park_sender) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg15;
        }
        goto updcell;
    case 15:
deleg15:
        KDELEG(15);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->outcome = rc ? KO_SUCCESS : KO_RESTART;
        goto post;
    case 19:
        if (sv == S.ws_init) {
            KY(20, k_cas(k, k->wcell, S.ws_init, S.ws_permit));
        }
        if (sv == S.ws_parked) {
            KY(22, k_cas(k, k->wcell, S.ws_parked, S.ws_resumed));
        }
        k->ok = 0;
        goto unparked;
    case 20:
        if (sv == Py_True) {
            k->ok = 1;
            goto unparked;
        }
        if (k_begin_meth0(k, k->state, s_try_unpark) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg21;
    case 21:
deleg21:
        KDELEG(21);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->ok = rc;
        goto unparked;
    case 22:
        if (sv == Py_True) {
            PyObject *wt = slot_get(k->state, S.w_task);
            if (wt == NULL) {
                goto fail;
            }
            k->ok = 1;
            KY(23, k_unpark(k, wt));
        }
        if (k_begin_meth0(k, k->state, s_try_unpark) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg24;
    case 23:
        goto unparked;
    case 24:
deleg24:
        KDELEG(24);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->ok = rc;
unparked:
        if (k->ok) {
            KY(25, k_write(k, k->state_cell, S.cs_done));
        }
        /* Interrupted receiver: clean our element, retry. */
        KY(27, k_write(k, k->elem_cell, Py_None));
    case 25:
        k->outcome = KO_SUCCESS;
        goto post;
    case 26:
        if (sv == Py_True) {
            if (kstat_inc(k, s_eliminations) < 0) {
                goto fail;
            }
            k->outcome = KO_SUCCESS;
            goto post;
        }
        goto updcell;
    case 27:
        k->outcome = KO_RESTART;
post:
        if (k->outcome == KO_SUCCESS) {
            PyObject *prev_cell = slot_get(k->segm, S.sg_prev);
            if (prev_cell == NULL) {
                goto fail;
            }
            KY(29, k_write(k, prev_cell, Py_None));
        }
        if (kstat_inc(k, s_send_restarts) < 0) {
            goto fail;
        }
        goto restart;
    case 29:
        if (kstat_inc(k, s_sends) < 0) {
            goto fail;
        }
        return kern_ret(k, NULL);
    default:
        break;
    }
    PyErr_SetString(PyExc_SystemError, "engine kernel: corrupt pc (rz_send)");
fail:
    kern_finalize(k);
    return NULL;
}

/* -- RendezvousChannel._receive_fused, transcribed ------------------ */

static PyObject *
rz_recv_step(KernelObject *k, PyObject *sv)
{
    PyObject *op = NULL;
    int rc;
    switch (k->pc) {
    case 0:
restart:
        KY(1, k_read(k, k->anchor));
    case 1:
        KSET(segm, sv);
        KY(2, Py_NewRef(k->op_faa));
    case 2: {
        if (as_i64(sv, &k->raw) < 0) {
            goto fail;
        }
        if (kstat_inc(k, s_cells_processed) < 0) {
            goto fail;
        }
        k->idx = KCOUNTER_OF(k->raw);
        k->sid = k->idx / k->kseg;
        k->ci = k->idx % k->kseg;
        if (KIS_FLAGGED(k->raw)) { /* the channel was cancelled */
            if (k_begin_mark(k, s_mark_cancelled) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg3;
        }
        int64_t seg_id;
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (seg_id >= k->sid) {
            PyObject *cnt_cell = slot_get(k->segm, S.sg_cnt);
            if (cnt_cell == NULL) {
                goto fail;
            }
            KY(4, k_read(k, cnt_cell));
        }
        if (k_begin_famf(k, 0, NULL) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg8;
    }
    case 3:
deleg3:
        KDELEG(3);
        return kern_raise_closed(k, S.exc_closed_recv);
    case 4: {
        int64_t cnt;
        if (as_i64(sv, &cnt) < 0) {
            goto fail;
        }
        if (cnt % (k->kseg + 1) == k->kseg && cnt / (k->kseg + 1) == 0) {
            if (k_begin_famf(k, 1, NULL) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg5;
        }
        KY(6, k_read(k, k->anchor));
    }
    case 5:
deleg5:
        KDELEG(5);
        KSET(segm, k->dres);
        goto moved;
    case 6: {
        int64_t cur_id, seg_id;
        if (k_slot_i64(sv, S.sg_id, &cur_id) < 0) {
            goto fail;
        }
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (cur_id < seg_id) {
            if (k_begin_famf(k, 0, sv) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg7;
        }
        goto moved;
    }
    case 7:
deleg7:
        KDELEG(7);
        KSET(segm, k->dres);
        goto moved;
    case 8:
deleg8:
        KDELEG(8);
        KSET(segm, k->dres);
moved: {
        int64_t seg_id;
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (seg_id != k->sid) {
            KY(9, k_cas_ii(k, k->ctr, k->raw + 1,
                           (k->raw - k->idx) + seg_id * k->kseg));
        }
        PyObject *sc = kseg_cell(k->segm, S.sg_states, k->ci);
        if (sc == NULL) {
            goto fail;
        }
        KSET(state_cell, sc);
        goto updcell;
    }
    case 9:
        if (kstat_inc(k, s_rcv_restarts) < 0) {
            goto fail;
        }
        goto restart;
updcell:
        KY(11, k_read(k, k->state_cell));
    case 11:
        KSET(state, sv);
        KY(12, k_read(k, k->ctr2));
    case 12: {
        int64_t s_raw;
        if (as_i64(sv, &s_raw) < 0) {
            goto fail;
        }
        int64_t s = KCOUNTER_OF(s_raw);
        if (k->state == Py_None && k->idx >= s) {
            /* EMPTY and no sender is coming => suspend (or give up). */
            if (KIS_FLAGGED(s_raw)) {
                /* Closed and drained: S can never cover r. */
                KY(13, k_cas(k, k->state_cell, Py_None, S.cs_int_rcv));
            }
            KY(15, Py_NewRef(S.cur_task_op));
        }
        rc = PyObject_IsInstance(k->state, S.cls_sender);
        if (rc < 0) {
            goto fail;
        }
        if (rc) {
            /* Waiting sender => try to resume it. */
            PyObject *wc = slot_get(k->state, S.w_state);
            if (wc == NULL) {
                goto fail;
            }
            KSET(wcell, wc);
            KY(19, k_read(k, k->wcell));
        }
        if (k->state == Py_None) {
            /* A sender is incoming => poison the cell. */
            KY(26, k_cas(k, k->state_cell, Py_None, S.cs_broken));
        }
        if (k->state == S.cs_buffered) {
            k->outcome = KO_SUCCESS; /* the sender eliminated */
            goto post;
        }
        if (k->state == S.cs_int_send || k->state == S.cs_cancelled) {
            k->outcome = KO_RESTART;
            goto post;
        }
        return kern_impossible(k, "receive");
    }
    case 13:
        if (sv == Py_True) {
            if (k_begin_meth0(k, k->segm, s_on_interrupted) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg14;
        }
        goto updcell;
    case 14:
deleg14:
        KDELEG(14);
        k->outcome = KO_CLOSED;
        goto post;
    case 15:
        if (k_make_waiter(k, S.cls_receiver, sv) < 0) {
            goto fail;
        }
        KY(16, k_cas(k, k->state_cell, Py_None, k->waiter));
    case 16:
        if (sv == Py_True) {
            if (k_begin_recheck(k) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg17;
        }
        goto updcell;
    case 17:
deleg17:
        KDELEG(17);
        if (k_begin_park(k, s_park_receiver) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg18;
    case 18:
deleg18:
        KDELEG(18);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->outcome = rc ? KO_SUCCESS : KO_RESTART;
        goto post;
    case 19:
        if (sv == S.ws_init) {
            KY(20, k_cas(k, k->wcell, S.ws_init, S.ws_permit));
        }
        if (sv == S.ws_parked) {
            KY(22, k_cas(k, k->wcell, S.ws_parked, S.ws_resumed));
        }
        k->ok = 0;
        goto unparked;
    case 20:
        if (sv == Py_True) {
            k->ok = 1;
            goto unparked;
        }
        if (k_begin_meth0(k, k->state, s_try_unpark) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg21;
    case 21:
deleg21:
        KDELEG(21);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->ok = rc;
        goto unparked;
    case 22:
        if (sv == Py_True) {
            PyObject *wt = slot_get(k->state, S.w_task);
            if (wt == NULL) {
                goto fail;
            }
            k->ok = 1;
            KY(23, k_unpark(k, wt));
        }
        if (k_begin_meth0(k, k->state, s_try_unpark) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg24;
    case 23:
        goto unparked;
    case 24:
deleg24:
        KDELEG(24);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->ok = rc;
unparked:
        if (k->ok) {
            KY(25, k_write(k, k->state_cell, S.cs_done));
        }
        k->outcome = KO_RESTART; /* its handler cleans the cell */
        goto post;
    case 25:
        k->outcome = KO_SUCCESS;
        goto post;
    case 26:
        if (sv == Py_True) {
            if (kstat_inc(k, s_poisoned) < 0) {
                goto fail;
            }
            k->outcome = KO_RESTART;
            goto post;
        }
        goto updcell;
post:
        if (k->outcome == KO_SUCCESS) {
            /* Claim the element atomically vs. a racing cancel(). */
            PyObject *ec = kseg_cell(k->segm, S.sg_elems, k->ci);
            if (ec == NULL) {
                goto fail;
            }
            KY(27, k_gas(k, ec, Py_None));
        }
        if (k->outcome == KO_CLOSED) {
            return kern_raise_closed(k, S.exc_closed_recv);
        }
        if (kstat_inc(k, s_rcv_restarts) < 0) {
            goto fail;
        }
        goto restart;
    case 27: {
        KSET(elem, sv);
        PyObject *prev_cell = slot_get(k->segm, S.sg_prev);
        if (prev_cell == NULL) {
            goto fail;
        }
        KY(28, k_write(k, prev_cell, Py_None));
    }
    case 28:
        if (k->elem == Py_None) {
            return kern_raise_closed(k, S.exc_closed_recv); /* lost to cancel() */
        }
        if (kstat_inc(k, s_receives) < 0) {
            goto fail;
        }
        return kern_ret(k, k->elem);
    default:
        break;
    }
    PyErr_SetString(PyExc_SystemError, "engine kernel: corrupt pc (rz_recv)");
fail:
    kern_finalize(k);
    return NULL;
}

/* -- BufferedChannel._send_fused, transcribed ----------------------- */

static PyObject *
buf_send_step(KernelObject *k, PyObject *sv)
{
    PyObject *op = NULL;
    int rc;
    switch (k->pc) {
    case 0:
restart:
        KY(1, k_read(k, k->anchor));
    case 1:
        KSET(segm, sv);
        KY(2, Py_NewRef(k->op_faa));
    case 2: {
        if (as_i64(sv, &k->raw) < 0) {
            goto fail;
        }
        if (kstat_inc(k, s_cells_processed) < 0) {
            goto fail;
        }
        k->idx = KCOUNTER_OF(k->raw);
        k->sid = k->idx / k->kseg;
        k->ci = k->idx % k->kseg;
        if (KIS_FLAGGED(k->raw)) {
            if (k_begin_mark(k, s_mark_closed) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg3;
        }
        int64_t seg_id;
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (seg_id >= k->sid) {
            PyObject *cnt_cell = slot_get(k->segm, S.sg_cnt);
            if (cnt_cell == NULL) {
                goto fail;
            }
            KY(4, k_read(k, cnt_cell));
        }
        if (k_begin_famf(k, 0, NULL) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg8;
    }
    case 3:
deleg3:
        KDELEG(3);
        return kern_raise_closed(k, S.exc_closed_send);
    case 4: {
        int64_t cnt;
        if (as_i64(sv, &cnt) < 0) {
            goto fail;
        }
        if (cnt % (k->kseg + 1) == k->kseg && cnt / (k->kseg + 1) == 0) {
            if (k_begin_famf(k, 1, NULL) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg5;
        }
        KY(6, k_read(k, k->anchor));
    }
    case 5:
deleg5:
        KDELEG(5);
        KSET(segm, k->dres);
        goto moved;
    case 6: {
        int64_t cur_id, seg_id;
        if (k_slot_i64(sv, S.sg_id, &cur_id) < 0) {
            goto fail;
        }
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (cur_id < seg_id) {
            if (k_begin_famf(k, 0, sv) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg7;
        }
        goto moved;
    }
    case 7:
deleg7:
        KDELEG(7);
        KSET(segm, k->dres);
        goto moved;
    case 8:
deleg8:
        KDELEG(8);
        KSET(segm, k->dres);
moved: {
        int64_t seg_id;
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (seg_id != k->sid) {
            KY(9, k_cas_ii(k, k->ctr, k->raw + 1,
                           (k->raw - k->idx) + seg_id * k->kseg));
        }
        PyObject *sc = kseg_cell(k->segm, S.sg_states, k->ci);
        if (sc == NULL) {
            goto fail;
        }
        KSET(state_cell, sc);
        PyObject *ec = kseg_cell(k->segm, S.sg_elems, k->ci);
        if (ec == NULL) {
            goto fail;
        }
        KSET(elem_cell, ec);
        KY(10, k_write(k, k->elem_cell, k->elem));
    }
    case 9:
        if (kstat_inc(k, s_send_restarts) < 0) {
            goto fail;
        }
        goto restart;
    case 10:
updcell:
        KY(11, k_read(k, k->state_cell));
    case 11:
        KSET(state, sv);
        KY(12, k_read(k, k->ctr2));
    case 12: {
        int64_t r_raw;
        if (as_i64(sv, &r_raw) < 0) {
            goto fail;
        }
        k->aux = KCOUNTER_OF(r_raw); /* r, carried across the B read */
        KY(13, k_read(k, k->bcell));
    }
    case 13: {
        int64_t b;
        if (as_i64(sv, &b) < 0) {
            goto fail;
        }
        int64_t r = k->aux;
        if ((k->state == Py_None && (k->idx < r || k->idx < b))
            || k->state == S.cs_in_buffer) {
            /* In the buffer, or a receiver is incoming: deposit. */
            KY(14, k_cas(k, k->state_cell, k->state, S.cs_buffered));
        }
        if (k->state == Py_None && k->idx >= b && k->idx >= r) {
            /* EMPTY, outside the buffer, no receiver. */
            KY(15, Py_NewRef(S.cur_task_op));
        }
        rc = PyObject_IsInstance(k->state, S.cls_receiver);
        if (rc < 0) {
            goto fail;
        }
        if (rc) {
            /* Waiting receiver => rendezvous. */
            PyObject *wc = slot_get(k->state, S.w_state);
            if (wc == NULL) {
                goto fail;
            }
            KSET(wcell, wc);
            KY(19, k_read(k, k->wcell));
        }
        if (k->state == S.cs_int_rcv || k->state == S.cs_broken
            || k->state == S.cs_cancelled) {
            KY(27, k_write(k, k->elem_cell, Py_None));
        }
        return kern_impossible(k, "send");
    }
    case 14:
        if (sv == Py_True) {
            k->outcome = KO_SUCCESS;
            goto post;
        }
        goto updcell;
    case 15:
        if (k_make_waiter(k, S.cls_sender, sv) < 0) {
            goto fail;
        }
        KY(16, k_cas(k, k->state_cell, Py_None, k->waiter));
    case 16:
        if (sv == Py_True) {
            if (k_begin_park(k, s_park_sender) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg17;
        }
        goto updcell;
    case 17:
deleg17:
        KDELEG(17);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->outcome = rc ? KO_SUCCESS : KO_RESTART;
        goto post;
    case 19:
        if (sv == S.ws_init) {
            KY(20, k_cas(k, k->wcell, S.ws_init, S.ws_permit));
        }
        if (sv == S.ws_parked) {
            KY(22, k_cas(k, k->wcell, S.ws_parked, S.ws_resumed));
        }
        k->ok = 0;
        goto unparked;
    case 20:
        if (sv == Py_True) {
            k->ok = 1;
            goto unparked;
        }
        if (k_begin_meth0(k, k->state, s_try_unpark) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg21;
    case 21:
deleg21:
        KDELEG(21);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->ok = rc;
        goto unparked;
    case 22:
        if (sv == Py_True) {
            PyObject *wt = slot_get(k->state, S.w_task);
            if (wt == NULL) {
                goto fail;
            }
            k->ok = 1;
            KY(23, k_unpark(k, wt));
        }
        if (k_begin_meth0(k, k->state, s_try_unpark) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg24;
    case 23:
        goto unparked;
    case 24:
deleg24:
        KDELEG(24);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->ok = rc;
unparked:
        if (k->ok) {
            KY(25, k_write(k, k->state_cell, S.cs_done_rcv));
        }
        KY(27, k_write(k, k->elem_cell, Py_None));
    case 25:
        k->outcome = KO_SUCCESS;
        goto post;
    case 27:
        k->outcome = KO_RESTART;
post:
        if (k->outcome == KO_SUCCESS) {
            PyObject *prev_cell = slot_get(k->segm, S.sg_prev);
            if (prev_cell == NULL) {
                goto fail;
            }
            KY(29, k_write(k, prev_cell, Py_None));
        }
        if (kstat_inc(k, s_send_restarts) < 0) {
            goto fail;
        }
        goto restart;
    case 29:
        if (kstat_inc(k, s_sends) < 0) {
            goto fail;
        }
        return kern_ret(k, NULL);
    default:
        break;
    }
    PyErr_SetString(PyExc_SystemError, "engine kernel: corrupt pc (buf_send)");
fail:
    kern_finalize(k);
    return NULL;
}

/* -- BufferedChannel._receive_fused, transcribed -------------------- */

static PyObject *
buf_recv_step(KernelObject *k, PyObject *sv)
{
    PyObject *op = NULL;
    int rc;
    switch (k->pc) {
    case 0:
restart:
        KY(1, k_read(k, k->anchor));
    case 1:
        KSET(segm, sv);
        KY(2, Py_NewRef(k->op_faa));
    case 2: {
        if (as_i64(sv, &k->raw) < 0) {
            goto fail;
        }
        if (kstat_inc(k, s_cells_processed) < 0) {
            goto fail;
        }
        k->idx = KCOUNTER_OF(k->raw);
        k->sid = k->idx / k->kseg;
        k->ci = k->idx % k->kseg;
        if (KIS_FLAGGED(k->raw)) { /* the channel was cancelled */
            if (k_begin_mark(k, s_mark_cancelled) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg3;
        }
        int64_t seg_id;
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (seg_id >= k->sid) {
            PyObject *cnt_cell = slot_get(k->segm, S.sg_cnt);
            if (cnt_cell == NULL) {
                goto fail;
            }
            KY(4, k_read(k, cnt_cell));
        }
        if (k_begin_famf(k, 0, NULL) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg8;
    }
    case 3:
deleg3:
        KDELEG(3);
        return kern_raise_closed(k, S.exc_closed_recv);
    case 4: {
        int64_t cnt;
        if (as_i64(sv, &cnt) < 0) {
            goto fail;
        }
        if (cnt % (k->kseg + 1) == k->kseg && cnt / (k->kseg + 1) == 0) {
            if (k_begin_famf(k, 1, NULL) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg5;
        }
        KY(6, k_read(k, k->anchor));
    }
    case 5:
deleg5:
        KDELEG(5);
        KSET(segm, k->dres);
        goto moved;
    case 6: {
        int64_t cur_id, seg_id;
        if (k_slot_i64(sv, S.sg_id, &cur_id) < 0) {
            goto fail;
        }
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (cur_id < seg_id) {
            if (k_begin_famf(k, 0, sv) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg7;
        }
        goto moved;
    }
    case 7:
deleg7:
        KDELEG(7);
        KSET(segm, k->dres);
        goto moved;
    case 8:
deleg8:
        KDELEG(8);
        KSET(segm, k->dres);
moved: {
        int64_t seg_id;
        if (k_slot_i64(k->segm, S.sg_id, &seg_id) < 0) {
            goto fail;
        }
        if (seg_id != k->sid) {
            KY(9, k_cas_ii(k, k->ctr, k->raw + 1,
                           (k->raw - k->idx) + seg_id * k->kseg));
        }
        PyObject *sc = kseg_cell(k->segm, S.sg_states, k->ci);
        if (sc == NULL) {
            goto fail;
        }
        KSET(state_cell, sc);
        goto updcell;
    }
    case 9:
        if (kstat_inc(k, s_rcv_restarts) < 0) {
            goto fail;
        }
        goto restart;
updcell:
        KY(11, k_read(k, k->state_cell));
    case 11:
        KSET(state, sv);
        KY(12, k_read(k, k->ctr2));
    case 12: {
        int64_t s_raw;
        if (as_i64(sv, &s_raw) < 0) {
            goto fail;
        }
        int64_t s = KCOUNTER_OF(s_raw);
        int emptyish = (k->state == Py_None || k->state == S.cs_in_buffer);
        if (emptyish && k->idx >= s) {
            /* EMPTY (or pre-marked buffer cell), no sender. */
            if (KIS_FLAGGED(s_raw)) {
                /* Closed and drained. */
                KY(13, k_cas(k, k->state_cell, k->state, S.cs_int_rcv));
            }
            KY(15, Py_NewRef(S.cur_task_op));
        }
        if (emptyish) {
            /* A sender is incoming => poison the cell. */
            KY(26, k_cas(k, k->state_cell, k->state, S.cs_broken));
        }
        if (k->state == S.cs_buffered) {
            if (k_begin_expand(k) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg25;
        }
        if (k->state == S.cs_int_send) {
            k->outcome = KO_RESTART; /* expandBuffer owns the accounting */
            goto post;
        }
        if (k->state == S.cs_cancelled) {
            k->outcome = KO_RESTART;
            goto post;
        }
        rc = PyObject_IsInstance(k->state, S.cls_sender);
        if (rc < 0) {
            goto fail;
        }
        if (rc) {
            /* Suspended sender: help via the S_RESUMING_RCV lock. */
            KY(30, k_cas(k, k->state_cell, k->state, S.cs_sr_rcv));
        }
        if (k->state == S.cs_sr_eb) {
            /* expandBuffer is resuming the sender => wait. */
            KY(34, Py_NewRef(k->op_spin));
        }
        return kern_impossible(k, "receive");
    }
    case 13:
        if (sv == Py_True) {
            if (k_begin_meth0(k, k->segm, s_on_interrupted) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg14;
        }
        goto updcell;
    case 14:
deleg14:
        KDELEG(14);
        if (k_begin_expand(k) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg22;
    case 15:
        if (k_make_waiter(k, S.cls_receiver, sv) < 0) {
            goto fail;
        }
        KY(16, k_cas(k, k->state_cell, k->state, k->waiter));
    case 16:
        if (sv == Py_True) {
            /* Restore the consumed capacity *before* suspending. */
            if (k_begin_expand(k) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg17;
        }
        goto updcell;
    case 17:
deleg17:
        KDELEG(17);
        if (k_begin_recheck(k) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg18;
    case 18:
deleg18:
        KDELEG(18);
        if (k_begin_park(k, s_park_receiver) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg19;
    case 19:
deleg19:
        KDELEG(19);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        k->outcome = rc ? KO_SUCCESS : KO_RESTART;
        goto post;
    case 22:
deleg22:
        KDELEG(22);
        k->outcome = KO_CLOSED;
        goto post;
    case 25:
deleg25:
        KDELEG(25);
        k->outcome = KO_SUCCESS;
        goto post;
    case 26:
        if (sv == Py_True) {
            if (kstat_inc(k, s_poisoned) < 0) {
                goto fail;
            }
            if (k_begin_expand(k) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg27;
        }
        goto updcell;
    case 27:
deleg27:
        KDELEG(27);
        k->outcome = KO_RESTART;
        goto post;
    case 30:
        if (sv == Py_True) {
            if (k_begin_meth0(k, k->state, s_try_unpark) < 0) {
                goto fail;
            }
            sv = NULL;
            goto deleg31;
        }
        goto updcell;
    case 31:
deleg31:
        KDELEG(31);
        rc = k_dres_true(k);
        if (rc < 0) {
            goto fail;
        }
        if (rc) {
            KY(32, k_write(k, k->state_cell, S.cs_buffered));
        }
        KY(33, k_write(k, k->state_cell, S.cs_int_send));
    case 32:
        goto updcell;
    case 33:
        goto updcell;
    case 34:
        goto updcell;
post:
        if (k->outcome == KO_SUCCESS) {
            /* Claim the element atomically vs. a racing cancel(). */
            PyObject *ec = kseg_cell(k->segm, S.sg_elems, k->ci);
            if (ec == NULL) {
                goto fail;
            }
            KY(36, k_gas(k, ec, Py_None));
        }
        if (k->outcome == KO_CLOSED) {
            return kern_raise_closed(k, S.exc_closed_recv);
        }
        if (kstat_inc(k, s_rcv_restarts) < 0) {
            goto fail;
        }
        goto restart;
    case 36: {
        KSET(elem, sv);
        PyObject *prev_cell = slot_get(k->segm, S.sg_prev);
        if (prev_cell == NULL) {
            goto fail;
        }
        KY(37, k_write(k, prev_cell, Py_None));
    }
    case 37:
        if (k->elem == Py_None) {
            return kern_raise_closed(k, S.exc_closed_recv); /* lost to cancel() */
        }
        if (kstat_inc(k, s_receives) < 0) {
            goto fail;
        }
        return kern_ret(k, k->elem);
    default:
        break;
    }
    PyErr_SetString(PyExc_SystemError, "engine kernel: corrupt pc (buf_recv)");
fail:
    kern_finalize(k);
    return NULL;
}

/* -- FAAQueue._enqueue_fused / _dequeue_fused, transcribed ---------- */

static PyObject *
faaq_enq_step(KernelObject *k, PyObject *sv)
{
    PyObject *op = NULL;
    switch (k->pc) {
    case 0:
restart:
        KY(1, Py_NewRef(k->op_faa));
    case 1:
        if (as_i64(sv, &k->idx) < 0) {
            goto fail;
        }
        k->sid = k->idx / k->kseg;
        k->ci = k->idx % k->kseg;
        KY(2, k_read(k, k->anchor));
    case 2: {
        /* Inlined _find_segment fast case: tail already covers us. */
        KSET(segm, sv);
        int64_t cur_id;
        if (k_slot_i64(k->segm, S.qs_id, &cur_id) < 0) {
            goto fail;
        }
        if (cur_id == k->sid) {
            KY(3, k_read(k, k->anchor));
        }
        if (k_begin_findseg(k) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg5;
    }
    case 3: {
        int64_t seen_id, cur_id;
        if (k_slot_i64(sv, S.qs_id, &seen_id) < 0) {
            goto fail;
        }
        if (k_slot_i64(k->segm, S.qs_id, &cur_id) < 0) {
            goto fail;
        }
        if (seen_id < cur_id) {
            KY(4, k_cas(k, k->anchor, sv, k->segm));
        }
        goto gotseg;
    }
    case 4:
        goto gotseg;
    case 5:
deleg5:
        KDELEG(5);
        KSET(segm, k->dres);
gotseg: {
        PyObject *cell = kseg_cell(k->segm, S.qs_cells, k->ci);
        if (cell == NULL) {
            goto fail;
        }
        KY(6, k_cas(k, cell, Py_None, k->elem));
    }
    case 6:
        if (sv == Py_True) {
            return kern_ret(k, NULL);
        }
        /* The cell was poisoned by a hasty dequeuer; take the next one. */
        goto restart;
    default:
        break;
    }
    PyErr_SetString(PyExc_SystemError, "engine kernel: corrupt pc (faaq_enq)");
fail:
    kern_finalize(k);
    return NULL;
}

static PyObject *
faaq_deq_step(KernelObject *k, PyObject *sv)
{
    PyObject *op = NULL;
    switch (k->pc) {
    case 0:
restart:
        KY(1, k_read(k, k->ctr));
    case 1:
        if (as_i64(sv, &k->raw) < 0) { /* deq */
            goto fail;
        }
        KY(2, k_read(k, k->ctr2));
    case 2: {
        int64_t enq;
        if (as_i64(sv, &enq) < 0) {
            goto fail;
        }
        if (k->raw >= enq) {
            return kern_ret(k, NULL); /* observed empty */
        }
        KY(3, Py_NewRef(k->op_faa));
    }
    case 3:
        if (as_i64(sv, &k->idx) < 0) {
            goto fail;
        }
        k->sid = k->idx / k->kseg;
        k->ci = k->idx % k->kseg;
        KY(4, k_read(k, k->anchor));
    case 4: {
        /* Inlined _find_segment fast case (see enqueue). */
        KSET(segm, sv);
        int64_t cur_id;
        if (k_slot_i64(k->segm, S.qs_id, &cur_id) < 0) {
            goto fail;
        }
        if (cur_id == k->sid) {
            KY(5, k_read(k, k->anchor));
        }
        if (k_begin_findseg(k) < 0) {
            goto fail;
        }
        sv = NULL;
        goto deleg7;
    }
    case 5: {
        int64_t seen_id, cur_id;
        if (k_slot_i64(sv, S.qs_id, &seen_id) < 0) {
            goto fail;
        }
        if (k_slot_i64(k->segm, S.qs_id, &cur_id) < 0) {
            goto fail;
        }
        if (seen_id < cur_id) {
            KY(6, k_cas(k, k->anchor, sv, k->segm));
        }
        goto gotseg;
    }
    case 6:
        goto gotseg;
    case 7:
deleg7:
        KDELEG(7);
        KSET(segm, k->dres);
gotseg: {
        PyObject *cell = kseg_cell(k->segm, S.qs_cells, k->ci);
        if (cell == NULL) {
            goto fail;
        }
        KY(8, k_gas(k, cell, S.faaq_broken));
    }
    case 8:
        if (sv != Py_None) {
            return kern_ret(k, sv);
        }
        /* Poisoned an empty cell; its enqueuer will skip it. */
        goto restart;
    default:
        break;
    }
    PyErr_SetString(PyExc_SystemError, "engine kernel: corrupt pc (faaq_deq)");
fail:
    kern_finalize(k);
    return NULL;
}

/* -- generator protocol over the machines --------------------------- */

static PyObject *
kern_resume(KernelObject *k, PyObject *sv)
{
    if (k->done) {
        PyErr_SetNone(PyExc_StopIteration);
        return NULL;
    }
    switch (k->kind) {
    case K_RZ_SEND:
        return rz_send_step(k, sv);
    case K_RZ_RECV:
        return rz_recv_step(k, sv);
    case K_BUF_SEND:
        return buf_send_step(k, sv);
    case K_BUF_RECV:
        return buf_recv_step(k, sv);
    case K_FAAQ_ENQ:
        return faaq_enq_step(k, sv);
    case K_FAAQ_DEQ:
        return faaq_deq_step(k, sv);
    default:
        PyErr_SetString(PyExc_SystemError, "engine kernel: unknown kind");
        return NULL;
    }
}

static PyObject *
kern_next(PyObject *self)
{
    return kern_resume((KernelObject *)self, Py_None);
}

static PyObject *
kern_send_meth(PyObject *self, PyObject *value)
{
    return kern_resume((KernelObject *)self, value);
}

/* throw(typ[, val[, tb]]) — the yield-from forwarding contract. */
static PyObject *
kern_throw(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    KernelObject *k = (KernelObject *)self;
    if (nargs < 1 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError, "throw() takes 1-3 arguments");
        return NULL;
    }
    PyObject *typ = args[0];
    PyObject *val = nargs > 1 ? args[1] : NULL;
    PyObject *tb = nargs > 2 ? args[2] : NULL;
    if (tb == Py_None) {
        tb = NULL;
    }
    if (!k->done && k->deleg != NULL
        && !PyErr_GivenExceptionMatches(typ, PyExc_GeneratorExit)) {
        /* Forward into the active delegate, exactly as the suspended
         * ``yield from`` would. */
        PyObject *res = PyObject_CallMethodObjArgs(k->deleg, s_throw, typ,
                                                   val, tb, NULL);
        if (res != NULL) {
            return res; /* the delegate yielded again; pc is unchanged */
        }
        PyObject *sval;
        if (k_fetch_stop(&sval)) {
            /* The delegate caught the throw and returned (e.g. a parked
             * waiter turning RetryWakeup into False): continue the
             * machine after the delegation point. */
            Py_CLEAR(k->deleg);
            Py_XSETREF(k->dres, sval);
            return kern_resume(k, NULL);
        }
        kern_finalize(k);
        return NULL;
    }
    if (!k->done && k->deleg != NULL) {
        /* GeneratorExit: close the delegate, then unwind ourselves. */
        PyObject *r = PyObject_CallMethodNoArgs(k->deleg, s_close);
        if (r == NULL) {
            kern_finalize(k);
            return NULL;
        }
        Py_DECREF(r);
    }
    kern_finalize(k);
    if (PyExceptionClass_Check(typ)) {
        PyErr_SetObject(typ, val);
    }
    else if (PyExceptionInstance_Check(typ)) {
        if (val != NULL && val != Py_None) {
            PyErr_SetString(PyExc_TypeError,
                            "instance exception may not have a separate value");
            return NULL;
        }
        PyErr_SetObject((PyObject *)Py_TYPE(typ), typ);
    }
    else {
        PyErr_SetString(PyExc_TypeError,
                        "exceptions must be classes or instances deriving "
                        "from BaseException");
        return NULL;
    }
    return NULL;
}

static PyObject *
kern_close_meth(PyObject *self, PyObject *noargs)
{
    (void)noargs;
    KernelObject *k = (KernelObject *)self;
    if (k->deleg != NULL) {
        PyObject *r = PyObject_CallMethodNoArgs(k->deleg, s_close);
        if (r == NULL) {
            kern_finalize(k);
            return NULL;
        }
        Py_DECREF(r);
    }
    kern_finalize(k);
    Py_RETURN_NONE;
}

static PyMethodDef kern_methods[] = {
    {"send", kern_send_meth, METH_O,
     "Resume the kernel with a value; returns the next op."},
    {"throw", (PyCFunction)(void (*)(void))kern_throw, METH_FASTCALL,
     "Raise an exception at the kernel's suspension point."},
    {"close", kern_close_meth, METH_NOARGS,
     "Unwind the kernel (releases its kit and delegate)."},
    {NULL, NULL, 0, NULL},
};

static int
kern_traverse(KernelObject *k, visitproc visit, void *arg)
{
    Py_VISIT(k->chan);
    Py_VISIT(k->elem);
    Py_VISIT(k->list);
    Py_VISIT(k->stats);
    Py_VISIT(k->anchor);
    Py_VISIT(k->ctr);
    Py_VISIT(k->ctr2);
    Py_VISIT(k->bcell);
    Py_VISIT(k->segm);
    Py_VISIT(k->state_cell);
    Py_VISIT(k->elem_cell);
    Py_VISIT(k->state);
    Py_VISIT(k->wcell);
    Py_VISIT(k->waiter);
    Py_VISIT(k->kit);
    Py_VISIT(k->deleg);
    Py_VISIT(k->dres);
    Py_VISIT(k->op_read);
    Py_VISIT(k->op_write);
    Py_VISIT(k->op_cas);
    Py_VISIT(k->op_faa);
    Py_VISIT(k->op_gas);
    Py_VISIT(k->op_unpark);
    Py_VISIT(k->op_spin);
    return 0;
}

static int
kern_clear(KernelObject *k)
{
    Py_CLEAR(k->chan);
    Py_CLEAR(k->elem);
    Py_CLEAR(k->list);
    Py_CLEAR(k->stats);
    Py_CLEAR(k->anchor);
    Py_CLEAR(k->ctr);
    Py_CLEAR(k->ctr2);
    Py_CLEAR(k->bcell);
    Py_CLEAR(k->segm);
    Py_CLEAR(k->state_cell);
    Py_CLEAR(k->elem_cell);
    Py_CLEAR(k->state);
    Py_CLEAR(k->wcell);
    Py_CLEAR(k->waiter);
    Py_CLEAR(k->kit);
    Py_CLEAR(k->deleg);
    Py_CLEAR(k->dres);
    Py_CLEAR(k->op_read);
    Py_CLEAR(k->op_write);
    Py_CLEAR(k->op_cas);
    Py_CLEAR(k->op_faa);
    Py_CLEAR(k->op_gas);
    Py_CLEAR(k->op_unpark);
    Py_CLEAR(k->op_spin);
    return 0;
}

static void
kern_dealloc(KernelObject *k)
{
    PyObject_GC_UnTrack(k);
    if (!k->done) {
        /* Abandoned mid-operation (e.g. its worker was collected):
         * run the finally-equivalent without clobbering an exception
         * in flight. */
        PyObject *t, *v, *tb;
        PyErr_Fetch(&t, &v, &tb);
        kern_finalize(k);
        PyErr_Restore(t, v, tb);
    }
    /* kern_finalize (run above, or earlier at normal completion)
     * already cleared every transient register; the channel-derived
     * ones — chan/list/stats/anchor/ctr/ctr2/bcell plus kseg and the
     * op presets — stay with a pooled kernel, so the next operation on
     * the same channel skips refetching them (the cache check in
     * kern_channel_new / kern_faaq_new, keyed on (kind, chan)). */
    if (kern_pool_len < KERN_POOL_CAP && S.ready
        && k->cfg_gen == S.kcfg_gen && k->op_read != NULL) {
        /* cache_kind is NOT stamped here: the factories set it only
         * after a fully successful construction, so a kernel pooled
         * off a mid-construction failure can never present its
         * partial registers as a valid cache. */
        kern_ops_release_payload(k);
        kern_pool[kern_pool_len++] = k;
        return;
    }
    Py_CLEAR(k->chan);
    Py_CLEAR(k->elem);
    Py_CLEAR(k->list);
    Py_CLEAR(k->stats);
    Py_CLEAR(k->anchor);
    Py_CLEAR(k->ctr);
    Py_CLEAR(k->ctr2);
    Py_CLEAR(k->bcell);
    Py_CLEAR(k->segm);
    Py_CLEAR(k->state_cell);
    Py_CLEAR(k->elem_cell);
    Py_CLEAR(k->state);
    Py_CLEAR(k->wcell);
    Py_CLEAR(k->waiter);
    Py_CLEAR(k->kit);
    Py_CLEAR(k->deleg);
    Py_CLEAR(k->dres);
    Py_CLEAR(k->op_read);
    Py_CLEAR(k->op_write);
    Py_CLEAR(k->op_cas);
    Py_CLEAR(k->op_faa);
    Py_CLEAR(k->op_gas);
    Py_CLEAR(k->op_unpark);
    Py_CLEAR(k->op_spin);
    PyObject_GC_Del(k);
}

static PyTypeObject KernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._engine._enginec.OpKernel",
    .tp_basicsize = sizeof(KernelObject),
    .tp_dealloc = (destructor)kern_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Native transcription of one fused channel/queue fast path.",
    .tp_traverse = (traverseproc)kern_traverse,
    .tp_clear = (inquiry)kern_clear,
    .tp_iter = PyObject_SelfIter,
    .tp_iternext = kern_next,
    .tp_methods = kern_methods,
};

/* -- construction --------------------------------------------------- */

static KernelObject *
kern_new(int kind)
{
    KernelObject *k = NULL;
    while (kern_pool_len > 0) {
        k = kern_pool[--kern_pool_len];
        if (k->cfg_gen == S.kcfg_gen) {
            Py_SET_REFCNT((PyObject *)k, 1);
            break;
        }
        /* Stale configure generation: its ops bind old classes. */
        Py_CLEAR(k->chan);
        Py_CLEAR(k->list);
        Py_CLEAR(k->stats);
        Py_CLEAR(k->anchor);
        Py_CLEAR(k->ctr);
        Py_CLEAR(k->ctr2);
        Py_CLEAR(k->bcell);
        Py_CLEAR(k->op_read);
        Py_CLEAR(k->op_write);
        Py_CLEAR(k->op_cas);
        Py_CLEAR(k->op_faa);
        Py_CLEAR(k->op_gas);
        Py_CLEAR(k->op_unpark);
        Py_CLEAR(k->op_spin);
        PyObject_GC_Del(k);
        k = NULL;
    }
    if (k == NULL) {
        k = PyObject_GC_New(KernelObject, &KernelType);
        if (k == NULL) {
            return NULL;
        }
        memset((char *)k + sizeof(PyObject), 0,
               sizeof(KernelObject) - sizeof(PyObject));
    }
    k->kind = kind;
    k->pc = 0;
    k->done = 0;
    k->outcome = KO_RESTART;
    k->ok = 0;
    /* k->kseg is NOT reset: it belongs to the cached channel registers
     * and survives pool reuse (factories overwrite it on a miss). */
    k->idx = 0;
    k->raw = 0;
    k->aux = 0;
    k->sid = 0;
    k->ci = 0;
    if (k->op_read == NULL) {
        k->op_read = blank_op(S.tp_read);
        k->op_write = k->op_read != NULL ? blank_op(S.tp_write) : NULL;
        k->op_cas = k->op_write != NULL ? blank_op(S.tp_cas) : NULL;
        k->op_faa = k->op_cas != NULL ? blank_op(S.tp_faa) : NULL;
        k->op_gas = k->op_faa != NULL ? blank_op(S.tp_gas) : NULL;
        k->op_unpark = k->op_gas != NULL ? blank_op(S.tp_unpark) : NULL;
        k->op_spin = k->op_unpark != NULL ? blank_op(S.tp_spin) : NULL;
        if (k->op_spin == NULL) {
            Py_DECREF(k);
            return NULL;
        }
        k->cfg_gen = S.kcfg_gen;
    }
    return k;
}

/* Per-construction op presets (pooled kernels had payloads cleared). */
static int
kern_preset(KernelObject *k)
{
    PyObject *one = PyLong_FromLong(1);
    if (one == NULL) {
        return -1;
    }
    slot_set(k->op_faa, S.op_faa_cell, k->ctr);
    slot_set(k->op_faa, S.op_faa_delta, one);
    Py_DECREF(one);
    slot_set(k->op_unpark, S.op_unpark_interrupt, Py_False);
    slot_set(k->op_unpark, S.op_unpark_retry, Py_False);
    return 0;
}

static PyObject *
kern_channel_new(int kind, PyObject *chan, PyObject *elem)
{
    if (!S.ready) {
        Py_RETURN_NONE; /* decline: dispatch falls back to the generator */
    }
    KernelObject *k = kern_new(kind);
    if (k == NULL) {
        return NULL;
    }
    int send_side = (kind == K_RZ_SEND || kind == K_BUF_SEND);
    if (elem != NULL) {
        k->elem = Py_NewRef(elem);
    }
    if (k->cache_kind == kind && k->chan == chan) {
        /* Pool cache hit: the channel-derived registers (and the op
         * presets cut from them) are already in place. */
        goto ready;
    }
    k->cache_kind = -1; /* invalid until the rebuild below completes */
    Py_XSETREF(k->chan, Py_NewRef(chan));
    Py_CLEAR(k->list);
    Py_CLEAR(k->stats);
    Py_CLEAR(k->anchor);
    Py_CLEAR(k->ctr);
    Py_CLEAR(k->ctr2);
    Py_CLEAR(k->bcell);
    {
        PyObject *v = PyObject_GetAttr(chan, s_seg_size);
        if (v == NULL) {
            goto fail;
        }
        int rc = as_i64(v, &k->kseg);
        Py_DECREF(v);
        if (rc < 0) {
            goto fail;
        }
    }
    if ((k->stats = PyObject_GetAttr(chan, s_stats)) == NULL
        || (k->list = PyObject_GetAttr(chan, s_ulist)) == NULL
        || (k->anchor = PyObject_GetAttr(chan, send_side ? s_segm_s
                                                         : s_segm_r)) == NULL
        || (k->ctr = PyObject_GetAttr(chan, send_side ? s_cap_s
                                                      : s_cap_r)) == NULL
        || (k->ctr2 = PyObject_GetAttr(chan, send_side ? s_cap_r
                                                       : s_cap_s)) == NULL) {
        goto fail;
    }
    if (kind == K_BUF_SEND
        && (k->bcell = PyObject_GetAttr(chan, s_cap_b)) == NULL) {
        goto fail;
    }
    if (kind == K_BUF_RECV) {
        slot_set(k->op_spin, S.op_spin_reason, s_rcv_wait_eb);
    }
    if (kern_preset(k) < 0) {
        goto fail;
    }
    k->cache_kind = kind;
ready:
    if (kind == K_BUF_RECV) {
        /* expand_buffer delegates need a real OpKit, acquired and
         * released on the same pool the fused generator would use. */
        k->kit = PyObject_CallNoArgs(S.fn_acquire_kit);
        if (k->kit == NULL) {
            goto fail;
        }
    }
    PyObject_GC_Track((PyObject *)k);
    return (PyObject *)k;
fail:
    k->done = 1; /* nothing simulated yet; plain teardown */
    PyObject_GC_Track((PyObject *)k);
    Py_DECREF(k);
    return NULL;
}

static PyObject *
kern_faaq_new(int kind, PyObject *q, PyObject *value)
{
    if (!S.ready) {
        Py_RETURN_NONE;
    }
    KernelObject *k = kern_new(kind);
    if (k == NULL) {
        return NULL;
    }
    int enq = (kind == K_FAAQ_ENQ);
    if (value != NULL) {
        k->elem = Py_NewRef(value);
    }
    if (k->cache_kind == kind && k->chan == q) {
        PyObject_GC_Track((PyObject *)k);
        return (PyObject *)k;
    }
    k->cache_kind = -1; /* invalid until the rebuild below completes */
    Py_XSETREF(k->chan, Py_NewRef(q));
    Py_CLEAR(k->list);
    Py_CLEAR(k->stats);
    Py_CLEAR(k->bcell);
    Py_CLEAR(k->anchor);
    Py_CLEAR(k->ctr);
    Py_CLEAR(k->ctr2);
    k->kseg = 16; /* faa_queue._SEG */
    if ((k->anchor = PyObject_GetAttr(q, enq ? s_tail_attr
                                             : s_head_attr)) == NULL
        || (k->ctr = PyObject_GetAttr(q, enq ? s_enq_idx
                                             : s_deq_idx)) == NULL) {
        goto fail;
    }
    if (!enq && (k->ctr2 = PyObject_GetAttr(q, s_enq_idx)) == NULL) {
        goto fail;
    }
    if (kern_preset(k) < 0) {
        goto fail;
    }
    k->cache_kind = kind;
    PyObject_GC_Track((PyObject *)k);
    return (PyObject *)k;
fail:
    k->done = 1;
    PyObject_GC_Track((PyObject *)k);
    Py_DECREF(k);
    return NULL;
}

#define KERN_FACTORY2(fname, kindconst, maker)                          \
    static PyObject *                                                   \
    fname(PyObject *self, PyObject *const *args, Py_ssize_t nargs)      \
    {                                                                   \
        (void)self;                                                     \
        if (nargs != 2) {                                               \
            PyErr_SetString(PyExc_TypeError, #fname "(obj, element)");  \
            return NULL;                                                \
        }                                                               \
        return maker(kindconst, args[0], args[1]);                      \
    }
#define KERN_FACTORY1(fname, kindconst, maker)                          \
    static PyObject *                                                   \
    fname(PyObject *self, PyObject *const *args, Py_ssize_t nargs)      \
    {                                                                   \
        (void)self;                                                     \
        if (nargs != 1) {                                               \
            PyErr_SetString(PyExc_TypeError, #fname "(obj)");           \
            return NULL;                                                \
        }                                                               \
        return maker(kindconst, args[0], NULL);                         \
    }

KERN_FACTORY2(engine_kernel_rz_send, K_RZ_SEND, kern_channel_new)
KERN_FACTORY1(engine_kernel_rz_recv, K_RZ_RECV, kern_channel_new)
KERN_FACTORY2(engine_kernel_buf_send, K_BUF_SEND, kern_channel_new)
KERN_FACTORY1(engine_kernel_buf_recv, K_BUF_RECV, kern_channel_new)
KERN_FACTORY2(engine_kernel_faaq_enq, K_FAAQ_ENQ, kern_faaq_new)
KERN_FACTORY1(engine_kernel_faaq_deq, K_FAAQ_DEQ, kern_faaq_new)

#undef KERN_FACTORY2
#undef KERN_FACTORY1

static PyObject *
engine_configured(PyObject *self, PyObject *noargs)
{
    (void)self;
    (void)noargs;
    return PyBool_FromLong(S.ready);
}

static PyMethodDef engine_methods[] = {
    {"configure", engine_configure, METH_O,
     "Bind the engine to the repro classes; validates __slots__ layouts."},
    {"run_fast", engine_run_fast, METH_O,
     "Run a Scheduler's fused DES loop natively (bit-identical to _run_fast)."},
    {"run_observed", engine_run_observed, METH_O,
     "Run a Scheduler's observed general loop natively (bit-identical to "
     "_run_general)."},
    {"configured", engine_configured, METH_NOARGS,
     "True once configure() has validated the object layouts."},
    {"kernel_rz_send", (PyCFunction)(void (*)(void))engine_kernel_rz_send,
     METH_FASTCALL, "Native RendezvousChannel._send_fused kernel."},
    {"kernel_rz_recv", (PyCFunction)(void (*)(void))engine_kernel_rz_recv,
     METH_FASTCALL, "Native RendezvousChannel._receive_fused kernel."},
    {"kernel_buf_send", (PyCFunction)(void (*)(void))engine_kernel_buf_send,
     METH_FASTCALL, "Native BufferedChannel._send_fused kernel."},
    {"kernel_buf_recv", (PyCFunction)(void (*)(void))engine_kernel_buf_recv,
     METH_FASTCALL, "Native BufferedChannel._receive_fused kernel."},
    {"kernel_faaq_enq", (PyCFunction)(void (*)(void))engine_kernel_faaq_enq,
     METH_FASTCALL, "Native FAAQueue._enqueue_fused kernel."},
    {"kernel_faaq_deq", (PyCFunction)(void (*)(void))engine_kernel_faaq_deq,
     METH_FASTCALL, "Native FAAQueue._dequeue_fused kernel."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef engine_module = {
    PyModuleDef_HEAD_INIT,
    "repro._engine._enginec",
    "Compiled engine tier: the fused DES stint loop in C.",
    -1,
    engine_methods,
    NULL, /* m_slots */
    NULL, /* m_traverse */
    NULL, /* m_clear */
    NULL, /* m_free */
};

PyMODINIT_FUNC
PyInit__enginec(void)
{
#define INTERN(var, text)                        \
    do {                                         \
        var = PyUnicode_InternFromString(text);  \
        if (var == NULL) return NULL;            \
    } while (0)
    INTERN(s_live, "_live");
    INTERN(s_heap, "_heap");
    INTERN(s_cost, "cost");
    INTERN(s_policy, "policy");
    INTERN(s_p, "p");
    INTERN(s_lcg, "_lcg");
    INTERN(s_processors, "processors");
    INTERN(s_unbound, "_unbound");
    INTERN(s_max_steps, "max_steps");
    INTERN(s_total_steps, "total_steps");
    INTERN(s_tasks, "tasks");
    INTERN(s_bind, "_bind");
    INTERN(s_unbind, "_unbind");
    INTERN(s_make_runnable, "_make_runnable");
    INTERN(s_dispatch, "_dispatch");
    INTERN(s_charge, "charge");
    INTERN(s_popleft, "popleft");
    INTERN(s_throw, "throw");
    INTERN(s_value, "value");
    INTERN(s_compare, "compare");
    INTERN(s_read_hit, "read_hit");
    INTERN(s_write, "write");
    INTERN(s_rmw, "rmw");
    INTERN(s_remote_miss, "remote_miss");
    INTERN(s_read_miss, "read_miss");
    INTERN(s_park, "park");
    INTERN(s_unpark, "unpark");
    INTERN(s_wake_latency, "wake_latency");
    INTERN(s_spin, "spin");
    INTERN(s_yield_, "yield_");
    INTERN(s_alloc, "alloc");
    INTERN(s_jitter, "jitter");
    INTERN(s_clock, "clock");
    INTERN(s_pending_value_str, "pending_value");
    INTERN(s_hooks, "_hooks");
    INTERN(s_alloc_stats, "alloc_stats");
    INTERN(s_record, "record");
    INTERN(s_forget, "forget");
    INTERN(s_sample, "sample");
    INTERN(s_of, "of");
    INTERN(s_send, "send");
    INTERN(s_close, "close");
    INTERN(s_try_unpark, "try_unpark");
    INTERN(s_famf, "find_and_move_forward");
    INTERN(s_find_segment, "_find_segment");
    INTERN(s_mark_closed, "_mark_closed_send_cell");
    INTERN(s_mark_cancelled, "_mark_cancelled_rcv_cell");
    INTERN(s_park_sender, "_park_sender");
    INTERN(s_park_receiver, "_park_receiver");
    INTERN(s_close_recheck, "_close_recheck_receiver");
    INTERN(s_on_interrupted, "on_interrupted_cell");
    INTERN(s_expand_buffer, "expand_buffer");
    INTERN(s_seg_size, "seg_size");
    INTERN(s_stats, "stats");
    INTERN(s_segm_s, "_segm_s");
    INTERN(s_segm_r, "_segm_r");
    INTERN(s_segm_b, "_segm_b");
    INTERN(s_cap_s, "S");
    INTERN(s_cap_r, "R");
    INTERN(s_cap_b, "B");
    INTERN(s_ulist, "_list");
    INTERN(s_head_attr, "_head");
    INTERN(s_tail_attr, "_tail");
    INTERN(s_enq_idx, "enq_idx");
    INTERN(s_deq_idx, "deq_idx");
    INTERN(s_cells_processed, "cells_processed");
    INTERN(s_send_restarts, "send_restarts");
    INTERN(s_rcv_restarts, "rcv_restarts");
    INTERN(s_sends, "sends");
    INTERN(s_receives, "receives");
    INTERN(s_eliminations, "eliminations");
    INTERN(s_poisoned, "poisoned");
    INTERN(s_rcv_wait_eb, "rcv-wait-eb");
#undef INTERN
    if (PyType_Ready(&KernelType) < 0) {
        return NULL;
    }
    memset(&S, 0, sizeof(S));
    PyObject *mod = PyModule_Create(&engine_module);
    if (mod == NULL) {
        return NULL;
    }
    if (PyModule_AddObjectRef(mod, "OpKernel", (PyObject *)&KernelType) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
