/* _enginec — the compiled engine tier for the repro simulator.
 *
 * This module is a line-for-line transcription of
 * ``repro.sim.scheduler.Scheduler._run_fast`` (the fused DES stint loop)
 * into a hand-written CPython extension.  It is NOT a new engine: the
 * pure-Python ``_run_fast`` remains the reference implementation and the
 * single source of truth for semantics; this file must produce the exact
 * same op streams, clocks, jitter-LCG states, and heap layouts, pinned by
 * the 16 golden configs in ``tests/data/golden_engine.json`` running under
 * both tiers.
 *
 * What is compiled here (the PR-3 fast-lane inventory):
 *   - the stint loop itself: pop the earliest runnable task, resume its
 *     generator one op at a time while the DES policy allows, requeue via
 *     a wide ``(clock, tid, task, steps, value, exc)`` heap entry;
 *   - the type-keyed op apply/charge dispatch (the compiled analogue of
 *     ``MEMORY_OP_APPLIERS`` + ``CostModel._charge_table``), fused per op
 *     type with the cache-coherence cost arithmetic;
 *   - the heap discipline (heappush/heappop/heappushpop exactly as
 *     ``heapq`` implements them, with the ``(clock, tid)`` comparison
 *     falling back to full-tuple rich comparison on ties so even the
 *     pathological cases match CPython bit for bit);
 *   - the bit-exact jitter LCG (the scalar recurrence; the numpy batch in
 *     ``costmodel.lcg_batch`` generates the identical state stream).
 *
 * ``run_observed`` is the second executor (the PR-9 observed-path
 * core): a transcription of ``Scheduler._run_general`` +
 * ``_step_task`` + ``DesPolicy`` that keeps heap scheduling, generator
 * resumption, and the exact-type charge/op-apply dispatch native while
 * calling out to Python at every observation point — scheduler hooks,
 * the ``CostModel`` audit tap (filled natively when it is exactly
 * ``OpCostAudit``, delegated to ``cost.charge`` for custom taps), and
 * the ``alloc_stats`` collector.  Unlike the fast lane it writes task
 * state (clock, steps, pending value/exc) and the global step counter
 * through to the Python attributes after every op, so hooks observe
 * exactly the state the pure-Python loop would show them.
 *
 * What is NOT compiled: the algorithms themselves (channel/baseline
 * generators stay pure Python and are resumed via ``gen.send``), every
 * non-default scheduling policy, the processors binding logic
 * (delegated back to ``Scheduler._bind`` / ``_unbind`` /
 * ``_make_runnable``), and the unknown-op fallback (which round-trips
 * through ``CostModel.charge`` + ``Scheduler._dispatch`` exactly like
 * the Python loops do).
 *
 * Object access: every hot attribute lives in a ``__slots__`` member.
 * ``configure()`` resolves each slot's member-descriptor offset once and
 * validates it is a plain ``T_OBJECT_EX`` member; reads/writes are then a
 * single pointer indirection.  If any layout assumption fails, configure()
 * raises and the Python side silently stays on the reference tier.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <math.h>

#if PY_VERSION_HEX >= 0x030c0000
/* 3.12 renamed the member-type constants; the legacy names remain as
 * aliases via structmember.h, but be explicit about what we accept. */
#ifndef T_OBJECT_EX
#define T_OBJECT_EX Py_T_OBJECT_EX
#endif
#endif

#define LCG_A 6364136223846793005ULL
#define LCG_C 1442695040888963407ULL

/* ------------------------------------------------------------------ */
/* configured state                                                    */
/* ------------------------------------------------------------------ */

typedef struct {
    /* op types (exact-type dispatch, like ``type(op) is Read``) */
    PyObject *tp_read, *tp_write, *tp_cas, *tp_faa, *tp_gas;
    PyObject *tp_work, *tp_yield, *tp_spin, *tp_park, *tp_unpark;
    PyObject *tp_current, *tp_alloc, *tp_label, *tp_sampledwork;
    /* cell types for CAS comparison semantics */
    PyObject *tp_refcell, *tp_intcell;
    /* the canonical sampler type (native draw) and the audit tap type */
    PyObject *tp_geowork, *tp_audit;
    /* TaskState members (enum singletons, compared by identity) */
    PyObject *st_runnable, *st_parked, *st_done, *st_failed;
    /* exception classes */
    PyObject *exc_interrupted, *exc_retry, *exc_deadlock, *exc_steplimit;

    /* slot offsets */
    Py_ssize_t t_tid, t_name, t_gen, t_send_fn, t_state, t_clock, t_steps;
    Py_ssize_t t_pending_value, t_pending_exc;
    Py_ssize_t t_unpark_pending, t_interrupt_pending, t_retry_pending;
    Py_ssize_t t_value, t_error, t_cache, t_park_count;
    Py_ssize_t c_value, c_line;
    Py_ssize_t l_loc_id, l_last_writer, l_write_time, l_avail_time;
    Py_ssize_t op_read_cell;
    Py_ssize_t op_write_cell, op_write_value;
    Py_ssize_t op_cas_cell, op_cas_expected, op_cas_update;
    Py_ssize_t op_faa_cell, op_faa_delta;
    Py_ssize_t op_gas_cell, op_gas_value;
    Py_ssize_t op_work_cycles;
    Py_ssize_t op_unpark_task, op_unpark_interrupt, op_unpark_retry;
    Py_ssize_t op_sw_sampler;
    Py_ssize_t op_alloc_tag, op_alloc_units;
    Py_ssize_t gw_mean, gw_randf, gw_log1mp;
    Py_ssize_t a_cell, a_stall, a_miss, a_base;
    Py_ssize_t cm_audit;

    int ready;
} engine_state;

static engine_state S;

/* interned attribute-name strings */
static PyObject *s_live, *s_heap, *s_cost, *s_policy, *s_p, *s_lcg;
static PyObject *s_processors, *s_unbound, *s_max_steps, *s_total_steps;
static PyObject *s_tasks, *s_bind, *s_unbind, *s_make_runnable, *s_dispatch;
static PyObject *s_charge, *s_popleft, *s_throw, *s_value, *s_compare;
static PyObject *s_read_hit, *s_write, *s_rmw, *s_remote_miss, *s_read_miss;
static PyObject *s_park, *s_unpark, *s_wake_latency, *s_spin, *s_yield_;
static PyObject *s_alloc, *s_jitter, *s_clock, *s_pending_value_str;
static PyObject *s_hooks, *s_alloc_stats, *s_record, *s_forget, *s_sample;

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* Read a slot that the reference implementation guarantees is set. */
static inline PyObject *
slot_get(PyObject *obj, Py_ssize_t off)
{
    PyObject *v = SLOT(obj, off);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "engine: unset __slots__ member");
    }
    return v; /* borrowed */
}

static inline void
slot_set(PyObject *obj, Py_ssize_t off, PyObject *v)
{
    PyObject *old = SLOT(obj, off);
    Py_INCREF(v);
    SLOT(obj, off) = v;
    Py_XDECREF(old);
}

static inline int
as_i64(PyObject *o, int64_t *out)
{
    long long v = PyLong_AsLongLong(o);
    if (v == -1 && PyErr_Occurred()) {
        return -1;
    }
    *out = (int64_t)v;
    return 0;
}

static inline int
set_slot_i64(PyObject *obj, Py_ssize_t off, int64_t v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (o == NULL) {
        return -1;
    }
    slot_set(obj, off, o);
    Py_DECREF(o);
    return 0;
}

static inline int
set_attr_i64(PyObject *obj, PyObject *name, int64_t v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (o == NULL) {
        return -1;
    }
    int rc = PyObject_SetAttr(obj, name, o);
    Py_DECREF(o);
    return rc;
}

/* ------------------------------------------------------------------ */
/* heapq transcription                                                 */
/* ------------------------------------------------------------------ */

/* Entries are ``(clock, tid, task)`` or the wide stint form
 * ``(clock, tid, task, steps, value, exc)``.  Comparison never reaches
 * past ``tid`` in practice (tids are unique); if it ever would — equal
 * clock AND tid — we delegate to full-tuple rich comparison so the
 * result (including a TypeError on comparing Task objects) is exactly
 * what the pure-Python heapq would produce. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b)
        && PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        int64_t ac, bc;
        if (as_i64(PyTuple_GET_ITEM(a, 0), &ac) == 0
            && as_i64(PyTuple_GET_ITEM(b, 0), &bc) == 0) {
            if (ac != bc) {
                return ac < bc;
            }
            int64_t at, bt;
            if (as_i64(PyTuple_GET_ITEM(a, 1), &at) == 0
                && as_i64(PyTuple_GET_ITEM(b, 1), &bt) == 0) {
                if (at != bt) {
                    return at < bt;
                }
            }
            else {
                PyErr_Clear();
            }
        }
        else {
            PyErr_Clear();
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* heapq._siftdown: move heap[pos] toward the root. */
static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = entry_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt) {
            break;
        }
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent); /* steals parent ref */
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem); /* steals newitem ref */
    return 0;
}

/* heapq._siftup: move the hole at pos down to a leaf, then sift down. */
static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = entry_lt(PyList_GET_ITEM(heap, childpos),
                              PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt) {
                childpos = rightpos;
            }
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

/* Returns a new reference, or NULL on error (heap must be non-empty). */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) == 0) {
        return lastelt;
    }
    PyObject *returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    PyList_SetItem(heap, 0, lastelt); /* steals lastelt */
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

/* heappushpop(heap, item): new reference to the resulting minimum. */
static PyObject *
heap_pushpop(PyObject *heap, PyObject *item)
{
    if (PyList_GET_SIZE(heap) > 0) {
        PyObject *top = PyList_GET_ITEM(heap, 0);
        int lt = entry_lt(top, item);
        if (lt < 0) {
            return NULL;
        }
        if (lt) {
            Py_INCREF(top);
            Py_INCREF(item);
            PyList_SetItem(heap, 0, item); /* steals item copy */
            if (heap_siftup(heap, 0) < 0) {
                Py_DECREF(top);
                return NULL;
            }
            return top;
        }
    }
    Py_INCREF(item);
    return item;
}

/* heappush(heap, item). */
static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0) {
        return -1;
    }
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* ------------------------------------------------------------------ */
/* configure()                                                         */
/* ------------------------------------------------------------------ */

static int
resolve_slot(PyObject *cls, const char *name, Py_ssize_t *out)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    if (descr == NULL) {
        return -1;
    }
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_RuntimeError,
                     "engine layout mismatch: %s.%s is not a __slots__ member",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    PyMemberDef *def = ((PyMemberDescrObject *)descr)->d_member;
    if (def->type != T_OBJECT_EX || def->flags != 0) {
        PyErr_Format(PyExc_RuntimeError,
                     "engine layout mismatch: %s.%s has unexpected member kind",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    *out = def->offset;
    Py_DECREF(descr);
    return 0;
}

static PyObject *
grab(PyObject *cfg, const char *key)
{
    PyObject *v = PyDict_GetItemString(cfg, key); /* borrowed */
    if (v == NULL) {
        PyErr_Format(PyExc_KeyError, "engine configure: missing %s", key);
        return NULL;
    }
    Py_INCREF(v);
    return v;
}

static PyObject *
engine_configure(PyObject *self, PyObject *cfg)
{
    (void)self;
    if (!PyDict_Check(cfg)) {
        PyErr_SetString(PyExc_TypeError, "configure() expects a dict");
        return NULL;
    }
    S.ready = 0;

#define GRAB(field, key)                          \
    do {                                          \
        Py_XDECREF(S.field);                      \
        S.field = grab(cfg, key);                 \
        if (S.field == NULL) return NULL;         \
    } while (0)

    GRAB(tp_read, "Read");
    GRAB(tp_write, "Write");
    GRAB(tp_cas, "Cas");
    GRAB(tp_faa, "Faa");
    GRAB(tp_gas, "GetAndSet");
    GRAB(tp_work, "Work");
    GRAB(tp_yield, "Yield");
    GRAB(tp_spin, "Spin");
    GRAB(tp_park, "ParkTask");
    GRAB(tp_unpark, "UnparkTask");
    GRAB(tp_current, "CurrentTask");
    GRAB(tp_alloc, "Alloc");
    GRAB(tp_label, "Label");
    GRAB(tp_sampledwork, "SampledWork");
    GRAB(tp_refcell, "RefCell");
    GRAB(tp_intcell, "IntCell");
    GRAB(tp_geowork, "GeometricWork");
    GRAB(tp_audit, "OpCostAudit");
    GRAB(st_runnable, "RUNNABLE");
    GRAB(st_parked, "PARKED");
    GRAB(st_done, "DONE");
    GRAB(st_failed, "FAILED");
    GRAB(exc_interrupted, "Interrupted");
    GRAB(exc_retry, "RetryWakeup");
    GRAB(exc_deadlock, "DeadlockError");
    GRAB(exc_steplimit, "StepLimitExceeded");
#undef GRAB

    PyObject *task_cls = PyDict_GetItemString(cfg, "Task");
    PyObject *cell_cls = PyDict_GetItemString(cfg, "Cell");
    PyObject *line_cls = PyDict_GetItemString(cfg, "CacheLine");
    PyObject *cm_cls = PyDict_GetItemString(cfg, "CostModel");
    if (task_cls == NULL || cell_cls == NULL || line_cls == NULL
        || cm_cls == NULL) {
        PyErr_SetString(PyExc_KeyError,
                        "engine configure: missing Task/Cell/CacheLine/CostModel");
        return NULL;
    }

#define RS(cls, name, field)                              \
    if (resolve_slot(cls, name, &S.field) < 0) return NULL
    RS(task_cls, "tid", t_tid);
    RS(task_cls, "name", t_name);
    RS(task_cls, "gen", t_gen);
    RS(task_cls, "send_fn", t_send_fn);
    RS(task_cls, "state", t_state);
    RS(task_cls, "clock", t_clock);
    RS(task_cls, "steps", t_steps);
    RS(task_cls, "pending_value", t_pending_value);
    RS(task_cls, "pending_exc", t_pending_exc);
    RS(task_cls, "unpark_pending", t_unpark_pending);
    RS(task_cls, "interrupt_pending", t_interrupt_pending);
    RS(task_cls, "retry_pending", t_retry_pending);
    RS(task_cls, "value", t_value);
    RS(task_cls, "error", t_error);
    RS(task_cls, "cache", t_cache);
    RS(task_cls, "park_count", t_park_count);
    RS(cell_cls, "value", c_value);
    RS(cell_cls, "line", c_line);
    RS(line_cls, "loc_id", l_loc_id);
    RS(line_cls, "last_writer", l_last_writer);
    RS(line_cls, "write_time", l_write_time);
    RS(line_cls, "avail_time", l_avail_time);
    RS(S.tp_read, "cell", op_read_cell);
    RS(S.tp_write, "cell", op_write_cell);
    RS(S.tp_write, "value", op_write_value);
    RS(S.tp_cas, "cell", op_cas_cell);
    RS(S.tp_cas, "expected", op_cas_expected);
    RS(S.tp_cas, "update", op_cas_update);
    RS(S.tp_faa, "cell", op_faa_cell);
    RS(S.tp_faa, "delta", op_faa_delta);
    RS(S.tp_gas, "cell", op_gas_cell);
    RS(S.tp_gas, "value", op_gas_value);
    RS(S.tp_work, "cycles", op_work_cycles);
    RS(S.tp_unpark, "task", op_unpark_task);
    RS(S.tp_unpark, "interrupt", op_unpark_interrupt);
    RS(S.tp_unpark, "retry", op_unpark_retry);
    RS(S.tp_sampledwork, "sampler", op_sw_sampler);
    RS(S.tp_alloc, "tag", op_alloc_tag);
    RS(S.tp_alloc, "units", op_alloc_units);
    RS(S.tp_geowork, "mean", gw_mean);
    RS(S.tp_geowork, "_randf", gw_randf);
    RS(S.tp_geowork, "_log1mp", gw_log1mp);
    RS(S.tp_audit, "cell", a_cell);
    RS(S.tp_audit, "stall", a_stall);
    RS(S.tp_audit, "miss", a_miss);
    RS(S.tp_audit, "base", a_base);
    RS(cm_cls, "_audit", cm_audit);
#undef RS

    S.ready = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* run_fast()                                                          */
/* ------------------------------------------------------------------ */

/* Read an int attribute (through normal attribute lookup — cold path). */
static int
attr_i64(PyObject *obj, PyObject *name, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) {
        return -1;
    }
    int rc = as_i64(v, out);
    Py_DECREF(v);
    return rc;
}

static int
live_count(PyObject *sched, int64_t *out)
{
    return attr_i64(sched, s_live, out);
}

static int
live_add(PyObject *sched, long delta)
{
    int64_t live;
    if (live_count(sched, &live) < 0) {
        return -1;
    }
    PyObject *nv = PyLong_FromLongLong(live + delta);
    if (nv == NULL) {
        return -1;
    }
    int rc = PyObject_SetAttr(sched, s_live, nv);
    Py_DECREF(nv);
    return rc;
}

/* Call ``self.<meth>(arg)`` discarding the result (vectorcall). */
static int
call_method1(PyObject *obj, PyObject *meth, PyObject *arg)
{
    PyObject *args[2] = {obj, arg};
    PyObject *r = PyObject_VectorcallMethod(
        meth, args, 2 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
    if (r == NULL) {
        return -1;
    }
    Py_DECREF(r);
    return 0;
}

/* Draw one cycle count from ``op.sampler``, bit-exact to
 * ``GeometricWork.sample()``: for the canonical sampler the uniform
 * variate comes from the cached ``rng.random`` bound method (the same
 * Mersenne-Twister stream Python would consume) and the inverse-CDF
 * transform runs in libm — CPython's ``math.log`` is the same ``log``,
 * so the doubles (and the truncation to int) are identical.  Foreign
 * samplers fall back to calling ``sample()``. */
static int
sampled_work_draw(PyObject *op, int64_t *out)
{
    PyObject *sampler = slot_get(op, S.op_sw_sampler);
    if (sampler == NULL) {
        return -1;
    }
    if ((PyObject *)Py_TYPE(sampler) == S.tp_geowork) {
        PyObject *mean_obj = slot_get(sampler, S.gw_mean);
        int64_t mean;
        if (mean_obj == NULL || as_i64(mean_obj, &mean) < 0) {
            return -1;
        }
        if (mean == 0) {
            *out = 0;
            return 0;
        }
        PyObject *randf = slot_get(sampler, S.gw_randf);
        if (randf == NULL) {
            return -1;
        }
        PyObject *u_obj = PyObject_CallNoArgs(randf);
        if (u_obj == NULL) {
            return -1;
        }
        double u = PyFloat_AsDouble(u_obj);
        Py_DECREF(u_obj);
        if (u == -1.0 && PyErr_Occurred()) {
            return -1;
        }
        PyObject *l_obj = slot_get(sampler, S.gw_log1mp);
        if (l_obj == NULL) {
            return -1;
        }
        double log1mp = PyFloat_AsDouble(l_obj);
        if (log1mp == -1.0 && PyErr_Occurred()) {
            return -1;
        }
        if (u < 1e-12) {
            u = 1e-12;
        }
        *out = (int64_t)(log(u) / log1mp);
        return 0;
    }
    PyObject *r = PyObject_VectorcallMethod(
        s_sample, &sampler, 1 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
    if (r == NULL) {
        return -1;
    }
    int rc = as_i64(r, out);
    Py_DECREF(r);
    return rc;
}

/* Fill the attached OpCostAudit exactly like the audited handlers do. */
static int
audit_fill(PyObject *audit, PyObject *cell, int64_t stall, int64_t miss,
           int64_t base)
{
    slot_set(audit, S.a_cell, cell);
    if (set_slot_i64(audit, S.a_stall, stall) < 0) {
        return -1;
    }
    if (set_slot_i64(audit, S.a_miss, miss) < 0) {
        return -1;
    }
    return set_slot_i64(audit, S.a_base, base);
}

/* The cost-model jitter draw: advance the LCG, return a bounded sample. */
static inline int64_t
jitter_draw(uint64_t *lcg, int64_t bound_plus1)
{
    *lcg = *lcg * LCG_A + LCG_C;
    return (int64_t)((*lcg >> 33) % (uint64_t)bound_plus1);
}

/* Mark the running task finished (DONE/FAILED bookkeeping shared path). */
static int
finish_task(PyObject *sched, PyObject *task, PyObject *state,
            int64_t tclock, int64_t tsteps, int procs_enabled)
{
    slot_set(task, S.t_state, state);
    PyObject *c = PyLong_FromLongLong(tclock);
    PyObject *st = PyLong_FromLongLong(tsteps);
    if (c == NULL || st == NULL) {
        Py_XDECREF(c);
        Py_XDECREF(st);
        return -1;
    }
    slot_set(task, S.t_clock, c);
    slot_set(task, S.t_steps, st);
    Py_DECREF(c);
    Py_DECREF(st);
    slot_set(task, S.t_pending_value, Py_None);
    slot_set(task, S.t_pending_exc, Py_None);
    if (live_add(sched, -1) < 0) {
        return -1;
    }
    if (procs_enabled && call_method1(sched, s_unbind, task) < 0) {
        return -1;
    }
    return 0;
}

static void
raise_step_limit(int64_t limit)
{
    PyObject *lim = PyLong_FromLongLong(limit);
    if (lim != NULL) {
        PyErr_SetObject(S.exc_steplimit, lim);
        Py_DECREF(lim);
    }
}

static PyObject *
engine_run_fast(PyObject *self, PyObject *sched)
{
    (void)self;
    if (!S.ready) {
        PyErr_SetString(PyExc_RuntimeError, "engine not configured");
        return NULL;
    }

    PyObject *cost = NULL, *policy = NULL, *heap = NULL, *params = NULL;
    PyObject *unbound = NULL, *procs_obj = NULL, *tasks_list = NULL;
    PyObject *pending = NULL;
    PyObject *result = NULL;
    int failed = 1;
    int engaged = 0; /* set once steps/lcg are loaded; gates the finally-sync */

    cost = PyObject_GetAttr(sched, s_cost);
    if (cost == NULL) goto cleanup;
    policy = PyObject_GetAttr(sched, s_policy);
    if (policy == NULL) goto cleanup;
    heap = PyObject_GetAttr(policy, s_heap);
    if (heap == NULL || !PyList_CheckExact(heap)) {
        if (heap != NULL) {
            PyErr_SetString(PyExc_TypeError, "engine: policy._heap is not a list");
        }
        goto cleanup;
    }
    params = PyObject_GetAttr(cost, s_p);
    if (params == NULL) goto cleanup;
    unbound = PyObject_GetAttr(sched, s_unbound);
    if (unbound == NULL) goto cleanup;
    procs_obj = PyObject_GetAttr(sched, s_processors);
    if (procs_obj == NULL) goto cleanup;
    tasks_list = PyObject_GetAttr(sched, s_tasks);
    if (tasks_list == NULL) goto cleanup;
    if (!PyList_CheckExact(tasks_list)) {
        PyErr_SetString(PyExc_TypeError, "engine: scheduler.tasks is not a list");
        goto cleanup;
    }
    int procs_enabled = (procs_obj != Py_None);

    int64_t read_hit, write_cost, rmw_cost, remote_miss, read_miss;
    int64_t park_cost, unpark_cost, wake_latency, spin_cost, yield_cost;
    int64_t alloc_cost, jit, limit, steps;
    if (attr_i64(params, s_read_hit, &read_hit) < 0) goto cleanup;
    if (attr_i64(params, s_write, &write_cost) < 0) goto cleanup;
    if (attr_i64(params, s_rmw, &rmw_cost) < 0) goto cleanup;
    if (attr_i64(params, s_remote_miss, &remote_miss) < 0) goto cleanup;
    if (attr_i64(params, s_read_miss, &read_miss) < 0) goto cleanup;
    if (attr_i64(params, s_park, &park_cost) < 0) goto cleanup;
    if (attr_i64(params, s_unpark, &unpark_cost) < 0) goto cleanup;
    if (attr_i64(params, s_wake_latency, &wake_latency) < 0) goto cleanup;
    if (attr_i64(params, s_spin, &spin_cost) < 0) goto cleanup;
    if (attr_i64(params, s_yield_, &yield_cost) < 0) goto cleanup;
    if (attr_i64(params, s_alloc, &alloc_cost) < 0) goto cleanup;
    if (attr_i64(params, s_jitter, &jit) < 0) goto cleanup;
    if (attr_i64(sched, s_max_steps, &limit) < 0) goto cleanup;
    if (attr_i64(sched, s_total_steps, &steps) < 0) goto cleanup;
    int64_t jit1 = jit + 1, rm1 = remote_miss + 1, rd1 = read_miss + 1;

    uint64_t lcg = 0;
    {
        PyObject *l = PyObject_GetAttr(cost, s_lcg);
        if (l == NULL) goto cleanup;
        lcg = PyLong_AsUnsignedLongLong(l);
        Py_DECREF(l);
        if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto cleanup;
    }
    engaged = 1;

    /* ---------------- outer loop: one stint per iteration ------------ */
    for (;;) {
        int64_t live;
        if (live_count(sched, &live) < 0) goto cleanup;
        if (live <= 0) break;

        /* -- policy.next(), inlined ----------------------------------- */
        PyObject *entry = NULL;
        if (pending != NULL) {
            PyObject *e;
            if (PyList_GET_SIZE(heap) > 0) {
                e = heap_pushpop(heap, pending);
            }
            else {
                e = pending;
                Py_INCREF(e);
            }
            Py_CLEAR(pending);
            if (e == NULL) goto cleanup;
            PyObject *t = PyTuple_GET_ITEM(e, 2);
            int64_t tc, ec;
            PyObject *tco = slot_get(t, S.t_clock);
            if (tco == NULL) { Py_DECREF(e); goto cleanup; }
            if (as_i64(tco, &tc) < 0 || as_i64(PyTuple_GET_ITEM(e, 0), &ec) < 0) {
                Py_DECREF(e);
                goto cleanup;
            }
            if (SLOT(t, S.t_state) == S.st_runnable && tc == ec) {
                entry = e;
            }
            else {
                Py_DECREF(e);
            }
        }
        if (entry == NULL) {
            while (PyList_GET_SIZE(heap) > 0) {
                PyObject *e = heap_pop(heap);
                if (e == NULL) goto cleanup;
                PyObject *t = PyTuple_GET_ITEM(e, 2);
                int64_t tc, ec;
                PyObject *tco = slot_get(t, S.t_clock);
                if (tco == NULL) { Py_DECREF(e); goto cleanup; }
                if (as_i64(tco, &tc) < 0 || as_i64(PyTuple_GET_ITEM(e, 0), &ec) < 0) {
                    Py_DECREF(e);
                    goto cleanup;
                }
                if (SLOT(t, S.t_state) != S.st_runnable || tc != ec) {
                    Py_DECREF(e); /* stale entry; a fresher one exists */
                    continue;
                }
                entry = e;
                break;
            }
        }
        if (entry == NULL) {
            int has_unbound = PyObject_IsTrue(unbound);
            if (has_unbound < 0) goto cleanup;
            if (has_unbound) { /* defensive: bind and keep going */
                PyObject *t = PyObject_CallMethodObjArgs(unbound, s_popleft, NULL);
                if (t == NULL) goto cleanup;
                int rc = call_method1(sched, s_bind, t);
                Py_DECREF(t);
                if (rc < 0) goto cleanup;
                continue;
            }
            /* deadlock check over all tasks */
            PyObject *parked = PyList_New(0);
            if (parked == NULL) goto cleanup;
            Py_ssize_t ntasks = PyList_GET_SIZE(tasks_list);
            for (Py_ssize_t i = 0; i < ntasks; i++) {
                PyObject *t = PyList_GET_ITEM(tasks_list, i);
                if (SLOT(t, S.t_state) == S.st_parked) {
                    PyObject *nm = slot_get(t, S.t_name);
                    if (nm == NULL || PyList_Append(parked, nm) < 0) {
                        Py_DECREF(parked);
                        goto cleanup;
                    }
                }
            }
            if (PyList_GET_SIZE(parked) > 0) {
                PyErr_SetObject(S.exc_deadlock, parked);
                Py_DECREF(parked);
                goto cleanup;
            }
            Py_DECREF(parked);
            break; /* spawned nothing / all finished */
        }

        /* -- stint setup ---------------------------------------------- */
        PyObject *task = PyTuple_GET_ITEM(entry, 2);
        Py_INCREF(task);
        PyObject *gen = slot_get(task, S.t_gen);           /* borrowed */
        PyObject *send = slot_get(task, S.t_send_fn);      /* borrowed */
        PyObject *tid_obj = slot_get(task, S.t_tid);       /* borrowed */
        PyObject *tcache = slot_get(task, S.t_cache);      /* borrowed */
        if (gen == NULL || send == NULL || tid_obj == NULL || tcache == NULL) {
            Py_DECREF(task);
            Py_DECREF(entry);
            goto cleanup;
        }
        int64_t ttid, tclock, tsteps;
        PyObject *send_value = NULL; /* owned or NULL (= None) */
        PyObject *throw_exc = NULL;  /* owned or NULL (= no exception) */
        {
            PyObject *tco = slot_get(task, S.t_clock);
            if (tco == NULL || as_i64(tid_obj, &ttid) < 0 || as_i64(tco, &tclock) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
        }
        if (PyTuple_GET_SIZE(entry) == 6) {
            if (as_i64(PyTuple_GET_ITEM(entry, 3), &tsteps) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            send_value = PyTuple_GET_ITEM(entry, 4);
            Py_INCREF(send_value);
            PyObject *e5 = PyTuple_GET_ITEM(entry, 5);
            if (e5 != Py_None) {
                throw_exc = e5;
                Py_INCREF(throw_exc);
            }
        }
        else {
            PyObject *ts = slot_get(task, S.t_steps);
            if (ts == NULL || as_i64(ts, &tsteps) < 0) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            send_value = slot_get(task, S.t_pending_value);
            if (send_value == NULL) {
                Py_DECREF(task);
                Py_DECREF(entry);
                goto cleanup;
            }
            Py_INCREF(send_value);
            PyObject *pe = SLOT(task, S.t_pending_exc);
            if (pe != NULL && pe != Py_None) {
                throw_exc = pe;
                Py_INCREF(throw_exc);
            }
        }
        Py_DECREF(entry);

        int64_t next_clock = INT64_MAX;
        if (PyList_GET_SIZE(heap) > 0) {
            if (as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0), &next_clock) < 0) {
                Py_XDECREF(send_value);
                Py_XDECREF(throw_exc);
                Py_DECREF(task);
                goto cleanup;
            }
        }

        /* -- inner loop: one op per iteration ------------------------- */
        int stint_error = 0;
        for (;;) {
            steps += 1;
            PyObject *op;
            if (throw_exc != NULL) {
                PyObject *exc = throw_exc;
                PyObject *targs[2] = {gen, exc};
                throw_exc = NULL;
                op = PyObject_VectorcallMethod(
                    s_throw, targs, 2 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                Py_DECREF(exc);
            }
            else {
                PyObject *value = send_value; /* may be NULL = None */
                send_value = NULL;
                op = PyObject_CallOneArg(send, value ? value : Py_None);
                Py_XDECREF(value);
            }
            if (op == NULL) {
                /* task completed or failed */
                PyObject *ptype, *pvalue, *ptb;
                PyErr_Fetch(&ptype, &pvalue, &ptb);
                PyErr_NormalizeException(&ptype, &pvalue, &ptb);
                if (ptb != NULL && pvalue != NULL) {
                    PyException_SetTraceback(pvalue, ptb);
                }
                int is_stop = (ptype != NULL
                               && PyErr_GivenExceptionMatches(ptype, PyExc_StopIteration));
                if (is_stop) {
                    PyObject *retval = pvalue
                        ? PyObject_GetAttr(pvalue, s_value)
                        : Py_NewRef(Py_None);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                    if (retval == NULL) {
                        stint_error = 1;
                        break;
                    }
                    slot_set(task, S.t_value, retval);
                    Py_DECREF(retval);
                    if (finish_task(sched, task, S.st_done, tclock, tsteps,
                                    procs_enabled) < 0) {
                        stint_error = 1;
                        break;
                    }
                }
                else if (pvalue != NULL) {
                    slot_set(task, S.t_error, pvalue);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                    if (finish_task(sched, task, S.st_failed, tclock, tsteps,
                                    procs_enabled) < 0) {
                        stint_error = 1;
                        break;
                    }
                }
                else {
                    /* send() returned NULL without an exception set */
                    PyErr_Restore(ptype, pvalue, ptb);
                    if (!PyErr_Occurred()) {
                        PyErr_SetString(PyExc_SystemError,
                                        "engine: generator returned NULL without error");
                    }
                    stint_error = 1;
                    break;
                }
                if (steps > limit) {
                    raise_step_limit(limit);
                    stint_error = 1;
                }
                break;
            }
            tsteps += 1;
            PyObject *tp = (PyObject *)Py_TYPE(op);

            /* -- cost.charge + apply_memory_op, fused ----------------- */
            if (tp == S.tp_read) {
                PyObject *cell = slot_get(op, S.op_read_cell);
                PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                if (line == NULL) goto op_error;
                int64_t base = jit ? read_hit + jitter_draw(&lcg, jit1) : read_hit;
                PyObject *lw = SLOT(line, S.l_last_writer);
                int64_t lwv = -1;
                if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0) goto op_error;
                if (lw != NULL && lw != Py_None && lwv != ttid) {
                    PyObject *loc = slot_get(line, S.l_loc_id);
                    PyObject *wt_obj = loc ? slot_get(line, S.l_write_time) : NULL;
                    if (wt_obj == NULL) goto op_error;
                    int64_t wt, seen = -1;
                    if (as_i64(wt_obj, &wt) < 0) goto op_error;
                    PyObject *seen_obj = PyDict_GetItemWithError(tcache, loc);
                    if (seen_obj == NULL && PyErr_Occurred()) goto op_error;
                    if (seen_obj != NULL && as_i64(seen_obj, &seen) < 0) goto op_error;
                    if (wt > seen) {
                        int64_t miss = read_miss;
                        if (jit && read_miss) {
                            miss += jitter_draw(&lcg, rd1);
                        }
                        if (PyDict_SetItem(tcache, loc, wt_obj) < 0) goto op_error;
                        /* A read cannot complete before the owning
                         * writer's store retires. */
                        PyObject *av_obj = slot_get(line, S.l_avail_time);
                        int64_t avail;
                        if (av_obj == NULL || as_i64(av_obj, &avail) < 0) goto op_error;
                        if (avail > tclock) {
                            tclock = avail;
                        }
                        tclock += base + miss;
                    }
                    else {
                        tclock += base;
                    }
                }
                else {
                    tclock += base;
                }
                send_value = slot_get(cell, S.c_value);
                if (send_value == NULL) goto op_error;
                Py_INCREF(send_value);
            }
            else if (tp == S.tp_faa || tp == S.tp_cas || tp == S.tp_gas
                     || tp == S.tp_write) {
                Py_ssize_t cell_off =
                    tp == S.tp_faa ? S.op_faa_cell :
                    tp == S.tp_cas ? S.op_cas_cell :
                    tp == S.tp_gas ? S.op_gas_cell : S.op_write_cell;
                PyObject *cell = slot_get(op, cell_off);
                PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                if (line == NULL) goto op_error;
                int64_t start = tclock;
                {
                    PyObject *at_obj = slot_get(line, S.l_avail_time);
                    int64_t at;
                    if (at_obj == NULL || as_i64(at_obj, &at) < 0) goto op_error;
                    if (at > start) {
                        start = at;
                    }
                }
                int64_t base = jit ? jitter_draw(&lcg, jit1) : 0;
                base += (tp == S.tp_write) ? write_cost : rmw_cost;
                PyObject *lw = SLOT(line, S.l_last_writer);
                int64_t end, lwv = -1;
                if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0) goto op_error;
                if (lw != NULL && lw != Py_None && lwv != ttid) {
                    int64_t miss = remote_miss;
                    if (jit && remote_miss) {
                        miss += jitter_draw(&lcg, rm1);
                    }
                    end = start + base + miss;
                }
                else {
                    end = start + base;
                }
                tclock = end;
                {
                    PyObject *end_obj = PyLong_FromLongLong(end);
                    if (end_obj == NULL) goto op_error;
                    slot_set(line, S.l_avail_time, end_obj);
                    slot_set(line, S.l_last_writer, tid_obj);
                    slot_set(line, S.l_write_time, end_obj);
                    PyObject *loc = slot_get(line, S.l_loc_id);
                    if (loc == NULL
                        || PyDict_SetItem(tcache, loc, end_obj) < 0) {
                        Py_DECREF(end_obj);
                        goto op_error;
                    }
                    Py_DECREF(end_obj);
                }
                if (tp == S.tp_faa) {
                    PyObject *old = slot_get(cell, S.c_value);
                    PyObject *delta = old ? slot_get(op, S.op_faa_delta) : NULL;
                    if (delta == NULL) goto op_error;
                    Py_INCREF(old);
                    PyObject *nv = PyNumber_Add(old, delta);
                    if (nv == NULL) {
                        Py_DECREF(old);
                        goto op_error;
                    }
                    slot_set(cell, S.c_value, nv);
                    Py_DECREF(nv);
                    send_value = old;
                }
                else if (tp == S.tp_cas) {
                    PyObject *cur = slot_get(cell, S.c_value);
                    PyObject *expected = cur ? slot_get(op, S.op_cas_expected) : NULL;
                    if (expected == NULL) goto op_error;
                    int eq;
                    PyObject *cell_tp = (PyObject *)Py_TYPE(cell);
                    if (cell_tp == S.tp_refcell) {
                        eq = (cur == expected);
                    }
                    else if (cell_tp == S.tp_intcell) {
                        PyObject *r = PyObject_RichCompare(cur, expected, Py_EQ);
                        if (r == NULL) goto op_error;
                        eq = PyObject_IsTrue(r);
                        Py_DECREF(r);
                        if (eq < 0) goto op_error;
                    }
                    else {
                        /* custom cell subtype: defer to its compare() */
                        PyObject *cmpargs[3] = {cell, cur, expected};
                        PyObject *r = PyObject_VectorcallMethod(
                            s_compare, cmpargs,
                            3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                        if (r == NULL) goto op_error;
                        eq = PyObject_IsTrue(r);
                        Py_DECREF(r);
                        if (eq < 0) goto op_error;
                    }
                    if (eq) {
                        PyObject *update = slot_get(op, S.op_cas_update);
                        if (update == NULL) goto op_error;
                        slot_set(cell, S.c_value, update);
                        send_value = Py_NewRef(Py_True);
                    }
                    else {
                        send_value = Py_NewRef(Py_False);
                    }
                }
                else if (tp == S.tp_write) {
                    PyObject *nv = slot_get(op, S.op_write_value);
                    if (nv == NULL) goto op_error;
                    slot_set(cell, S.c_value, nv);
                    /* resumes with None: send_value stays NULL */
                }
                else { /* GetAndSet */
                    PyObject *old = slot_get(cell, S.c_value);
                    PyObject *nv = old ? slot_get(op, S.op_gas_value) : NULL;
                    if (nv == NULL) goto op_error;
                    Py_INCREF(old);
                    slot_set(cell, S.c_value, nv);
                    send_value = old;
                }
            }
            else if (tp == S.tp_work) {
                PyObject *cyc = slot_get(op, S.op_work_cycles);
                int64_t cycles;
                if (cyc == NULL || as_i64(cyc, &cycles) < 0) goto op_error;
                tclock += cycles;
            }
            else if (tp == S.tp_sampledwork) {
                /* Drawn from the sampler's own RNG stream, not the
                 * jitter LCG; zero draws charge zero cycles. */
                int64_t k;
                if (sampled_work_draw(op, &k) < 0) goto op_error;
                tclock += k;
            }
            else if (tp == S.tp_yield) {
                tclock += yield_cost;
            }
            else if (tp == S.tp_spin) {
                /* DesPolicy.on_voluntary_yield is the base-class no-op */
                tclock += spin_cost;
            }
            else if (tp == S.tp_park) {
                tclock += park_cost;
                PyObject *ip = SLOT(task, S.t_interrupt_pending);
                PyObject *rp = SLOT(task, S.t_retry_pending);
                PyObject *up = SLOT(task, S.t_unpark_pending);
                int ipt = ip ? PyObject_IsTrue(ip) : 0;
                int rpt = rp ? PyObject_IsTrue(rp) : 0;
                int upt = up ? PyObject_IsTrue(up) : 0;
                if (ipt < 0 || rpt < 0 || upt < 0) goto op_error;
                if (ipt) {
                    slot_set(task, S.t_interrupt_pending, Py_False);
                    throw_exc = PyObject_CallNoArgs(S.exc_interrupted);
                    if (throw_exc == NULL) goto op_error;
                }
                else if (rpt) {
                    slot_set(task, S.t_retry_pending, Py_False);
                    throw_exc = PyObject_CallNoArgs(S.exc_retry);
                    if (throw_exc == NULL) goto op_error;
                }
                else if (upt) {
                    slot_set(task, S.t_unpark_pending, Py_False); /* permit consumed */
                }
                else {
                    slot_set(task, S.t_state, S.st_parked);
                    {
                        PyObject *pc = slot_get(task, S.t_park_count);
                        int64_t pcv;
                        if (pc == NULL || as_i64(pc, &pcv) < 0) goto op_error;
                        PyObject *npc = PyLong_FromLongLong(pcv + 1);
                        if (npc == NULL) goto op_error;
                        slot_set(task, S.t_park_count, npc);
                        Py_DECREF(npc);
                    }
                    PyObject *c = PyLong_FromLongLong(tclock);
                    PyObject *st = PyLong_FromLongLong(tsteps);
                    if (c == NULL || st == NULL) {
                        Py_XDECREF(c);
                        Py_XDECREF(st);
                        goto op_error;
                    }
                    slot_set(task, S.t_clock, c);
                    slot_set(task, S.t_steps, st);
                    Py_DECREF(c);
                    Py_DECREF(st);
                    slot_set(task, S.t_pending_value,
                             send_value ? send_value : Py_None);
                    slot_set(task, S.t_pending_exc,
                             throw_exc ? throw_exc : Py_None);
                    Py_DECREF(op);
                    if (procs_enabled && call_method1(sched, s_unbind, task) < 0) {
                        stint_error = 1;
                        break;
                    }
                    if (steps > limit) {
                        raise_step_limit(limit);
                        stint_error = 1;
                    }
                    break;
                }
            }
            else if (tp == S.tp_unpark) {
                tclock += unpark_cost;
                PyObject *target = slot_get(op, S.op_unpark_task);
                if (target == NULL) goto op_error;
                PyObject *oi = slot_get(op, S.op_unpark_interrupt);
                PyObject *orr = oi ? slot_get(op, S.op_unpark_retry) : NULL;
                if (orr == NULL) goto op_error;
                int interrupt = PyObject_IsTrue(oi);
                int retry = PyObject_IsTrue(orr);
                if (interrupt < 0 || retry < 0) goto op_error;
                if (SLOT(target, S.t_state) == S.st_parked) {
                    if (interrupt) {
                        PyObject *e = PyObject_CallNoArgs(S.exc_interrupted);
                        if (e == NULL) goto op_error;
                        slot_set(target, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    else if (retry) {
                        PyObject *e = PyObject_CallNoArgs(S.exc_retry);
                        if (e == NULL) goto op_error;
                        slot_set(target, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    slot_set(target, S.t_state, S.st_runnable);
                    /* cost.wake, inlined */
                    PyObject *tc_obj = slot_get(target, S.t_clock);
                    int64_t wbase;
                    if (tc_obj == NULL || as_i64(tc_obj, &wbase) < 0) goto op_error;
                    if (tclock > wbase) {
                        wbase = tclock;
                    }
                    PyObject *nc = PyLong_FromLongLong(wbase + wake_latency);
                    if (nc == NULL) goto op_error;
                    slot_set(target, S.t_clock, nc);
                    Py_DECREF(nc);
                    if (call_method1(sched, s_make_runnable, target) < 0) goto op_error;
                    /* The fresh entry may now be the earliest. */
                    next_clock = INT64_MAX;
                    if (PyList_GET_SIZE(heap) > 0
                        && as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0),
                                  &next_clock) < 0) goto op_error;
                }
                else if (interrupt) {
                    slot_set(target, S.t_interrupt_pending, Py_True);
                }
                else if (retry) {
                    slot_set(target, S.t_retry_pending, Py_True);
                }
                else {
                    slot_set(target, S.t_unpark_pending, Py_True);
                }
            }
            else if (tp == S.tp_current) {
                send_value = Py_NewRef(task);
            }
            else if (tp == S.tp_alloc) {
                tclock += alloc_cost;
            }
            else if (tp == S.tp_label) {
                /* no effect */
            }
            else {
                /* Unknown op subtype: fall back to the general handlers
                 * (sync task + LCG state around the call), exactly like
                 * the Python fast lane. */
                PyObject *c = PyLong_FromLongLong(tclock);
                if (c == NULL) goto op_error;
                slot_set(task, S.t_clock, c);
                Py_DECREF(c);
                slot_set(task, S.t_pending_value,
                         send_value ? send_value : Py_None);
                Py_CLEAR(send_value);
                PyObject *l = PyLong_FromUnsignedLongLong(lcg);
                if (l == NULL || PyObject_SetAttr(cost, s_lcg, l) < 0) {
                    Py_XDECREF(l);
                    goto op_error;
                }
                Py_DECREF(l);
                PyObject *r;
                {
                    PyObject *fargs[3] = {cost, task, op};
                    r = PyObject_VectorcallMethod(
                        s_charge, fargs, 3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                }
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                {
                    PyObject *fargs[3] = {sched, task, op};
                    r = PyObject_VectorcallMethod(
                        s_dispatch, fargs, 3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                }
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                l = PyObject_GetAttr(cost, s_lcg);
                if (l == NULL) goto op_error;
                lcg = PyLong_AsUnsignedLongLong(l);
                Py_DECREF(l);
                if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto op_error;
                PyObject *tc_obj = slot_get(task, S.t_clock);
                if (tc_obj == NULL || as_i64(tc_obj, &tclock) < 0) goto op_error;
                send_value = slot_get(task, S.t_pending_value);
                if (send_value == NULL) goto op_error;
                Py_INCREF(send_value);
                next_clock = INT64_MAX;
                if (PyList_GET_SIZE(heap) > 0
                    && as_i64(PyTuple_GET_ITEM(PyList_GET_ITEM(heap, 0), 0),
                              &next_clock) < 0) goto op_error;
            }

            if (steps > limit) {
                PyObject *c = PyLong_FromLongLong(tclock);
                PyObject *st = PyLong_FromLongLong(tsteps);
                if (c != NULL && st != NULL) {
                    slot_set(task, S.t_clock, c);
                    slot_set(task, S.t_steps, st);
                    slot_set(task, S.t_pending_value,
                             send_value ? send_value : Py_None);
                    slot_set(task, S.t_pending_exc,
                             throw_exc ? throw_exc : Py_None);
                    raise_step_limit(limit);
                }
                Py_XDECREF(c);
                Py_XDECREF(st);
                Py_DECREF(op);
                stint_error = 1;
                break;
            }

            /* -- keep_running + requeue, inlined ---------------------- */
            if (tclock > next_clock) {
                /* Wide entry: resume state rides in the heap entry. */
                PyObject *c = PyLong_FromLongLong(tclock);
                PyObject *st = PyLong_FromLongLong(tsteps);
                if (c == NULL || st == NULL) {
                    Py_XDECREF(c);
                    Py_XDECREF(st);
                    Py_DECREF(op);
                    stint_error = 1;
                    break;
                }
                slot_set(task, S.t_clock, c);
                PyObject *wide = PyTuple_New(6);
                if (wide == NULL) {
                    Py_DECREF(c);
                    Py_DECREF(st);
                    Py_DECREF(op);
                    stint_error = 1;
                    break;
                }
                PyTuple_SET_ITEM(wide, 0, c);                       /* steals */
                PyTuple_SET_ITEM(wide, 1, Py_NewRef(tid_obj));
                PyTuple_SET_ITEM(wide, 2, Py_NewRef(task));
                PyTuple_SET_ITEM(wide, 3, st);                      /* steals */
                PyTuple_SET_ITEM(wide, 4,
                                 send_value ? send_value : Py_NewRef(Py_None));
                send_value = NULL;                                  /* moved */
                PyTuple_SET_ITEM(wide, 5,
                                 throw_exc ? throw_exc : Py_NewRef(Py_None));
                throw_exc = NULL;                                   /* moved */
                pending = wide;
                Py_DECREF(op);
                break;
            }
            Py_DECREF(op);
            continue;

        op_error:
            Py_DECREF(op);
            stint_error = 1;
            break;
        }

        Py_XDECREF(send_value);
        Py_XDECREF(throw_exc);
        Py_DECREF(task);
        if (stint_error) goto cleanup;
    }

    failed = 0;
    result = Py_NewRef(Py_None);

cleanup:
    /* ``finally:`` — restore global engine state exactly. */
    {
        PyObject *etype = NULL, *evalue = NULL, *etb = NULL;
        if (failed) {
            PyErr_Fetch(&etype, &evalue, &etb);
        }
        if (engaged) {
            PyObject *steps_obj = PyLong_FromLongLong(steps);
            if (steps_obj != NULL) {
                PyObject_SetAttr(sched, s_total_steps, steps_obj);
                Py_DECREF(steps_obj);
            }
            PyObject *lcg_obj = PyLong_FromUnsignedLongLong(lcg);
            if (lcg_obj != NULL) {
                PyObject_SetAttr(cost, s_lcg, lcg_obj);
                Py_DECREF(lcg_obj);
            }
            if (PyErr_Occurred()) {
                /* a sync failure must not mask the original error */
                if (etype != NULL) {
                    PyErr_Clear();
                }
            }
        }
        if (etype != NULL || evalue != NULL || etb != NULL) {
            PyErr_Restore(etype, evalue, etb);
        }
    }
    Py_XDECREF(pending);
    Py_XDECREF(cost);
    Py_XDECREF(policy);
    Py_XDECREF(heap);
    Py_XDECREF(params);
    Py_XDECREF(unbound);
    Py_XDECREF(procs_obj);
    Py_XDECREF(tasks_list);
    return result;
}

/* NOTE: the fused loop intentionally skips ``steps`` sync until the
 * cleanup block above, exactly mirroring the Python fast lane's
 * ``finally`` — observers attach only between runs, never during. */

/* ------------------------------------------------------------------ */
/* run_observed()                                                      */
/* ------------------------------------------------------------------ */

/* The observed-path core: ``_run_general`` + ``_step_task`` +
 * ``DesPolicy`` transcribed, with Python callouts at observation
 * points.  Parity contract (pinned by the hooked-golden tests):
 *
 *   - per-op write-through: ``sched.total_steps`` is stored *before*
 *     the generator resumes (the resumed task can read it, exactly as
 *     in Python), and ``task.clock`` / ``task.steps`` / pending
 *     value/exc are stored before any hook runs;
 *   - the resume clears exactly one of pending_exc / pending_value,
 *     like ``_step_task`` (the other may legitimately stay stale);
 *   - the audit tap is re-read from ``cost._audit`` every op (hooks
 *     may attach or clear it mid-run); a tap that is exactly
 *     ``OpCostAudit`` is filled natively, any other type routes the
 *     whole charge through ``cost.charge`` so duck-typed taps keep
 *     working;
 *   - the jitter LCG lives in a C local but is synced into
 *     ``cost._lcg`` before every Python callout that could read it
 *     (hooks, charge fallback) and re-read afterwards;
 *   - completion calls ``policy.forget(task)`` and does NOT bump
 *     ``task.steps`` or run hooks, exactly like ``_step_task``.
 */
static PyObject *
engine_run_observed(PyObject *self, PyObject *sched)
{
    (void)self;
    if (!S.ready) {
        PyErr_SetString(PyExc_RuntimeError, "engine not configured");
        return NULL;
    }

    PyObject *cost = NULL, *policy = NULL, *heap = NULL, *params = NULL;
    PyObject *unbound = NULL, *procs_obj = NULL, *tasks_list = NULL;
    PyObject *charge_fn = NULL, *dispatch_fn = NULL;
    PyObject *result = NULL;
    int failed = 1;
    int engaged = 0;

    cost = PyObject_GetAttr(sched, s_cost);
    if (cost == NULL) goto cleanup;
    policy = PyObject_GetAttr(sched, s_policy);
    if (policy == NULL) goto cleanup;
    heap = PyObject_GetAttr(policy, s_heap);
    if (heap == NULL || !PyList_CheckExact(heap)) {
        if (heap != NULL) {
            PyErr_SetString(PyExc_TypeError, "engine: policy._heap is not a list");
        }
        goto cleanup;
    }
    params = PyObject_GetAttr(cost, s_p);
    if (params == NULL) goto cleanup;
    unbound = PyObject_GetAttr(sched, s_unbound);
    if (unbound == NULL) goto cleanup;
    procs_obj = PyObject_GetAttr(sched, s_processors);
    if (procs_obj == NULL) goto cleanup;
    tasks_list = PyObject_GetAttr(sched, s_tasks);
    if (tasks_list == NULL) goto cleanup;
    if (!PyList_CheckExact(tasks_list)) {
        PyErr_SetString(PyExc_TypeError, "engine: scheduler.tasks is not a list");
        goto cleanup;
    }
    /* Cached callables for the per-op Python fallback (unknown op types
     * and custom audit taps); the bound methods never change mid-run. */
    charge_fn = PyObject_GetAttr(cost, s_charge);
    if (charge_fn == NULL) goto cleanup;
    dispatch_fn = PyObject_GetAttr(sched, s_dispatch);
    if (dispatch_fn == NULL) goto cleanup;
    int procs_enabled = (procs_obj != Py_None);

    int64_t read_hit, write_cost, rmw_cost, remote_miss, read_miss;
    int64_t park_cost, unpark_cost, wake_latency, spin_cost, yield_cost;
    int64_t alloc_cost, jit, limit, steps;
    if (attr_i64(params, s_read_hit, &read_hit) < 0) goto cleanup;
    if (attr_i64(params, s_write, &write_cost) < 0) goto cleanup;
    if (attr_i64(params, s_rmw, &rmw_cost) < 0) goto cleanup;
    if (attr_i64(params, s_remote_miss, &remote_miss) < 0) goto cleanup;
    if (attr_i64(params, s_read_miss, &read_miss) < 0) goto cleanup;
    if (attr_i64(params, s_park, &park_cost) < 0) goto cleanup;
    if (attr_i64(params, s_unpark, &unpark_cost) < 0) goto cleanup;
    if (attr_i64(params, s_wake_latency, &wake_latency) < 0) goto cleanup;
    if (attr_i64(params, s_spin, &spin_cost) < 0) goto cleanup;
    if (attr_i64(params, s_yield_, &yield_cost) < 0) goto cleanup;
    if (attr_i64(params, s_alloc, &alloc_cost) < 0) goto cleanup;
    if (attr_i64(params, s_jitter, &jit) < 0) goto cleanup;
    if (attr_i64(sched, s_max_steps, &limit) < 0) goto cleanup;
    if (attr_i64(sched, s_total_steps, &steps) < 0) goto cleanup;
    int64_t jit1 = jit + 1, rm1 = remote_miss + 1, rd1 = read_miss + 1;

    uint64_t lcg = 0;
    {
        PyObject *l = PyObject_GetAttr(cost, s_lcg);
        if (l == NULL) goto cleanup;
        lcg = PyLong_AsUnsignedLongLong(l);
        Py_DECREF(l);
        if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto cleanup;
    }
    int lcg_synced = 1; /* cost._lcg currently equals the local */
    engaged = 1;

    /* ---------------- outer loop: one stint per iteration ------------ */
    for (;;) {
        int64_t live;
        if (live_count(sched, &live) < 0) goto cleanup;
        if (live <= 0) break;

        /* -- policy.next(), transcribed ------------------------------- */
        PyObject *task = NULL;
        while (PyList_GET_SIZE(heap) > 0) {
            PyObject *e = heap_pop(heap);
            if (e == NULL) goto cleanup;
            PyObject *t = PyTuple_GET_ITEM(e, 2);
            int64_t tc, ec;
            PyObject *tco = slot_get(t, S.t_clock);
            if (tco == NULL || as_i64(tco, &tc) < 0
                || as_i64(PyTuple_GET_ITEM(e, 0), &ec) < 0) {
                Py_DECREF(e);
                goto cleanup;
            }
            if (SLOT(t, S.t_state) != S.st_runnable || tc != ec) {
                Py_DECREF(e); /* stale entry; a fresher one exists */
                continue;
            }
            if (PyTuple_GET_SIZE(e) == 6) {
                /* Wide stint entry: restore the resume state the fast
                 * lane parked in the entry. */
                slot_set(t, S.t_steps, PyTuple_GET_ITEM(e, 3));
                slot_set(t, S.t_pending_value, PyTuple_GET_ITEM(e, 4));
                slot_set(t, S.t_pending_exc, PyTuple_GET_ITEM(e, 5));
            }
            task = Py_NewRef(t);
            Py_DECREF(e);
            break;
        }
        if (task == NULL) {
            int has_unbound = PyObject_IsTrue(unbound);
            if (has_unbound < 0) goto cleanup;
            if (has_unbound) { /* defensive: bind and keep going */
                PyObject *t = PyObject_CallMethodObjArgs(unbound, s_popleft, NULL);
                if (t == NULL) goto cleanup;
                int rc = call_method1(sched, s_bind, t);
                Py_DECREF(t);
                if (rc < 0) goto cleanup;
                continue;
            }
            /* deadlock check over all tasks */
            PyObject *parked = PyList_New(0);
            if (parked == NULL) goto cleanup;
            Py_ssize_t ntasks = PyList_GET_SIZE(tasks_list);
            for (Py_ssize_t i = 0; i < ntasks; i++) {
                PyObject *t = PyList_GET_ITEM(tasks_list, i);
                if (SLOT(t, S.t_state) == S.st_parked) {
                    PyObject *nm = slot_get(t, S.t_name);
                    if (nm == NULL || PyList_Append(parked, nm) < 0) {
                        Py_DECREF(parked);
                        goto cleanup;
                    }
                }
            }
            if (PyList_GET_SIZE(parked) > 0) {
                PyErr_SetObject(S.exc_deadlock, parked);
                Py_DECREF(parked);
                goto cleanup;
            }
            Py_DECREF(parked);
            break; /* spawned nothing / all finished */
        }

        /* -- stint setup ---------------------------------------------- */
        PyObject *gen = slot_get(task, S.t_gen);           /* borrowed */
        PyObject *send = slot_get(task, S.t_send_fn);      /* borrowed */
        PyObject *tid_obj = slot_get(task, S.t_tid);       /* borrowed */
        PyObject *tcache = slot_get(task, S.t_cache);      /* borrowed */
        int64_t ttid, tclock;
        if (gen == NULL || send == NULL || tid_obj == NULL || tcache == NULL) {
            Py_DECREF(task);
            goto cleanup;
        }
        {
            PyObject *tco = slot_get(task, S.t_clock);
            if (tco == NULL || as_i64(tid_obj, &ttid) < 0
                || as_i64(tco, &tclock) < 0) {
                Py_DECREF(task);
                goto cleanup;
            }
        }

        /* -- inner loop: one _step_task per iteration ----------------- */
        int stint_error = 0;
        while (!stint_error) {
            steps += 1;
            if (set_attr_i64(sched, s_total_steps, steps) < 0) {
                stint_error = 1;
                break;
            }
            PyObject *op = NULL;
            PyObject *pe = SLOT(task, S.t_pending_exc);
            if (pe != NULL && pe != Py_None) {
                Py_INCREF(pe);
                slot_set(task, S.t_pending_exc, Py_None);
                PyObject *targs[2] = {gen, pe};
                op = PyObject_VectorcallMethod(
                    s_throw, targs, 2 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                Py_DECREF(pe);
            }
            else {
                PyObject *val = slot_get(task, S.t_pending_value);
                if (val == NULL) {
                    stint_error = 1;
                    break;
                }
                Py_INCREF(val);
                slot_set(task, S.t_pending_value, Py_None);
                op = PyObject_CallOneArg(send, val);
                Py_DECREF(val);
            }
            if (op == NULL) {
                /* task completed or failed */
                PyObject *ptype, *pvalue, *ptb;
                PyErr_Fetch(&ptype, &pvalue, &ptb);
                PyErr_NormalizeException(&ptype, &pvalue, &ptb);
                if (ptb != NULL && pvalue != NULL) {
                    PyException_SetTraceback(pvalue, ptb);
                }
                int is_stop = (ptype != NULL
                               && PyErr_GivenExceptionMatches(ptype, PyExc_StopIteration));
                if (is_stop) {
                    PyObject *retval = pvalue
                        ? PyObject_GetAttr(pvalue, s_value)
                        : Py_NewRef(Py_None);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                    if (retval == NULL) {
                        stint_error = 1;
                        break;
                    }
                    slot_set(task, S.t_state, S.st_done);
                    slot_set(task, S.t_value, retval);
                    Py_DECREF(retval);
                }
                else if (pvalue != NULL) {
                    slot_set(task, S.t_state, S.st_failed);
                    slot_set(task, S.t_error, pvalue);
                    Py_XDECREF(ptype);
                    Py_XDECREF(pvalue);
                    Py_XDECREF(ptb);
                }
                else {
                    PyErr_Restore(ptype, pvalue, ptb);
                    if (!PyErr_Occurred()) {
                        PyErr_SetString(PyExc_SystemError,
                                        "engine: generator returned NULL without error");
                    }
                    stint_error = 1;
                    break;
                }
                if (live_add(sched, -1) < 0
                    || call_method1(policy, s_forget, task) < 0
                    || (procs_enabled
                        && call_method1(sched, s_unbind, task) < 0)) {
                    stint_error = 1;
                    break;
                }
                if (steps > limit) {
                    raise_step_limit(limit);
                    stint_error = 1;
                }
                break;
            }

            /* task.steps += 1 (write-through; hooks read it) */
            {
                PyObject *ts = slot_get(task, S.t_steps);
                int64_t tsv;
                if (ts == NULL || as_i64(ts, &tsv) < 0) goto op_error;
                if (set_slot_i64(task, S.t_steps, tsv + 1) < 0) goto op_error;
            }

            PyObject *tp = (PyObject *)Py_TYPE(op);
            /* Re-read the audit tap every op: hooks attach/clear it. */
            PyObject *audit = SLOT(cost, S.cm_audit); /* borrowed */
            int audited = 0;
            if (audit != NULL && audit != Py_None) {
                audited = ((PyObject *)Py_TYPE(audit) == S.tp_audit) ? 1 : -1;
            }
            int known = (tp == S.tp_read || tp == S.tp_faa || tp == S.tp_cas
                         || tp == S.tp_gas || tp == S.tp_write
                         || tp == S.tp_work || tp == S.tp_sampledwork
                         || tp == S.tp_yield || tp == S.tp_spin
                         || tp == S.tp_park || tp == S.tp_unpark
                         || tp == S.tp_current || tp == S.tp_alloc
                         || tp == S.tp_label);

            if (!known || audited < 0) {
                /* -- cost.charge + _dispatch via Python --------------- */
                /* task.clock/pending_* attributes are already current
                 * (write-through), so the round-trip is exact. */
                if (!lcg_synced) {
                    PyObject *l = PyLong_FromUnsignedLongLong(lcg);
                    if (l == NULL || PyObject_SetAttr(cost, s_lcg, l) < 0) {
                        Py_XDECREF(l);
                        goto op_error;
                    }
                    Py_DECREF(l);
                    lcg_synced = 1;
                }
                PyObject *r;
                {
                    PyObject *fargs[2] = {task, op};
                    r = PyObject_Vectorcall(charge_fn, fargs, 2, NULL);
                }
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                {
                    PyObject *fargs[2] = {task, op};
                    r = PyObject_Vectorcall(dispatch_fn, fargs, 2, NULL);
                }
                if (r == NULL) goto op_error;
                Py_DECREF(r);
                {
                    PyObject *l = PyObject_GetAttr(cost, s_lcg);
                    if (l == NULL) goto op_error;
                    lcg = PyLong_AsUnsignedLongLong(l);
                    Py_DECREF(l);
                    if (lcg == (uint64_t)-1 && PyErr_Occurred()) goto op_error;
                }
                PyObject *tco = slot_get(task, S.t_clock);
                if (tco == NULL || as_i64(tco, &tclock) < 0) goto op_error;
            }
            else {
                /* -- native fused charge + apply ---------------------- */
                if (audited
                    && !(tp == S.tp_read || tp == S.tp_faa || tp == S.tp_cas
                         || tp == S.tp_gas || tp == S.tp_write)) {
                    /* no-shared-memory op: the _audited wrapper reset */
                    if (audit_fill(audit, Py_None, 0, 0, 0) < 0) goto op_error;
                }
                if (tp == S.tp_read) {
                    PyObject *cell = slot_get(op, S.op_read_cell);
                    PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                    if (line == NULL) goto op_error;
                    int64_t base = read_hit;
                    if (jit) {
                        base += jitter_draw(&lcg, jit1);
                        lcg_synced = 0;
                    }
                    int64_t miss = 0, stall = 0;
                    PyObject *lw = SLOT(line, S.l_last_writer);
                    int64_t lwv = -1;
                    if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0)
                        goto op_error;
                    if (lw != NULL && lw != Py_None && lwv != ttid) {
                        PyObject *loc = slot_get(line, S.l_loc_id);
                        PyObject *wt_obj = loc ? slot_get(line, S.l_write_time) : NULL;
                        if (wt_obj == NULL) goto op_error;
                        int64_t wt, seen = -1;
                        if (as_i64(wt_obj, &wt) < 0) goto op_error;
                        PyObject *seen_obj = PyDict_GetItemWithError(tcache, loc);
                        if (seen_obj == NULL && PyErr_Occurred()) goto op_error;
                        if (seen_obj != NULL && as_i64(seen_obj, &seen) < 0)
                            goto op_error;
                        if (wt > seen) {
                            miss = read_miss;
                            if (jit && read_miss) {
                                miss += jitter_draw(&lcg, rd1);
                                lcg_synced = 0;
                            }
                            if (PyDict_SetItem(tcache, loc, wt_obj) < 0)
                                goto op_error;
                            PyObject *av_obj = slot_get(line, S.l_avail_time);
                            int64_t avail;
                            if (av_obj == NULL || as_i64(av_obj, &avail) < 0)
                                goto op_error;
                            if (avail > tclock) {
                                stall = avail - tclock;
                                tclock = avail;
                            }
                        }
                    }
                    tclock += base + miss;
                    PyObject *v = slot_get(cell, S.c_value);
                    if (v == NULL) goto op_error;
                    slot_set(task, S.t_pending_value, v);
                    if (audited
                        && audit_fill(audit, cell, stall, miss, base) < 0)
                        goto op_error;
                }
                else if (tp == S.tp_faa || tp == S.tp_cas || tp == S.tp_gas
                         || tp == S.tp_write) {
                    Py_ssize_t cell_off =
                        tp == S.tp_faa ? S.op_faa_cell :
                        tp == S.tp_cas ? S.op_cas_cell :
                        tp == S.tp_gas ? S.op_gas_cell : S.op_write_cell;
                    PyObject *cell = slot_get(op, cell_off);
                    PyObject *line = cell ? slot_get(cell, S.c_line) : NULL;
                    if (line == NULL) goto op_error;
                    int64_t start = tclock, stall = 0;
                    {
                        PyObject *at_obj = slot_get(line, S.l_avail_time);
                        int64_t at;
                        if (at_obj == NULL || as_i64(at_obj, &at) < 0)
                            goto op_error;
                        if (at > start) {
                            stall = at - start;
                            start = at;
                        }
                    }
                    int64_t basec = 0;
                    if (jit) {
                        basec = jitter_draw(&lcg, jit1);
                        lcg_synced = 0;
                    }
                    basec += (tp == S.tp_write) ? write_cost : rmw_cost;
                    PyObject *lw = SLOT(line, S.l_last_writer);
                    int64_t end, lwv = -1, miss = 0;
                    if (lw != NULL && lw != Py_None && as_i64(lw, &lwv) < 0)
                        goto op_error;
                    if (lw != NULL && lw != Py_None && lwv != ttid) {
                        miss = remote_miss;
                        if (jit && remote_miss) {
                            miss += jitter_draw(&lcg, rm1);
                            lcg_synced = 0;
                        }
                    }
                    end = start + basec + miss;
                    tclock = end;
                    {
                        PyObject *end_obj = PyLong_FromLongLong(end);
                        if (end_obj == NULL) goto op_error;
                        slot_set(line, S.l_avail_time, end_obj);
                        slot_set(line, S.l_last_writer, tid_obj);
                        slot_set(line, S.l_write_time, end_obj);
                        PyObject *loc = slot_get(line, S.l_loc_id);
                        if (loc == NULL
                            || PyDict_SetItem(tcache, loc, end_obj) < 0) {
                            Py_DECREF(end_obj);
                            goto op_error;
                        }
                        Py_DECREF(end_obj);
                    }
                    if (audited
                        && audit_fill(audit, cell, stall, miss, basec) < 0)
                        goto op_error;
                    if (tp == S.tp_faa) {
                        PyObject *old = slot_get(cell, S.c_value);
                        PyObject *delta = old ? slot_get(op, S.op_faa_delta) : NULL;
                        if (delta == NULL) goto op_error;
                        Py_INCREF(old);
                        PyObject *nv = PyNumber_Add(old, delta);
                        if (nv == NULL) {
                            Py_DECREF(old);
                            goto op_error;
                        }
                        slot_set(cell, S.c_value, nv);
                        Py_DECREF(nv);
                        slot_set(task, S.t_pending_value, old);
                        Py_DECREF(old);
                    }
                    else if (tp == S.tp_cas) {
                        PyObject *cur = slot_get(cell, S.c_value);
                        PyObject *expected =
                            cur ? slot_get(op, S.op_cas_expected) : NULL;
                        if (expected == NULL) goto op_error;
                        int eq;
                        PyObject *cell_tp = (PyObject *)Py_TYPE(cell);
                        if (cell_tp == S.tp_refcell) {
                            eq = (cur == expected);
                        }
                        else if (cell_tp == S.tp_intcell) {
                            PyObject *r = PyObject_RichCompare(cur, expected, Py_EQ);
                            if (r == NULL) goto op_error;
                            eq = PyObject_IsTrue(r);
                            Py_DECREF(r);
                            if (eq < 0) goto op_error;
                        }
                        else {
                            PyObject *cmpargs[3] = {cell, cur, expected};
                            PyObject *r = PyObject_VectorcallMethod(
                                s_compare, cmpargs,
                                3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                            if (r == NULL) goto op_error;
                            eq = PyObject_IsTrue(r);
                            Py_DECREF(r);
                            if (eq < 0) goto op_error;
                        }
                        if (eq) {
                            PyObject *update = slot_get(op, S.op_cas_update);
                            if (update == NULL) goto op_error;
                            slot_set(cell, S.c_value, update);
                            slot_set(task, S.t_pending_value, Py_True);
                        }
                        else {
                            slot_set(task, S.t_pending_value, Py_False);
                        }
                    }
                    else if (tp == S.tp_write) {
                        PyObject *nv = slot_get(op, S.op_write_value);
                        if (nv == NULL) goto op_error;
                        slot_set(cell, S.c_value, nv);
                        /* the Write applier returns None */
                        slot_set(task, S.t_pending_value, Py_None);
                    }
                    else { /* GetAndSet */
                        PyObject *old = slot_get(cell, S.c_value);
                        PyObject *nv = old ? slot_get(op, S.op_gas_value) : NULL;
                        if (nv == NULL) goto op_error;
                        Py_INCREF(old);
                        slot_set(cell, S.c_value, nv);
                        slot_set(task, S.t_pending_value, old);
                        Py_DECREF(old);
                    }
                }
                else if (tp == S.tp_work) {
                    PyObject *cyc = slot_get(op, S.op_work_cycles);
                    int64_t cycles;
                    if (cyc == NULL || as_i64(cyc, &cycles) < 0) goto op_error;
                    tclock += cycles;
                }
                else if (tp == S.tp_sampledwork) {
                    int64_t k;
                    if (sampled_work_draw(op, &k) < 0) goto op_error;
                    tclock += k;
                }
                else if (tp == S.tp_yield) {
                    tclock += yield_cost;
                }
                else if (tp == S.tp_spin) {
                    /* DesPolicy.on_voluntary_yield is the base no-op */
                    tclock += spin_cost;
                }
                else if (tp == S.tp_park) {
                    tclock += park_cost;
                    PyObject *ip = SLOT(task, S.t_interrupt_pending);
                    PyObject *rp = SLOT(task, S.t_retry_pending);
                    PyObject *up = SLOT(task, S.t_unpark_pending);
                    int ipt = ip ? PyObject_IsTrue(ip) : 0;
                    int rpt = rp ? PyObject_IsTrue(rp) : 0;
                    int upt = up ? PyObject_IsTrue(up) : 0;
                    if (ipt < 0 || rpt < 0 || upt < 0) goto op_error;
                    if (ipt) {
                        slot_set(task, S.t_interrupt_pending, Py_False);
                        PyObject *e = PyObject_CallNoArgs(S.exc_interrupted);
                        if (e == NULL) goto op_error;
                        slot_set(task, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    else if (rpt) {
                        slot_set(task, S.t_retry_pending, Py_False);
                        PyObject *e = PyObject_CallNoArgs(S.exc_retry);
                        if (e == NULL) goto op_error;
                        slot_set(task, S.t_pending_exc, e);
                        Py_DECREF(e);
                    }
                    else if (upt) {
                        slot_set(task, S.t_unpark_pending, Py_False);
                    }
                    else {
                        slot_set(task, S.t_state, S.st_parked);
                        PyObject *pc = slot_get(task, S.t_park_count);
                        int64_t pcv;
                        if (pc == NULL || as_i64(pc, &pcv) < 0) goto op_error;
                        if (set_slot_i64(task, S.t_park_count, pcv + 1) < 0)
                            goto op_error;
                    }
                }
                else if (tp == S.tp_unpark) {
                    tclock += unpark_cost;
                    PyObject *target = slot_get(op, S.op_unpark_task);
                    if (target == NULL) goto op_error;
                    PyObject *oi = slot_get(op, S.op_unpark_interrupt);
                    PyObject *orr = oi ? slot_get(op, S.op_unpark_retry) : NULL;
                    if (orr == NULL) goto op_error;
                    int interrupt = PyObject_IsTrue(oi);
                    int retry = PyObject_IsTrue(orr);
                    if (interrupt < 0 || retry < 0) goto op_error;
                    if (SLOT(target, S.t_state) == S.st_parked) {
                        if (interrupt) {
                            PyObject *e = PyObject_CallNoArgs(S.exc_interrupted);
                            if (e == NULL) goto op_error;
                            slot_set(target, S.t_pending_exc, e);
                            Py_DECREF(e);
                        }
                        else if (retry) {
                            PyObject *e = PyObject_CallNoArgs(S.exc_retry);
                            if (e == NULL) goto op_error;
                            slot_set(target, S.t_pending_exc, e);
                            Py_DECREF(e);
                        }
                        slot_set(target, S.t_state, S.st_runnable);
                        /* cost.wake with the *charged* clock, like
                         * _dispatch (charge ran first there too) */
                        PyObject *tc_obj = slot_get(target, S.t_clock);
                        int64_t wbase;
                        if (tc_obj == NULL || as_i64(tc_obj, &wbase) < 0)
                            goto op_error;
                        if (tclock > wbase) {
                            wbase = tclock;
                        }
                        if (set_slot_i64(target, S.t_clock,
                                         wbase + wake_latency) < 0)
                            goto op_error;
                        if (call_method1(sched, s_make_runnable, target) < 0)
                            goto op_error;
                    }
                    else if (interrupt) {
                        slot_set(target, S.t_interrupt_pending, Py_True);
                    }
                    else if (retry) {
                        slot_set(target, S.t_retry_pending, Py_True);
                    }
                    else {
                        slot_set(target, S.t_unpark_pending, Py_True);
                    }
                }
                else if (tp == S.tp_current) {
                    slot_set(task, S.t_pending_value, task);
                }
                else if (tp == S.tp_alloc) {
                    tclock += alloc_cost;
                    PyObject *stats = PyObject_GetAttr(sched, s_alloc_stats);
                    if (stats == NULL) goto op_error;
                    if (stats != Py_None) {
                        PyObject *tag = slot_get(op, S.op_alloc_tag);
                        PyObject *units = tag ? slot_get(op, S.op_alloc_units) : NULL;
                        if (units == NULL) {
                            Py_DECREF(stats);
                            goto op_error;
                        }
                        PyObject *rargs[3] = {stats, tag, units};
                        PyObject *r = PyObject_VectorcallMethod(
                            s_record, rargs,
                            3 | PY_VECTORCALL_ARGUMENTS_OFFSET, NULL);
                        if (r == NULL) {
                            Py_DECREF(stats);
                            goto op_error;
                        }
                        Py_DECREF(r);
                    }
                    Py_DECREF(stats);
                }
                else { /* Label: no effect */
                }
                /* write the charged clock through before any hook runs */
                if (set_slot_i64(task, S.t_clock, tclock) < 0) goto op_error;
            }

            if (procs_enabled && SLOT(task, S.t_state) != S.st_runnable) {
                if (call_method1(sched, s_unbind, task) < 0) goto op_error;
            }

            /* -- hook callouts ------------------------------------------ */
            {
                PyObject *hooks = PyObject_GetAttr(sched, s_hooks);
                if (hooks == NULL) goto op_error;
                if (!PyList_Check(hooks)) {
                    Py_DECREF(hooks);
                    PyErr_SetString(PyExc_TypeError,
                                    "engine: scheduler._hooks is not a list");
                    goto op_error;
                }
                if (PyList_GET_SIZE(hooks) > 0) {
                    if (!lcg_synced) {
                        PyObject *l = PyLong_FromUnsignedLongLong(lcg);
                        if (l == NULL || PyObject_SetAttr(cost, s_lcg, l) < 0) {
                            Py_XDECREF(l);
                            Py_DECREF(hooks);
                            goto op_error;
                        }
                        Py_DECREF(l);
                        lcg_synced = 1;
                    }
                    PyObject *hargs[3] = {sched, task, op};
                    int hook_error = 0;
                    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(hooks); i++) {
                        PyObject *h = PyList_GET_ITEM(hooks, i);
                        Py_INCREF(h);
                        PyObject *hr = PyObject_Vectorcall(h, hargs, 3, NULL);
                        Py_DECREF(h);
                        if (hr == NULL) {
                            hook_error = 1;
                            break;
                        }
                        Py_DECREF(hr);
                    }
                    Py_DECREF(hooks);
                    if (hook_error) goto op_error;
                    /* hooks may legitimately mutate what they observe */
                    {
                        PyObject *l = PyObject_GetAttr(cost, s_lcg);
                        if (l == NULL) goto op_error;
                        lcg = PyLong_AsUnsignedLongLong(l);
                        Py_DECREF(l);
                        if (lcg == (uint64_t)-1 && PyErr_Occurred())
                            goto op_error;
                        lcg_synced = 1;
                    }
                    PyObject *tco = slot_get(task, S.t_clock);
                    if (tco == NULL || as_i64(tco, &tclock) < 0) goto op_error;
                }
                else {
                    Py_DECREF(hooks);
                }
            }
            Py_DECREF(op);
            op = NULL;

            /* -- _run_general post-step checks -------------------------- */
            if (steps > limit) {
                raise_step_limit(limit);
                stint_error = 1;
                break;
            }
            if (SLOT(task, S.t_state) != S.st_runnable) {
                break;
            }
            /* -- policy.keep_running, transcribed ----------------------- */
            int kr = 1;
            for (;;) {
                if (PyList_GET_SIZE(heap) == 0) {
                    kr = 1;
                    break;
                }
                PyObject *top = PyList_GET_ITEM(heap, 0);
                PyObject *other = PyTuple_GET_ITEM(top, 2);
                int64_t eclock, oclock;
                if (as_i64(PyTuple_GET_ITEM(top, 0), &eclock) < 0) {
                    stint_error = 1;
                    break;
                }
                PyObject *oc = slot_get(other, S.t_clock);
                if (oc == NULL || as_i64(oc, &oclock) < 0) {
                    stint_error = 1;
                    break;
                }
                if (SLOT(other, S.t_state) != S.st_runnable
                    || oclock != eclock || other == task) {
                    PyObject *junk = heap_pop(heap);
                    if (junk == NULL) {
                        stint_error = 1;
                        break;
                    }
                    Py_DECREF(junk);
                    continue;
                }
                kr = (tclock <= eclock);
                break;
            }
            if (stint_error) break;
            if (!kr) {
                /* policy.requeue(task): narrow (clock, tid, task) entry */
                PyObject *c_obj = slot_get(task, S.t_clock);
                if (c_obj == NULL) {
                    stint_error = 1;
                    break;
                }
                PyObject *entry = PyTuple_Pack(3, c_obj, tid_obj, task);
                if (entry == NULL) {
                    stint_error = 1;
                    break;
                }
                int rc = heap_push(heap, entry);
                Py_DECREF(entry);
                if (rc < 0) {
                    stint_error = 1;
                }
                break;
            }
            continue;

        op_error:
            Py_XDECREF(op);
            stint_error = 1;
            break;
        }

        Py_DECREF(task);
        if (stint_error) goto cleanup;
    }

    failed = 0;
    result = Py_NewRef(Py_None);

cleanup:
    /* ``finally:`` — restore global engine state exactly. */
    {
        PyObject *etype = NULL, *evalue = NULL, *etb = NULL;
        if (failed) {
            PyErr_Fetch(&etype, &evalue, &etb);
        }
        if (engaged) {
            PyObject *steps_obj = PyLong_FromLongLong(steps);
            if (steps_obj != NULL) {
                PyObject_SetAttr(sched, s_total_steps, steps_obj);
                Py_DECREF(steps_obj);
            }
            PyObject *lcg_obj = PyLong_FromUnsignedLongLong(lcg);
            if (lcg_obj != NULL) {
                PyObject_SetAttr(cost, s_lcg, lcg_obj);
                Py_DECREF(lcg_obj);
            }
            if (PyErr_Occurred()) {
                if (etype != NULL) {
                    PyErr_Clear();
                }
            }
        }
        if (etype != NULL || evalue != NULL || etb != NULL) {
            PyErr_Restore(etype, evalue, etb);
        }
    }
    Py_XDECREF(cost);
    Py_XDECREF(policy);
    Py_XDECREF(heap);
    Py_XDECREF(params);
    Py_XDECREF(unbound);
    Py_XDECREF(procs_obj);
    Py_XDECREF(tasks_list);
    Py_XDECREF(charge_fn);
    Py_XDECREF(dispatch_fn);
    return result;
}

static PyObject *
engine_configured(PyObject *self, PyObject *noargs)
{
    (void)self;
    (void)noargs;
    return PyBool_FromLong(S.ready);
}

static PyMethodDef engine_methods[] = {
    {"configure", engine_configure, METH_O,
     "Bind the engine to the repro classes; validates __slots__ layouts."},
    {"run_fast", engine_run_fast, METH_O,
     "Run a Scheduler's fused DES loop natively (bit-identical to _run_fast)."},
    {"run_observed", engine_run_observed, METH_O,
     "Run a Scheduler's observed general loop natively (bit-identical to "
     "_run_general)."},
    {"configured", engine_configured, METH_NOARGS,
     "True once configure() has validated the object layouts."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef engine_module = {
    PyModuleDef_HEAD_INIT,
    "repro._engine._enginec",
    "Compiled engine tier: the fused DES stint loop in C.",
    -1,
    engine_methods,
    NULL, /* m_slots */
    NULL, /* m_traverse */
    NULL, /* m_clear */
    NULL, /* m_free */
};

PyMODINIT_FUNC
PyInit__enginec(void)
{
#define INTERN(var, text)                        \
    do {                                         \
        var = PyUnicode_InternFromString(text);  \
        if (var == NULL) return NULL;            \
    } while (0)
    INTERN(s_live, "_live");
    INTERN(s_heap, "_heap");
    INTERN(s_cost, "cost");
    INTERN(s_policy, "policy");
    INTERN(s_p, "p");
    INTERN(s_lcg, "_lcg");
    INTERN(s_processors, "processors");
    INTERN(s_unbound, "_unbound");
    INTERN(s_max_steps, "max_steps");
    INTERN(s_total_steps, "total_steps");
    INTERN(s_tasks, "tasks");
    INTERN(s_bind, "_bind");
    INTERN(s_unbind, "_unbind");
    INTERN(s_make_runnable, "_make_runnable");
    INTERN(s_dispatch, "_dispatch");
    INTERN(s_charge, "charge");
    INTERN(s_popleft, "popleft");
    INTERN(s_throw, "throw");
    INTERN(s_value, "value");
    INTERN(s_compare, "compare");
    INTERN(s_read_hit, "read_hit");
    INTERN(s_write, "write");
    INTERN(s_rmw, "rmw");
    INTERN(s_remote_miss, "remote_miss");
    INTERN(s_read_miss, "read_miss");
    INTERN(s_park, "park");
    INTERN(s_unpark, "unpark");
    INTERN(s_wake_latency, "wake_latency");
    INTERN(s_spin, "spin");
    INTERN(s_yield_, "yield_");
    INTERN(s_alloc, "alloc");
    INTERN(s_jitter, "jitter");
    INTERN(s_clock, "clock");
    INTERN(s_pending_value_str, "pending_value");
    INTERN(s_hooks, "_hooks");
    INTERN(s_alloc_stats, "alloc_stats");
    INTERN(s_record, "record");
    INTERN(s_forget, "forget");
    INTERN(s_sample, "sample");
#undef INTERN
    memset(&S, 0, sizeof(S));
    return PyModule_Create(&engine_module);
}
