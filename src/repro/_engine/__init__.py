"""Engine-tier resolution: pure-Python reference vs. compiled fast loop.

The simulator has two interchangeable engines for the unobserved
standard configuration (``DesPolicy`` + ``CostModel``, no hooks):

* ``py`` — :meth:`repro.sim.scheduler.Scheduler._run_fast`, the pure
  Python fused loop.  This is the *reference implementation*: it defines
  the semantics, and the 16 golden configs in
  ``tests/data/golden_engine.json`` pin its op streams bit-for-bit.
* ``c`` — :mod:`repro._engine._enginec`, a hand-written CPython
  extension transcribing the same loop.  It must produce byte-identical
  results; the golden suite runs under both tiers to prove it.

Tier selection (`resolve`) follows a strict precedence:

1. an explicit ``engine=`` argument (``Scheduler(engine=...)``,
   ``run_selfperf(engine=...)``);
2. the process default set via :func:`set_default_engine` (the bench
   CLI's ``--engine`` flag uses this);
3. the ``REPRO_ENGINE`` environment variable;
4. ``auto`` — prefer the compiled tier when it imports and configures
   cleanly, else fall back to ``py``.

Requesting ``c`` explicitly when the extension is unavailable raises
:class:`~repro.errors.EngineUnavailableError` — an explicit request must
never silently degrade.  ``auto`` degrades silently *except* that the
first resolution emits exactly one ``engine_tier{tier=py|c}`` counter
into :data:`METRICS` and, on fallback, one line on stderr — so a
silently-broken build cannot masquerade as a perf regression.

``REPRO_NO_ENGINE_EXT=1`` disables the extension probe entirely (used by
tests to exercise the fallback path deterministically).

The compiled tier now covers *both* standard-config loops: the fused
unobserved stint loop (``run_fast``) and the observed general loop
(``run_observed``), which executes heap scheduling and op charge/apply
natively while calling back into Python at the observation points
(scheduler hooks, the CostModel audit tap, alloc-stats recording).
Non-default policies and non-default cost models always route through
Python.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Optional

from ..errors import EngineUnavailableError
from ..obs.metrics import MetricsRegistry

__all__ = [
    "ENGINES",
    "METRICS",
    "available",
    "native_run",
    "native_run_general",
    "probe_error",
    "resolve",
    "set_default_engine",
    "get_default_engine",
]

ENGINES = ("py", "c", "auto")

#: Registry receiving the one-shot ``engine_tier`` probe metric.  Module
#: level because the probe outcome is a per-process fact, not a
#: per-scheduler one.
METRICS = MetricsRegistry()

_default_engine: Optional[str] = None

_ext: Any = None
_probe_error: Optional[str] = None
_probed = False
_announced = False


def _probe() -> None:
    """Import and configure the extension once; record failure reason."""

    global _ext, _probe_error, _probed
    if _probed:
        return
    _probed = True
    if os.environ.get("REPRO_NO_ENGINE_EXT", "") not in ("", "0"):
        _probe_error = "disabled via REPRO_NO_ENGINE_EXT"
        return
    try:
        from . import _enginec  # type: ignore[attr-defined]
    except Exception as exc:  # pragma: no cover - exercised via env toggle
        _probe_error = f"extension import failed: {exc!r}"
        return
    try:
        from ..concurrent.cells import CacheLine, Cell, IntCell, RefCell
        from ..concurrent.ops import (
            Alloc,
            Cas,
            CurrentTask,
            Faa,
            GetAndSet,
            Label,
            ParkTask,
            Read,
            SampledWork,
            Spin,
            UnparkTask,
            Work,
            Write,
            Yield,
        )
        from ..bench.workload import GeometricWork
        from ..errors import DeadlockError, Interrupted, RetryWakeup, StepLimitExceeded
        from ..sim.costmodel import CostModel, OpCostAudit
        from ..sim.tasks import Task, TaskState

        _enginec.configure(
            {
                "Read": Read,
                "Write": Write,
                "Cas": Cas,
                "Faa": Faa,
                "GetAndSet": GetAndSet,
                "Work": Work,
                "Yield": Yield,
                "Spin": Spin,
                "ParkTask": ParkTask,
                "UnparkTask": UnparkTask,
                "CurrentTask": CurrentTask,
                "Alloc": Alloc,
                "Label": Label,
                "SampledWork": SampledWork,
                "GeometricWork": GeometricWork,
                "OpCostAudit": OpCostAudit,
                "CostModel": CostModel,
                "RefCell": RefCell,
                "IntCell": IntCell,
                "Task": Task,
                "Cell": Cell,
                "CacheLine": CacheLine,
                "RUNNABLE": TaskState.RUNNABLE,
                "PARKED": TaskState.PARKED,
                "DONE": TaskState.DONE,
                "FAILED": TaskState.FAILED,
                "Interrupted": Interrupted,
                "RetryWakeup": RetryWakeup,
                "DeadlockError": DeadlockError,
                "StepLimitExceeded": StepLimitExceeded,
            }
        )
    except Exception as exc:
        # A layout mismatch (or any configure failure) means the build is
        # unusable; fall back to the reference tier.
        _probe_error = f"extension configure failed: {exc!r}"
        return
    if not hasattr(_enginec, "run_observed"):
        # An .so from an older source tree imports and configures fine
        # but lacks the observed-path core; treat it as unusable rather
        # than serving a half-tier.
        _probe_error = "extension build is stale (missing run_observed); rebuild it"
        return
    _ext = _enginec
    _probe_error = None


def available() -> bool:
    """``True`` when the compiled tier imported and configured cleanly."""

    _probe()
    return _ext is not None


def probe_error() -> Optional[str]:
    """Why the compiled tier is unavailable, or ``None`` when it is."""

    _probe()
    return _probe_error


def _announce(tier: str) -> None:
    """One-shot probe report: one metric, plus stderr on fallback."""

    global _announced
    if _announced:
        return
    _announced = True
    METRICS.counter("engine_tier", tier=tier).inc()
    if tier == "py" and _probe_error is not None:
        print(
            f"repro: compiled engine unavailable ({_probe_error}); "
            "using pure-Python tier",
            file=sys.stderr,
        )


def set_default_engine(engine: Optional[str]) -> Optional[str]:
    """Set the process-default engine; returns the previous default.

    ``None`` clears the default (environment/auto take over again).
    """

    global _default_engine
    if engine is not None and engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    prev = _default_engine
    _default_engine = engine
    return prev


def get_default_engine() -> Optional[str]:
    return _default_engine


def resolve(request: Optional[str] = None) -> str:
    """Resolve an engine request to a concrete tier: ``'py'`` or ``'c'``.

    Precedence: explicit *request* > :func:`set_default_engine` >
    ``REPRO_ENGINE`` > ``'auto'``.  An explicit ``'c'`` raises
    :class:`~repro.errors.EngineUnavailableError` when the extension is
    unusable; ``'auto'`` silently degrades (after the one-shot notice).
    """

    if request is None:
        request = _default_engine
    if request is None:
        request = os.environ.get("REPRO_ENGINE", "") or "auto"
    if request not in ENGINES:
        raise ValueError(f"unknown engine {request!r}; expected one of {ENGINES}")
    if request == "py":
        return "py"
    if request == "c":
        if not available():
            raise EngineUnavailableError(_probe_error or "unknown probe failure")
        return "c"
    # auto
    tier = "c" if available() else "py"
    _announce(tier)
    return tier


def native_run(sched: Any) -> None:
    """Run *sched*'s fused loop on the compiled tier (must be available)."""

    _probe()
    if _ext is None:
        raise EngineUnavailableError(_probe_error or "unknown probe failure")
    _ext.run_fast(sched)


def native_run_general(sched: Any) -> None:
    """Run *sched*'s observed general loop on the compiled tier.

    Bit-identical to :meth:`Scheduler._run_general` for the standard
    configuration, including hook/audit/alloc-stats callouts.
    """

    _probe()
    if _ext is None:
        raise EngineUnavailableError(_probe_error or "unknown probe failure")
    _ext.run_observed(sched)
