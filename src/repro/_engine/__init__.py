"""Engine-tier resolution: pure-Python reference vs. compiled fast loop.

The simulator has two interchangeable engines for the unobserved
standard configuration (``DesPolicy`` + ``CostModel``, no hooks):

* ``py`` — :meth:`repro.sim.scheduler.Scheduler._run_fast`, the pure
  Python fused loop.  This is the *reference implementation*: it defines
  the semantics, and the 16 golden configs in
  ``tests/data/golden_engine.json`` pin its op streams bit-for-bit.
* ``c`` — :mod:`repro._engine._enginec`, a hand-written CPython
  extension transcribing the same loop.  It must produce byte-identical
  results; the golden suite runs under both tiers to prove it.

Tier selection (`resolve`) follows a strict precedence:

1. an explicit ``engine=`` argument (``Scheduler(engine=...)``,
   ``run_selfperf(engine=...)``);
2. the process default set via :func:`set_default_engine` (the bench
   CLI's ``--engine`` flag uses this);
3. the ``REPRO_ENGINE`` environment variable;
4. ``auto`` — prefer the compiled tier when it imports and configures
   cleanly, else fall back to ``py``.

Requesting ``c`` explicitly when the extension is unavailable raises
:class:`~repro.errors.EngineUnavailableError` — an explicit request must
never silently degrade.  ``auto`` degrades silently *except* that the
first resolution emits exactly one ``engine_tier{tier=py|c}`` counter
into :data:`METRICS` and, on fallback, one line on stderr — so a
silently-broken build cannot masquerade as a perf regression.

``REPRO_NO_ENGINE_EXT=1`` disables the extension probe entirely (used by
tests to exercise the fallback path deterministically).

The compiled tier now covers *both* standard-config loops: the fused
unobserved stint loop (``run_fast``) and the observed general loop
(``run_observed``), which executes heap scheduling and op charge/apply
natively while calling back into Python at the observation points
(scheduler hooks, the CostModel audit tap, alloc-stats recording).
Non-default policies and non-default cost models always route through
Python.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Optional

from ..errors import EngineUnavailableError
from ..obs.metrics import MetricsRegistry

__all__ = [
    "ENGINES",
    "METRICS",
    "available",
    "alg_kernels_available",
    "alg_kernels_enabled",
    "set_alg_kernels",
    "native_run",
    "native_run_general",
    "probe_error",
    "probe_error_kind",
    "resolve",
    "set_default_engine",
    "get_default_engine",
]

ENGINES = ("py", "c", "auto")

#: Registry receiving the one-shot ``engine_tier`` probe metric.  Module
#: level because the probe outcome is a per-process fact, not a
#: per-scheduler one.
METRICS = MetricsRegistry()

_default_engine: Optional[str] = None

_ext: Any = None
_probe_error: Optional[str] = None
#: Structured classification of the probe failure, for the fallback
#: notice and tests: ``"disabled"`` (environment opt-out),
#: ``"import-error"`` (extension missing / not built), ``"configure-error"``
#: (layout mismatch) or ``"stale-build"`` (old .so lacking entry points).
_probe_error_kind: Optional[str] = None
_probed = False
_announced = False


def _probe() -> None:
    """Import and configure the extension once; record failure reason."""

    global _ext, _probe_error, _probe_error_kind, _probed
    if _probed:
        return
    _probed = True
    if os.environ.get("REPRO_NO_ENGINE_EXT", "") not in ("", "0"):
        _probe_error = "disabled via REPRO_NO_ENGINE_EXT"
        _probe_error_kind = "disabled"
        return
    try:
        from . import _enginec  # type: ignore[attr-defined]
    except Exception as exc:  # pragma: no cover - exercised via env toggle
        _probe_error = f"extension import failed: {exc!r}"
        _probe_error_kind = "import-error"
        return
    try:
        from ..concurrent.cells import CacheLine, Cell, IntCell, RefCell
        from ..concurrent.ops import (
            Alloc,
            Cas,
            CurrentTask,
            Faa,
            GetAndSet,
            Label,
            ParkTask,
            Read,
            SampledWork,
            Spin,
            UnparkTask,
            Work,
            Write,
            Yield,
        )
        from ..baselines import faa_queue as _faaq
        from ..bench.workload import GeometricWork
        from ..concurrent.ops import CURRENT_TASK, acquire_kit, release_kit
        from ..core import states as _states
        from ..core.segments import Segment
        from ..errors import (
            ChannelClosedForReceive,
            ChannelClosedForSend,
            DeadlockError,
            Interrupted,
            RetryWakeup,
            StepLimitExceeded,
        )
        from ..runtime import waiter as _waiter
        from ..sim.costmodel import CostModel, OpCostAudit
        from ..sim.tasks import Task, TaskState

        _enginec.configure(
            {
                "Read": Read,
                "Write": Write,
                "Cas": Cas,
                "Faa": Faa,
                "GetAndSet": GetAndSet,
                "Work": Work,
                "Yield": Yield,
                "Spin": Spin,
                "ParkTask": ParkTask,
                "UnparkTask": UnparkTask,
                "CurrentTask": CurrentTask,
                "Alloc": Alloc,
                "Label": Label,
                "SampledWork": SampledWork,
                "GeometricWork": GeometricWork,
                "OpCostAudit": OpCostAudit,
                "CostModel": CostModel,
                "RefCell": RefCell,
                "IntCell": IntCell,
                "Task": Task,
                "Cell": Cell,
                "CacheLine": CacheLine,
                "RUNNABLE": TaskState.RUNNABLE,
                "PARKED": TaskState.PARKED,
                "DONE": TaskState.DONE,
                "FAILED": TaskState.FAILED,
                "Interrupted": Interrupted,
                "RetryWakeup": RetryWakeup,
                "DeadlockError": DeadlockError,
                "StepLimitExceeded": StepLimitExceeded,
                # Algorithm-kernel layout (PR 10): cell states, waiter
                # classes/states, segment shapes, and close exceptions the
                # native send/receive/enqueue/dequeue machines compare
                # against by identity.
                "C_BUFFERED": _states.BUFFERED,
                "C_IN_BUFFER": _states.IN_BUFFER,
                "C_DONE": _states.DONE,
                "C_DONE_RCV": _states.DONE_RCV,
                "C_BROKEN": _states.BROKEN,
                "C_CANCELLED": _states.CANCELLED,
                "C_INTERRUPTED_SEND": _states.INTERRUPTED_SEND,
                "C_INTERRUPTED_RCV": _states.INTERRUPTED_RCV,
                "C_S_RESUMING_RCV": _states.S_RESUMING_RCV,
                "C_S_RESUMING_EB": _states.S_RESUMING_EB,
                "W_INIT": _waiter.INIT,
                "W_PARKED": _waiter.PARKED,
                "W_PERMIT": _waiter.PERMIT,
                "W_RESUMED": _waiter.RESUMED,
                "Waiter": _waiter.Waiter,
                "SenderWaiter": _states.SenderWaiter,
                "ReceiverWaiter": _states.ReceiverWaiter,
                "Segment": Segment,
                "QSegment": _faaq._QSegment,
                "ChannelClosedForSend": ChannelClosedForSend,
                "ChannelClosedForReceive": ChannelClosedForReceive,
                "FAAQ_BROKEN": _faaq._BROKEN,
                "CURRENT_TASK": CURRENT_TASK,
                "acquire_kit": acquire_kit,
                "release_kit": release_kit,
            }
        )
    except Exception as exc:
        # A layout mismatch (or any configure failure) means the build is
        # unusable; fall back to the reference tier.
        _probe_error = f"extension configure failed: {exc!r}"
        _probe_error_kind = "configure-error"
        return
    if not hasattr(_enginec, "run_observed") or not hasattr(
        _enginec, "kernel_rz_send"
    ):
        # An .so from an older source tree imports and configures fine
        # but lacks the observed-path core or the algorithm kernels;
        # treat it as unusable rather than serving a half-tier.
        _probe_error = (
            "extension build is stale (missing run_observed/kernel entry "
            "points); rebuild it"
        )
        _probe_error_kind = "stale-build"
        return
    _ext = _enginec
    _probe_error = None
    _probe_error_kind = None


def available() -> bool:
    """``True`` when the compiled tier imported and configured cleanly."""

    _probe()
    return _ext is not None


def probe_error() -> Optional[str]:
    """Why the compiled tier is unavailable, or ``None`` when it is."""

    _probe()
    return _probe_error


def probe_error_kind() -> Optional[str]:
    """Structured probe-failure class (see :data:`_probe_error_kind`)."""

    _probe()
    return _probe_error_kind


#: Human framing per probe-failure class for the ``auto`` fallback
#: notice.  ``disabled`` is an intentional opt-out and gets no remedy
#: hint; everything else points at the rebuild command.
_FALLBACK_HINTS = {
    "disabled": "disabled by environment",
    "import-error": "extension is not built or not importable",
    "configure-error": "extension build does not match this source tree",
    "stale-build": "extension build is stale",
}


def _announce(tier: str) -> None:
    """One-shot probe report: one metric, plus stderr on fallback.

    The notice names the *probe failure class* and the underlying reason
    (import error vs. ``REPRO_NO_ENGINE_EXT`` vs. layout mismatch), so a
    silently-broken build is distinguishable from an intentional opt-out
    without rerunning the probe by hand.
    """

    global _announced
    if _announced:
        return
    _announced = True
    METRICS.counter("engine_tier", tier=tier).inc()
    if tier == "py" and _probe_error is not None:
        kind = _probe_error_kind or "unavailable"
        framing = _FALLBACK_HINTS.get(kind, "unavailable")
        msg = (
            f"repro: compiled engine unavailable [{kind}] — {framing}: "
            f"{_probe_error}; using pure-Python tier"
        )
        if kind not in (None, "disabled"):
            msg += " (rebuild: python setup.py build_ext --inplace)"
        print(msg, file=sys.stderr)


def set_default_engine(engine: Optional[str]) -> Optional[str]:
    """Set the process-default engine; returns the previous default.

    ``None`` clears the default (environment/auto take over again).
    """

    global _default_engine
    if engine is not None and engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    prev = _default_engine
    _default_engine = engine
    return prev


def get_default_engine() -> Optional[str]:
    return _default_engine


def resolve(request: Optional[str] = None) -> str:
    """Resolve an engine request to a concrete tier: ``'py'`` or ``'c'``.

    Precedence: explicit *request* > :func:`set_default_engine` >
    ``REPRO_ENGINE`` > ``'auto'``.  An explicit ``'c'`` raises
    :class:`~repro.errors.EngineUnavailableError` when the extension is
    unusable; ``'auto'`` silently degrades (after the one-shot notice).
    """

    if request is None:
        request = _default_engine
    if request is None:
        request = os.environ.get("REPRO_ENGINE", "") or "auto"
    if request not in ENGINES:
        raise ValueError(f"unknown engine {request!r}; expected one of {ENGINES}")
    if request == "py":
        return "py"
    if request == "c":
        if not available():
            raise EngineUnavailableError(_probe_error or "unknown probe failure")
        return "c"
    # auto
    tier = "c" if available() else "py"
    _announce(tier)
    return tier


# ----------------------------------------------------------------------
# Algorithm kernels (PR 10)
# ----------------------------------------------------------------------
#
# The compiled tier carries native transcriptions of the fused PARK-mode
# channel fast paths ("op kernels").  They are installed into
# ``repro.concurrent.ops.KERNELS`` only for the duration of a native
# ``run_fast`` — every other driver always sees plain generators — and
# only when neither ``REPRO_NO_ALG_KERNELS`` nor ``REPRO_NO_FAST_OPS``
# disables them.

_alg_kernels = os.environ.get("REPRO_NO_ALG_KERNELS", "") in ("", "0")


def alg_kernels_enabled() -> bool:
    """``True`` when the native algorithm kernels may be installed."""

    return _alg_kernels


def set_alg_kernels(enabled: bool) -> None:
    """Runtime toggle for the algorithm kernels (A/B and identity tests)."""

    global _alg_kernels
    _alg_kernels = bool(enabled)


class _Kernels:
    """The namespace the channel dispatch wrappers consult.

    One attribute per kernel factory; each factory returns a native
    kernel iterator, or ``None`` when the operation is not eligible
    (the wrapper then falls back to the fused generator).
    """

    __slots__ = ("rz_send", "rz_recv", "buf_send", "buf_recv", "faaq_enq", "faaq_deq")

    def __init__(self, ext: Any):
        self.rz_send = ext.kernel_rz_send
        self.rz_recv = ext.kernel_rz_recv
        self.buf_send = ext.kernel_buf_send
        self.buf_recv = ext.kernel_buf_recv
        self.faaq_enq = ext.kernel_faaq_enq
        self.faaq_deq = ext.kernel_faaq_deq


_kernels_ns: Any = None


def alg_kernels_available() -> bool:
    """``True`` when the compiled tier exposes the kernel factories."""

    _probe()
    return _ext is not None and hasattr(_ext, "kernel_rz_send")


def _kernel_namespace() -> Any:
    global _kernels_ns
    if _kernels_ns is None and alg_kernels_available():
        _kernels_ns = _Kernels(_ext)
    return _kernels_ns


def native_run(sched: Any) -> None:
    """Run *sched*'s fused loop on the compiled tier (must be available)."""

    _probe()
    if _ext is None:
        raise EngineUnavailableError(_probe_error or "unknown probe failure")
    from ..concurrent import ops as _ops

    kernels = None
    if _alg_kernels and _ops.fast_ops_enabled():
        kernels = _kernel_namespace()
    if kernels is None:
        _ext.run_fast(sched)
        return
    prev = _ops.KERNELS
    _ops.KERNELS = kernels
    try:
        _ext.run_fast(sched)
    finally:
        _ops.KERNELS = prev


def native_run_general(sched: Any) -> None:
    """Run *sched*'s observed general loop on the compiled tier.

    Bit-identical to :meth:`Scheduler._run_general` for the standard
    configuration, including hook/audit/alloc-stats callouts.
    """

    _probe()
    if _ext is None:
        raise EngineUnavailableError(_probe_error or "unknown probe failure")
    _ext.run_observed(sched)
