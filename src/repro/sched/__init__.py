"""Pluggable scheduling policies, fairness accounting, and policy parity.

`repro.sched` widens the DES from one scheduling regime
(:class:`~repro.sim.scheduler.DesPolicy`) to a pack of policies real
lightweight-thread runtimes run under — preemptive quantum round-robin,
priority with aging, EDF realtime-periodic, and M:N core mapping with
work stealing — all behind the existing ``SchedulingPolicy`` protocol,
so the default DES behavior and its pinned goldens are untouched.

Entry points:

* :data:`POLICIES` / :func:`make_policy` — name → fresh policy instance.
* :class:`FairnessMonitor` — per-waiter wait-time/starvation accounting.
* :mod:`repro.sched.parity` — re-runs the verify suite under every
  policy (``python -m repro.sched parity``).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..sim.scheduler import DesPolicy, RandomPolicy, SchedulingPolicy
from .fairness import FairnessMonitor, FairnessReport
from .policies import (
    CountingPolicy,
    MnPolicy,
    PriorityPolicy,
    QuantumPolicy,
    RealtimePolicy,
    RoundRobinPolicy,
)

__all__ = [
    "CountingPolicy",
    "FairnessMonitor",
    "FairnessReport",
    "MnPolicy",
    "POLICIES",
    "PriorityPolicy",
    "QuantumPolicy",
    "RealtimePolicy",
    "RoundRobinPolicy",
    "make_policy",
    "policy_names",
]

#: name -> factory(seed) -> fresh policy instance.  Deterministic given
#: (name, seed); only "random" and "mn" consume the seed at all.
POLICIES: Dict[str, Callable[[int], SchedulingPolicy]] = {
    "des": lambda seed: DesPolicy(),
    "random": lambda seed: RandomPolicy(seed),
    "rr": lambda seed: RoundRobinPolicy(),
    "quantum": lambda seed: QuantumPolicy(quantum=4),
    "priority": lambda seed: PriorityPolicy(),
    "realtime": lambda seed: RealtimePolicy(),
    "mn": lambda seed: MnPolicy(cores=2, seed=seed),
}


def policy_names() -> list[str]:
    return list(POLICIES)


def make_policy(name: str, seed: int = 0) -> SchedulingPolicy:
    """Instantiate a fresh policy by registry name."""

    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(POLICIES)}"
        ) from None
    return factory(seed)
