"""CLI for the scheduling-policy subsystem.

``python -m repro.sched parity`` re-runs the verify suite (invariants,
lifecycle conformance, linearizability fuzz, scenario storms) under
every scheduling policy and prints one verdict block per policy, with
per-scenario fairness numbers.  Exits nonzero when any check fails —
the ``policy-parity`` CI job gates on it.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import POLICIES
from .parity import run_parity


def _cmd_parity(args: argparse.Namespace) -> int:
    policies = args.policies.split(",") if args.policies else None
    registry = None
    if args.metrics:
        from ..obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
    results = run_parity(
        policies=policies, seed=args.seed, quick=args.quick, registry=registry
    )
    failed = [r for r in results if not r.ok]
    for r in results:
        verdict = "ok" if r.ok else "FAIL"
        print(f"policy={r.policy:<9} {verdict}")
        for check, status in r.checks.items():
            print(f"  {check:<11} {status}")
        if r.counters:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(r.counters.items()))
            print(f"  counters    {pairs}")
        for row in r.fairness:
            print(
                f"  {row['scenario']:<22} delivered={row['delivered']:<4}"
                f" parks={row['parks']:<5} wait_p99={row['wait_p99_cycles']:<8}"
                f" jain={row['fairness_jain']:<6}"
                + (f" STARVED={','.join(row['starved'])}" if row["starved"] else "")
            )
    if args.json:
        payload = {
            "command": "parity",
            "quick": args.quick,
            "seed": args.seed,
            "results": [r.to_dict() for r in results],
        }
        if args.metrics:
            payload["metrics"] = registry.snapshot()
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if failed:
        print(f"PARITY FAILED for: {', '.join(r.policy for r in failed)}", file=sys.stderr)
        return 1
    print(f"parity ok across {len(results)} policies")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched",
        description="Scheduling-policy subsystem: parity harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    parity = sub.add_parser(
        "parity", help="run the verify suite under each scheduling policy"
    )
    parity.add_argument(
        "--policies",
        default="",
        metavar="A,B",
        help=f"comma-separated policy names (default: all of {','.join(POLICIES)})",
    )
    parity.add_argument("--seed", type=int, default=0)
    parity.add_argument(
        "--quick", action="store_true", help="reduced cases/scenarios (CI smoke tier)"
    )
    parity.add_argument(
        "--metrics", action="store_true", help="include a metrics snapshot in --json"
    )
    parity.add_argument("--json", default="", metavar="PATH", help="write results as JSON")
    parity.set_defaults(fn=_cmd_parity)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
