"""Pluggable scheduling policies for the simulated multicore.

Every class here implements the :class:`~repro.sim.scheduler.SchedulingPolicy`
protocol, so any of them drops into a :class:`~repro.sim.scheduler.Scheduler`
in place of the default :class:`~repro.sim.scheduler.DesPolicy`.  None of
them touch the scheduler's fused fast lane — ``Scheduler.run()`` routes a
non-``DesPolicy`` run through the general loop, and the DES goldens stay
bit-identical because the default policy is untouched.

The policies model the regimes real lightweight-thread runtimes actually
schedule under (the single DES regime the Figure 5 numbers were measured
with is only one point in that space):

* :class:`QuantumPolicy` — preemptive round-robin with a fixed op quantum.
  ``quantum=1`` is exactly the old cooperative ``RoundRobinPolicy``
  (re-exported here for compatibility).
* :class:`PriorityPolicy` — fixed base priorities with aging: a waiter's
  effective priority improves the longer it waits, so low-priority tasks
  are delayed (priority inversion pressure) but never starved.
* :class:`RealtimePolicy` — earliest-deadline-first over per-task periods,
  the XNU-style realtime-periodic regime; deadline misses are counted.
* :class:`MnPolicy` — M:N task-to-core mapping: tasks are pinned to one of
  ``cores`` virtual run queues and idle cores steal from the busiest
  queue, migrating the stolen task.

Determinism contract
--------------------
Every policy is fully deterministic given its constructor arguments (the
only randomness, :class:`MnPolicy`'s steal-victim choice, draws from a
seeded ``random.Random``), so every scenario run under any policy is
reproducible from ``(scenario, policy, seed)`` alone.

Counters
--------
Each policy keeps plain-int scheduling counters (``preemptions``,
``quantum_expiries``, ``steals``, ``priority_boosts``, ``deadline_misses``
— whichever apply) in :attr:`CountingPolicy.counters` and publishes them
into a :class:`~repro.obs.metrics.MetricsRegistry` with a ``policy=``
label via :meth:`CountingPolicy.publish_counters`.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from ..sim.scheduler import SchedulingPolicy
from ..sim.tasks import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

__all__ = [
    "CountingPolicy",
    "QuantumPolicy",
    "RoundRobinPolicy",
    "PriorityPolicy",
    "RealtimePolicy",
    "MnPolicy",
    "DRIFT_PERIOD",
]

#: Picks between timer-drift perturbations in the op-count policies.
#:
#: A purely op-count scheduler (strict round-robin, fixed quanta, strict
#: core rotation) is perfectly periodic, so two tasks in a lock-free
#: retry loop can phase-lock into a livelock orbit: the paper's cell
#: poisoning race, replayed at the exact same relative offset forever
#: (receiver poisons cell *i* one op before the sender's commit CAS,
#: both advance to *i+1*, repeat).  Real preemptive schedulers never
#: exhibit this because timer interrupts drift relative to the
#: instruction stream.  We model that drift deterministically: every
#: ``DRIFT_PERIOD``-th pick rotates the ready structure one extra slot,
#: shifting the tasks' relative phase by one op so no fixed-period orbit
#: survives.  Prime and much larger than any pinned-order unit test, so
#: the legacy strict-rotation contracts are unaffected.
DRIFT_PERIOD = 61


class CountingPolicy(SchedulingPolicy):
    """Base for the policy pack: scheduling counters + metrics emission.

    Subclasses bump :attr:`counters` entries as decisions happen; the
    scheduler never reads them.  ``name`` labels metric series and grid
    rows.
    """

    #: Registry/display name; subclasses override.
    name = "counting"

    def __init__(self) -> None:
        self.counters: dict[str, int] = {"picks": 0, "preemptions": 0}
        self._last: Optional[Task] = None

    # -- bookkeeping helpers ------------------------------------------

    def _picked(self, task: Task) -> Task:
        """Account one scheduling decision (call from ``next()``)."""

        self.counters["picks"] += 1
        last = self._last
        if last is not None and task is not last and last.state is TaskState.RUNNABLE:
            self.counters["preemptions"] += 1
        self._last = task
        return task

    def forget(self, task: Task) -> None:
        if self._last is task:
            self._last = None

    def reset(self) -> None:
        for key in self.counters:
            self.counters[key] = 0
        self._last = None

    def publish_counters(self, registry: "MetricsRegistry") -> None:
        """Emit every counter as ``sched_<name>_total{policy=...}``."""

        for key, value in sorted(self.counters.items()):
            registry.counter(f"sched_{key}_total", policy=self.name).inc(value)


class QuantumPolicy(CountingPolicy):
    """Preemptive round-robin with a fixed per-stint op quantum.

    A picked task runs up to ``quantum`` consecutive ops before it is
    descheduled to the back of the FIFO ready queue (counted as a
    ``quantum_expiries``).  A voluntary ``Spin``/``Yield`` surrenders the
    remainder of the quantum, as on a real runtime.  ``quantum=1``
    reproduces the old cooperative ``RoundRobinPolicy`` exactly: one op
    per pick, strict FIFO rotation.

    Every :data:`DRIFT_PERIOD`-th pick rotates the ready queue one extra
    slot (a ``timer_drifts`` counter) so the rotation cannot phase-lock
    with a lock-free retry loop — see :data:`DRIFT_PERIOD`.
    """

    name = "quantum"

    def __init__(self, quantum: int = 4) -> None:
        super().__init__()
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self.quantum = quantum
        self.counters["quantum_expiries"] = 0
        self.counters["timer_drifts"] = 0
        self._queue: deque[Task] = deque()
        self._queued: set[int] = set()
        self._left = 0  # ops remaining in the current stint
        self._until_drift = DRIFT_PERIOD

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._queued.clear()
        self._left = 0
        self._until_drift = DRIFT_PERIOD

    def _enqueue(self, task: Task) -> None:
        if task.tid not in self._queued:
            self._queued.add(task.tid)
            self._queue.append(task)

    def on_runnable(self, task: Task) -> None:
        self._enqueue(task)

    def requeue(self, task: Task) -> None:
        self._enqueue(task)

    def forget(self, task: Task) -> None:
        super().forget(task)
        self._queued.discard(task.tid)

    def next(self) -> Optional[Task]:
        queue = self._queue
        self._until_drift -= 1
        if self._until_drift <= 0:
            self._until_drift = DRIFT_PERIOD
            if len(queue) > 1:
                queue.rotate(-1)
                self.counters["timer_drifts"] += 1
        while queue:
            task = queue.popleft()
            self._queued.discard(task.tid)
            if task.state is TaskState.RUNNABLE:
                self._left = self.quantum - 1
                return self._picked(task)
        return None

    def keep_running(self, task: Task) -> bool:
        if self._left > 0:
            self._left -= 1
            return True
        self.counters["quantum_expiries"] += 1
        return False

    def on_voluntary_yield(self, task: Task) -> None:
        # A spinning task is only re-reading unchanged state: burning the
        # rest of its quantum on it would be pure stutter.
        self._left = 0


class RoundRobinPolicy(QuantumPolicy):
    """Cooperative round-robin with a per-pick quantum of one op.

    Historically defined in :mod:`repro.sim.scheduler`; now the
    ``quantum=1`` corner of :class:`QuantumPolicy` (still importable from
    its old home).
    """

    name = "rr"

    def __init__(self) -> None:
        super().__init__(quantum=1)


class PriorityPolicy(CountingPolicy):
    """Fixed base priorities with aging (lower value = more urgent).

    Each task's base priority comes from ``priority_of`` (default:
    ``tid % levels``, spreading tasks across the levels).  While a task
    waits in the ready set, its *effective* priority improves by one
    level every ``aging`` scheduling decisions; being picked resets the
    age.  Aging bounds starvation: a task ``levels * aging`` picks old
    outranks everything.  Picks that only an aged priority could have won
    are counted as ``priority_boosts``.
    """

    name = "priority"

    def __init__(
        self,
        levels: int = 4,
        aging: int = 16,
        priority_of: Optional[Callable[[Task], int]] = None,
    ) -> None:
        super().__init__()
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if aging < 1:
            raise ValueError(f"aging must be >= 1, got {aging}")
        self.levels = levels
        self.aging = aging
        self.priority_of = priority_of or (lambda task: task.tid % levels)
        self.counters["priority_boosts"] = 0
        #: tid -> (task, base priority, pick-count at enqueue)
        self._ready: dict[int, tuple[Task, int, int]] = {}
        self._decisions = 0

    def reset(self) -> None:
        super().reset()
        self._ready.clear()
        self._decisions = 0

    def _enqueue(self, task: Task) -> None:
        if task.tid not in self._ready:
            self._ready[task.tid] = (task, self.priority_of(task), self._decisions)

    def on_runnable(self, task: Task) -> None:
        self._enqueue(task)

    def requeue(self, task: Task) -> None:
        self._enqueue(task)

    def forget(self, task: Task) -> None:
        super().forget(task)
        self._ready.pop(task.tid, None)

    def _effective(self, base: int, enqueued: int) -> int:
        return base - (self._decisions - enqueued) // self.aging

    def next(self) -> Optional[Task]:
        best_tid = -1
        best_key: Optional[tuple[int, int]] = None
        best_base = 0
        dead: list[int] = []
        for tid, (task, base, enqueued) in self._ready.items():
            if task.state is not TaskState.RUNNABLE:
                dead.append(tid)
                continue
            key = (self._effective(base, enqueued), tid)
            if best_key is None or key < best_key:
                best_key, best_tid, best_base = key, tid, base
        for tid in dead:
            del self._ready[tid]
        if best_key is None:
            return None
        task, _, _ = self._ready.pop(best_tid)
        self._decisions += 1
        if best_key[0] < best_base:
            self.counters["priority_boosts"] += 1
        return self._picked(task)


class RealtimePolicy(CountingPolicy):
    """Earliest-deadline-first over per-task periods (realtime-periodic).

    Each task has a period in *scheduling decisions* (``period_of``,
    default ``base_period * (1 + tid % spread)`` — mixed-rate task sets).
    Becoming runnable releases a job whose deadline is one period away;
    ``next()`` picks the earliest deadline (ties: lowest tid).  Picks
    past the recorded deadline count as ``deadline_misses`` — the grid's
    signal for how hard a policy squeezes latecomers.  Decisions, not
    clocks, measure time so the policy behaves identically under
    :class:`~repro.sim.costmodel.NullCostModel` (exploration) and the
    cache-coherence cost model.
    """

    name = "realtime"

    def __init__(
        self,
        base_period: int = 8,
        spread: int = 3,
        period_of: Optional[Callable[[Task], int]] = None,
    ) -> None:
        super().__init__()
        if base_period < 1:
            raise ValueError(f"base_period must be >= 1, got {base_period}")
        if spread < 1:
            raise ValueError(f"spread must be >= 1, got {spread}")
        self.base_period = base_period
        self.spread = spread
        self.period_of = period_of or (
            lambda task: self.base_period * (1 + task.tid % self.spread)
        )
        self.counters["deadline_misses"] = 0
        #: tid -> (task, absolute deadline in decisions)
        self._ready: dict[int, tuple[Task, int]] = {}
        self._decisions = 0

    def reset(self) -> None:
        super().reset()
        self._ready.clear()
        self._decisions = 0

    def _enqueue(self, task: Task) -> None:
        if task.tid not in self._ready:
            self._ready[task.tid] = (task, self._decisions + self.period_of(task))

    def on_runnable(self, task: Task) -> None:
        self._enqueue(task)

    def requeue(self, task: Task) -> None:
        self._enqueue(task)

    def forget(self, task: Task) -> None:
        super().forget(task)
        self._ready.pop(task.tid, None)

    def next(self) -> Optional[Task]:
        best_tid = -1
        best_key: Optional[tuple[int, int]] = None
        dead: list[int] = []
        for tid, (task, deadline) in self._ready.items():
            if task.state is not TaskState.RUNNABLE:
                dead.append(tid)
                continue
            key = (deadline, tid)
            if best_key is None or key < best_key:
                best_key, best_tid = key, tid
        for tid in dead:
            del self._ready[tid]
        if best_key is None:
            return None
        task, deadline = self._ready.pop(best_tid)
        self._decisions += 1
        if self._decisions > deadline:
            self.counters["deadline_misses"] += 1
        return self._picked(task)


class MnPolicy(CountingPolicy):
    """M:N task-to-core mapping with work stealing.

    ``cores`` virtual run queues; a task's home queue is ``tid % cores``
    at spawn.  Cores take turns making the scheduling decision (strict
    rotation, one decision per turn, like per-core dispatch loops
    interleaving).  A core whose queue is empty steals from the *back*
    of a seeded-random victim among the non-empty queues, migrates the
    stolen task (its home queue becomes the thief), and counts a
    ``steals``.  The quantum bounds how long one task monopolizes its
    core before rotating (``quantum_expiries``).

    Every :data:`DRIFT_PERIOD`-th pick advances the core rotation one
    extra turn (a ``timer_drifts`` counter), so strict core rotation
    cannot phase-lock with a lock-free retry loop — see
    :data:`DRIFT_PERIOD`.
    """

    name = "mn"

    def __init__(self, cores: int = 2, quantum: int = 4, seed: int = 0) -> None:
        super().__init__()
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self.cores = cores
        self.quantum = quantum
        self.seed = seed
        self.rng = random.Random(seed)
        self.counters["steals"] = 0
        self.counters["quantum_expiries"] = 0
        self.counters["timer_drifts"] = 0
        self._queues: list[deque[Task]] = [deque() for _ in range(cores)]
        self._queued: set[int] = set()
        self._home: dict[int, int] = {}
        self._turn = 0
        self._left = 0
        self._until_drift = DRIFT_PERIOD

    def reset(self) -> None:
        super().reset()
        for queue in self._queues:
            queue.clear()
        self._queued.clear()
        self._home.clear()
        self.rng = random.Random(self.seed)
        self._turn = 0
        self._left = 0
        self._until_drift = DRIFT_PERIOD

    def _enqueue(self, task: Task) -> None:
        if task.tid in self._queued:
            return
        core = self._home.setdefault(task.tid, task.tid % self.cores)
        self._queued.add(task.tid)
        self._queues[core].append(task)

    def on_runnable(self, task: Task) -> None:
        self._enqueue(task)

    def requeue(self, task: Task) -> None:
        self._enqueue(task)

    def forget(self, task: Task) -> None:
        super().forget(task)
        self._queued.discard(task.tid)
        self._home.pop(task.tid, None)

    def _pop_runnable(self, queue: deque[Task], from_back: bool) -> Optional[Task]:
        while queue:
            task = queue.pop() if from_back else queue.popleft()
            self._queued.discard(task.tid)
            if task.state is TaskState.RUNNABLE:
                return task
        return None

    def next(self) -> Optional[Task]:
        self._until_drift -= 1
        if self._until_drift <= 0:
            self._until_drift = DRIFT_PERIOD
            if self.cores > 1:
                self._turn += 1
                self.counters["timer_drifts"] += 1
        # One decision per core turn; a fully idle machine scans all
        # cores once before giving up.
        for _ in range(self.cores):
            core = self._turn % self.cores
            self._turn += 1
            task = self._pop_runnable(self._queues[core], from_back=False)
            if task is None:
                victims = [
                    i for i, q in enumerate(self._queues) if q and i != core
                ]
                while victims and task is None:
                    victim = victims.pop(self.rng.randrange(len(victims)))
                    task = self._pop_runnable(self._queues[victim], from_back=True)
                if task is None:
                    continue
                self.counters["steals"] += 1
                self._home[task.tid] = core  # migration
            self._left = self.quantum - 1
            return self._picked(task)
        return None

    def keep_running(self, task: Task) -> bool:
        if self._left > 0:
            self._left -= 1
            return True
        self.counters["quantum_expiries"] += 1
        return False

    def on_voluntary_yield(self, task: Task) -> None:
        self._left = 0
