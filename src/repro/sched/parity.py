"""Policy parity: re-run the verify suite under every scheduling policy.

The channel algorithms were verified under two regimes (the DES policy
and seeded-random scheduling).  This harness proves the *same* suite —
structural invariants, cell-lifecycle conformance, linearizability
fuzzing, close/cancel storms — holds under every policy in
:data:`repro.sched.POLICIES`, and measures what correctness checks
cannot: per-waiter wait-time distributions and starvation, per policy,
via :class:`~repro.sched.fairness.FairnessMonitor`.

One :class:`ParityResult` per policy: named checks (``ok`` or a failure
message), per-scenario fairness rows, and the policy's aggregated
scheduling counters.  ``python -m repro.sched parity`` drives it from
the command line; the ``policy-parity`` CI job runs the full matrix.

All runs use the cache-coherence :class:`~repro.sim.costmodel.CostModel`:
fairness waits are measured in cycles, and the DES policy needs
advancing clocks to rotate between tasks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core import BufferedChannel, RendezvousChannel
from ..errors import InvariantViolation
from ..sim.costmodel import CostModel
from ..sim.scheduler import Scheduler
from ..scenarios import SCENARIOS, scenario as make_scenario
from ..scenarios.dsl import run_scenario
from ..verify import (
    CellLifecycleChecker,
    Lemma1Checker,
    ProducerConsumerScenario,
    fuzz_channel,
)
from . import POLICIES, make_policy
from .fairness import FairnessMonitor
from .policies import CountingPolicy

__all__ = ["ParityResult", "run_parity", "QUICK_SCENARIOS"]

#: Scenario subset for the quick (tier-1 / smoke) tier.
QUICK_SCENARIOS = ("steady-2p2c", "slow-consumer-2p2c", "cancel-storm-3p3c")

_CheckError = (AssertionError, InvariantViolation)


class ParityResult:
    """Verify-suite outcome for one policy."""

    def __init__(self, policy: str) -> None:
        self.policy = policy
        self.checks: dict[str, str] = {}
        self.fairness: list[dict[str, Any]] = []
        self.counters: dict[str, int] = {}

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(v == "ok" for v in self.checks.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "ok": self.ok,
            "checks": dict(self.checks),
            "fairness": list(self.fairness),
            "counters": dict(self.counters),
        }


def _fold_counters(result: ParityResult, policy: Any) -> None:
    if isinstance(policy, CountingPolicy):
        for key, value in policy.counters.items():
            result.counters[key] = result.counters.get(key, 0) + value


def _run_check(
    result: ParityResult, name: str, fn: Callable[[], None]
) -> None:
    try:
        fn()
    except _CheckError as exc:
        result.checks[name] = f"FAIL: {exc}"
    else:
        result.checks[name] = "ok"


def _check_invariants(result: ParityResult, name: str, seed: int, quick: bool) -> None:
    """Structural invariants + FIFO under the policy (both channel kinds)."""

    per = 4 if quick else 8
    for label, factory, rendezvous in (
        ("rendezvous", lambda: RendezvousChannel(seg_size=4), True),
        ("buffered", lambda: BufferedChannel(2, seg_size=4), False),
    ):
        policy = make_policy(name, seed)
        sched = Scheduler(policy=policy, cost_model=CostModel())
        scn = ProducerConsumerScenario(factory, producers=2, consumers=2, per_producer=per)
        ctx = scn.build(sched)
        channel = ctx["channel"]
        if rendezvous:
            sched.add_hook(Lemma1Checker(channel))
        sched.add_hook(CellLifecycleChecker.for_channel(channel))
        sched.run()
        scn.check(ctx, sched)
        _fold_counters(result, policy)


def _check_fuzz(result: ParityResult, name: str, seed: int, quick: bool) -> None:
    """Linearizability fuzz with the policy driving the interleavings."""

    cases = 8 if quick else 25
    for capacity, factory in (
        (0, lambda: RendezvousChannel(seg_size=4)),
        (1, lambda: BufferedChannel(1, seg_size=4)),
    ):
        fuzz_channel(
            factory,
            capacity,
            cases=cases,
            seed=seed,
            policy_factory=lambda s: make_policy(name, s),
            cost_model_factory=CostModel,
        )


def _check_lifecycle(result: ParityResult, name: str, seed: int, quick: bool) -> None:
    """Close/cancel storm with cell-lifecycle conformance enforced."""

    scn = make_scenario("cancel-storm-3p3c", seed=seed)
    channel = scn.make_channel()
    policy = make_policy(name, seed)
    run = run_scenario(
        scn,
        policy=policy,
        channel=channel,
        hooks=[CellLifecycleChecker.for_channel(channel)],
    )
    assert not run.deadlocked, "cancel storm stalled (canceller never unblocked waiters)"
    _fold_counters(result, policy)


def _check_scenarios(
    result: ParityResult,
    name: str,
    seed: int,
    quick: bool,
    registry: Any = None,
) -> None:
    """Run the scenario catalogue; collect fairness + delivery per run."""

    names = QUICK_SCENARIOS if quick else tuple(SCENARIOS)
    for scn_name in names:
        scn = make_scenario(scn_name, seed=seed)
        policy = make_policy(name, seed)
        monitor = FairnessMonitor(policy=name)
        run = run_scenario(scn, policy=policy, hooks=[monitor])
        assert not run.deadlocked, f"scenario {scn_name} stalled under {name}"
        report = monitor.publish(registry) if registry is not None else monitor.report()
        row = report.to_dict()
        row.update(
            scenario=scn_name,
            makespan=run.makespan,
            delivered=run.delivered,
        )
        result.fairness.append(row)
        _fold_counters(result, policy)
        if registry is not None and isinstance(policy, CountingPolicy):
            policy.publish_counters(registry)


def run_parity(
    policies: Optional[list[str]] = None,
    seed: int = 0,
    quick: bool = False,
    registry: Any = None,
) -> list[ParityResult]:
    """Run the verify suite under each policy; returns one result each.

    Never raises on a check failure — failures land in
    :attr:`ParityResult.checks` so one broken policy doesn't mask the
    rest (the CLI turns any failure into a nonzero exit).
    """

    names = policies if policies is not None else list(POLICIES)
    results = []
    for name in names:
        if name not in POLICIES:
            raise KeyError(
                f"unknown policy {name!r}; available: {', '.join(POLICIES)}"
            )
        result = ParityResult(name)
        _run_check(result, "invariants", lambda: _check_invariants(result, name, seed, quick))
        _run_check(result, "fuzz", lambda: _check_fuzz(result, name, seed, quick))
        _run_check(result, "lifecycle", lambda: _check_lifecycle(result, name, seed, quick))
        _run_check(
            result,
            "scenarios",
            lambda: _check_scenarios(result, name, seed, quick, registry),
        )
        results.append(result)
    return results
