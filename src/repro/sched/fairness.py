"""Per-waiter wait-time accounting: the fairness lens of the policy grid.

A :class:`FairnessMonitor` is a scheduler hook (``sched.add_hook``) that
measures, for every actual suspension, how long the waiter stayed parked —
from the ``ParkTask`` op that suspended it to its first op after resuming.
Waits are recorded in simulated cycles (the task-clock delta) *and* in
scheduler steps (the global op-counter delta), so the numbers stay
meaningful under :class:`~repro.sim.costmodel.NullCostModel` runs where
clocks never advance.

Per-task distributions feed the starvation check the claim/release
fairness literature uses: a waiter whose mean wait exceeds
``starvation_factor`` × the median of all per-task means is flagged as
starved.  :meth:`publish` emits everything through
:mod:`repro.obs.metrics` with ``policy=`` labels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..concurrent.ops import Op, ParkTask
from ..sim.tasks import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..sim.scheduler import Scheduler

__all__ = ["FairnessMonitor", "FairnessReport"]


def _percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""

    import math

    rank = max(1, math.ceil(len(sorted_values) * p / 100))
    return sorted_values[rank - 1]


class FairnessReport:
    """Aggregated wait-time statistics for one policy run."""

    __slots__ = (
        "policy",
        "waits_cycles",
        "waits_steps",
        "per_task_cycles",
        "starvation_factor",
    )

    def __init__(
        self,
        policy: str,
        waits_cycles: list[int],
        waits_steps: list[int],
        per_task_cycles: dict[str, list[int]],
        starvation_factor: float,
    ) -> None:
        self.policy = policy
        self.waits_cycles = waits_cycles
        self.waits_steps = waits_steps
        self.per_task_cycles = per_task_cycles
        self.starvation_factor = starvation_factor

    @property
    def parks(self) -> int:
        return len(self.waits_cycles)

    def percentile(self, p: float) -> float:
        if not self.waits_cycles:
            return 0.0
        return _percentile(sorted(self.waits_cycles), p)

    @property
    def jain_index(self) -> float:
        """Jain's fairness index over per-task mean waits (1.0 = fair).

        ``(sum x)^2 / (n * sum x^2)`` over the per-task means; 1.0 when
        every waiter waits the same on average, ``1/n`` when one waiter
        absorbs all the waiting.  Tasks that never parked don't count.
        """

        means = [sum(w) / len(w) for w in self.per_task_cycles.values() if w]
        if not means:
            return 1.0
        total = sum(means)
        squares = sum(m * m for m in means)
        if squares == 0:
            return 1.0
        return (total * total) / (len(means) * squares)

    @property
    def starved(self) -> list[str]:
        """Task names whose mean wait exceeds factor × median mean wait."""

        means = {
            name: sum(w) / len(w) for name, w in self.per_task_cycles.items() if w
        }
        if len(means) < 2:
            return []
        ordered = sorted(means.values())
        median = ordered[len(ordered) // 2]
        if median <= 0:
            return []
        return sorted(
            name
            for name, mean in means.items()
            if mean > self.starvation_factor * median
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "parks": self.parks,
            "wait_p50_cycles": self.percentile(50),
            "wait_p99_cycles": self.percentile(99),
            "wait_max_cycles": max(self.waits_cycles, default=0),
            "fairness_jain": round(self.jain_index, 4),
            "starved": self.starved,
        }


class FairnessMonitor:
    """Scheduler hook recording how long each waiter stays parked.

    The hook fires after the scheduler applied each op: a ``ParkTask``
    that left the task ``PARKED`` opens a wait (an op that consumed a
    pending permit never suspended and opens nothing); the task's next
    observed op closes it.  Attach before running, read
    :meth:`report` after.  One monitor can span several runs under the
    same policy — waits accumulate.
    """

    def __init__(self, policy: str = "?", starvation_factor: float = 4.0) -> None:
        self.policy = policy
        self.starvation_factor = starvation_factor
        self._open: dict[int, tuple[int, int]] = {}  # tid -> (clock, step)
        self._waits_cycles: list[int] = []
        self._waits_steps: list[int] = []
        self._per_task: dict[str, list[int]] = {}

    def __call__(self, sched: "Scheduler", task: Task, op: Op) -> None:
        opened = self._open.pop(task.tid, None)
        if opened is not None:
            clock0, step0 = opened
            wait_cycles = task.clock - clock0
            self._waits_cycles.append(wait_cycles)
            self._waits_steps.append(sched.total_steps - step0)
            self._per_task.setdefault(task.name, []).append(wait_cycles)
        if type(op) is ParkTask and task.state is TaskState.PARKED:
            self._open[task.tid] = (task.clock, sched.total_steps)

    def report(self) -> FairnessReport:
        return FairnessReport(
            self.policy,
            self._waits_cycles,
            self._waits_steps,
            self._per_task,
            self.starvation_factor,
        )

    def publish(self, registry: "MetricsRegistry") -> FairnessReport:
        """Fold the observed waits into ``registry`` and return the report.

        Emits ``sched_wait_cycles{policy=...}`` (aggregate histogram),
        ``sched_wait_cycles{policy=...,task=...}`` per waiter, and the
        ``sched_parks_total{policy=...}`` counter.
        """

        report = self.report()
        agg = registry.histogram("sched_wait_cycles", policy=self.policy)
        for wait in self._waits_cycles:
            agg.observe(wait)
        for name, waits in sorted(self._per_task.items()):
            series = registry.histogram(
                "sched_wait_cycles", policy=self.policy, task=name
            )
            for wait in waits:
                series.observe(wait)
        registry.counter("sched_parks_total", policy=self.policy).inc(report.parks)
        return report
