"""The coroutine-management API of the paper (Listing 1), as waiters.

The paper's environment exposes::

    interface Coroutine {
        fun tryUnpark(): Boolean
        fun interrupt()
        fun park(onInterrupt: lambda () -> Unit)
    }
    fun curCor(): Coroutine

We realize one *suspension instance* as a :class:`Waiter` — a fresh object per
``park`` site, as in Kotlin where each suspension creates a new continuation.
Channel cells store waiters; ``tryUnpark``/``interrupt`` target a specific
waiter, so a task that retries its operation gets a clean slate each attempt.

The waiter's life-cycle is itself implemented with the simulated CAS, which
means *every race the paper's algorithm must survive between resumption and
interruption is explorable by the model checker*:

::

            tryUnpark                park
    INIT ─────────────▶ PERMIT ─────────────▶ RESUMED        (unpark-before-park)
    INIT ─────────────▶ PARKED ─────────────▶ RESUMED        (park; tryUnpark)
    INIT ─────────────▶ INTERRUPTED                          (interrupt-before-park;
                                                              handler runs at park)
    PARKED ───────────▶ INTERRUPTED                          (interrupt; handler runs
                                                              in the canceller, then the
                                                              parked task is woken with
                                                              ``Interrupted`` thrown in)

``tryUnpark`` returns ``False`` iff the waiter was already interrupted —
exactly the contract ``updCellSend``/``updCellRcv`` rely on when a rendezvous
partner turns out to be cancelled (Listing 3, lines 20–23).

The ``onInterrupt`` handler is a *generator function* (it cleans the channel
cell with atomic ops).  Per the paper it runs after the interruption takes
effect: in the canceller's context for a parked waiter, or in the parker's own
context when the interruption arrived before ``park``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional

from ..concurrent.cells import RefCell
from ..concurrent.ops import CURRENT_TASK, Cas, CurrentTask, ParkTask, Read, UnparkTask, read_of
from ..errors import Interrupted, RetryWakeup

__all__ = [
    "Waiter",
    "WaiterState",
    "make_waiter",
    "INIT",
    "PARKED",
    "PERMIT",
    "RESUMED",
    "INTERRUPTED",
]

_waiter_ids = itertools.count()


class WaiterState:
    """Named sentinel for a waiter life-cycle state."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


INIT = WaiterState("INIT")
PARKED = WaiterState("PARKED")
PERMIT = WaiterState("PERMIT")
RESUMED = WaiterState("RESUMED")
INTERRUPTED = WaiterState("INTERRUPTED")
#: Resumed with the "retry at a fresh cell" signal (select support).
RETRIED = WaiterState("RETRIED")
#: Retry granted before the waiter parked (permit-style).
RETRY_PERMIT = WaiterState("RETRY_PERMIT")

#: ``onInterrupt`` handlers are nullary generator functions.
InterruptHandler = Callable[[], Generator[Any, Any, None]]


class Waiter:
    """One suspension of one task (the paper's ``Coroutine`` handle)."""

    __slots__ = ("task", "_state", "handler", "wid", "interrupt_cause")

    def __init__(self, task: Any):
        #: Driver-level task handle to park/unpark.
        self.task = task
        self._state = RefCell(INIT, name=f"waiter{next(_waiter_ids)}.state")
        #: Registered ``onInterrupt`` cleanup, set by :meth:`park`.
        self.handler: Optional[InterruptHandler] = None
        self.wid = self._state.loc_id
        #: Optional richer exception to raise instead of plain
        #: :class:`Interrupted` (e.g. "channel closed"); set by
        #: :meth:`interrupt` before its CAS, read by the cancelled
        #: operation after unwinding.
        self.interrupt_cause: Optional[BaseException] = None

    @classmethod
    def of(cls, task: Any) -> "Waiter":
        """Build and publish a waiter for an already-known task handle.

        The non-generator half of :meth:`make`: hot paths that already
        yielded :data:`~repro.concurrent.ops.CURRENT_TASK` themselves
        call this directly to skip a generator frame.
        """

        waiter = cls(task)
        try:
            task.current_waiter = waiter
        except AttributeError:  # driver task types without the slot
            pass
        return waiter

    @classmethod
    def make(cls) -> Generator[Any, Any, "Waiter"]:
        """``curCor()`` for this waiter kind: build one for the running task.

        Also publishes the waiter on ``task.current_waiter`` so external
        cancellation (:func:`repro.runtime.api.interrupt_task`) can find
        the task's in-flight suspension.
        """

        return cls.of((yield CURRENT_TASK))

    # -- non-simulated introspection (tests, between scheduler steps) ----

    @property
    def state(self) -> WaiterState:
        return self._state.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Waiter of {getattr(self.task, 'name', self.task)!r} {self.state!r}>"

    # ------------------------------------------------------------------
    # Listing 1 API (generator methods, driven via the op protocol)
    # ------------------------------------------------------------------

    def park(self, on_interrupt: Optional[InterruptHandler] = None) -> Generator[Any, Any, None]:
        """Suspend until resumed; raises :class:`Interrupted` on cancellation.

        Completes immediately (without suspension) if :meth:`try_unpark`
        already granted a permit.  If the waiter was interrupted before
        parking, the handler runs here, in the parker's own context, and
        the interruption takes effect now — "with the following park
        invocation" (Section 2).
        """

        self.handler = on_interrupt
        while True:
            state = yield read_of(self._state)
            if state is INIT:
                ok = yield Cas(self._state, INIT, PARKED)
                if not ok:
                    continue
                # Actually suspend.  Resumes normally after a successful
                # tryUnpark, or unwinds with Interrupted after interrupt().
                yield ParkTask(self)
                return
            if state is PERMIT:
                ok = yield Cas(self._state, PERMIT, RESUMED)
                if ok:
                    return  # unpark won the race; no suspension needed
                continue
            if state is RETRY_PERMIT:
                raise RetryWakeup()  # retried before parking
            if state is INTERRUPTED:
                if on_interrupt is not None:
                    yield from on_interrupt()
                raise Interrupted()
            raise AssertionError(f"park on a finished waiter: {state!r}")

    def try_unpark(self) -> Generator[Any, Any, bool]:
        """Resume the waiter; ``False`` iff it was already interrupted.

        May be called before :meth:`park` (grants a permit).  At most one
        resumer can succeed; a second concurrent ``try_unpark`` on the
        same waiter returns ``False``.
        """

        while True:
            state = yield read_of(self._state)
            if state is INIT:
                ok = yield Cas(self._state, INIT, PERMIT)
                if ok:
                    return True
                continue
            if state is PARKED:
                ok = yield Cas(self._state, PARKED, RESUMED)
                if ok:
                    yield UnparkTask(self.task, interrupt=False)
                    return True
                continue
            # INTERRUPTED, or someone else already resumed it.
            return False

    def try_unpark_retry(self) -> Generator[Any, Any, bool]:
        """Resume the waiter with the *retry* signal (select support).

        The woken operation abandons its current cell (the caller has
        already neutralized it) and re-reserves a fresh one.  ``False``
        iff the waiter was already resumed or interrupted.
        """

        while True:
            state = yield read_of(self._state)
            if state is INIT:
                ok = yield Cas(self._state, INIT, RETRY_PERMIT)
                if ok:
                    return True
                continue
            if state is PARKED:
                ok = yield Cas(self._state, PARKED, RETRIED)
                if ok:
                    yield UnparkTask(self.task, retry=True)
                    return True
                continue
            return False

    def interrupt(self, cause: Optional[BaseException] = None) -> Generator[Any, Any, bool]:
        """Cancel the waiter; ``True`` iff the interruption took effect.

        For a parked waiter the registered ``onInterrupt`` handler runs
        *here, in the canceller's context* (it must clean the channel
        cell before the cancelled operation unwinds), then the parked
        task is woken with :class:`Interrupted`.  Returns ``False`` when
        the waiter was already resumed (cancellation lost the race).

        ``cause`` (e.g. a "channel closed" exception) is published on
        :attr:`interrupt_cause` before the interruption takes effect, so
        the cancelled operation can surface a precise error.  When
        several cancellers race with distinct causes, the surviving
        cause may come from a losing canceller; all our callers use
        interchangeable causes, so this is benign.
        """

        if cause is not None:
            self.interrupt_cause = cause
        while True:
            state = yield read_of(self._state)
            if state is INIT:
                ok = yield Cas(self._state, INIT, INTERRUPTED)
                if ok:
                    return True  # handler will run at the waiter's park()
                continue
            if state is PARKED:
                ok = yield Cas(self._state, PARKED, INTERRUPTED)
                if ok:
                    handler = self.handler
                    if handler is not None:
                        yield from handler()
                    yield UnparkTask(self.task, interrupt=True)
                    return True
                continue
            return False  # PERMIT / RESUMED / INTERRUPTED: too late


def make_waiter() -> Generator[Any, Any, Waiter]:
    """``curCor()``: a fresh :class:`Waiter` for the running task."""

    return (yield from Waiter.make())
