"""Coroutine management (Listing 1): waiters, park/tryUnpark/interrupt."""

from .api import busy_work, cooperative_yield, interrupt_task, park_current
from .waiter import (
    INIT,
    INTERRUPTED,
    PARKED,
    PERMIT,
    RESUMED,
    Waiter,
    WaiterState,
    make_waiter,
)

__all__ = [
    "Waiter",
    "WaiterState",
    "make_waiter",
    "INIT",
    "PARKED",
    "PERMIT",
    "RESUMED",
    "INTERRUPTED",
    "park_current",
    "interrupt_task",
    "cooperative_yield",
    "busy_work",
]
