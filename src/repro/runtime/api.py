"""Convenience runtime helpers layered on the Waiter primitive.

These helpers are what user-facing code (examples, the bench harness,
tests) uses; the channel algorithms themselves work with
:class:`~repro.runtime.waiter.Waiter` directly because they must CAS the
waiter into a cell *before* parking.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.ops import Spin, Work, Yield
from .waiter import InterruptHandler, Waiter, make_waiter

__all__ = ["park_current", "interrupt_task", "cooperative_yield", "busy_work"]


def park_current(on_interrupt: Optional[InterruptHandler] = None) -> Generator[Any, Any, Waiter]:
    """Create a fresh waiter for the running task and park on it.

    Returns the waiter (already resumed) so callers can inspect it.
    Mostly useful in tests and small examples; channel code inlines the
    two steps around its cell CAS.
    """

    waiter = yield from make_waiter()
    yield from waiter.park(on_interrupt)
    return waiter


def interrupt_task(task: Any) -> Generator[Any, Any, bool]:
    """Cancel *task*'s in-flight suspension (external cancellation).

    Spins until the target publishes a waiter (``curCor()``) or finishes.
    Returns ``True`` if an interruption took effect.  Intended for DES and
    random-schedule runs; exhaustive exploration scenarios should
    interrupt a concrete waiter instead, to keep the schedule space
    finite.
    """

    while True:
        waiter = getattr(task, "current_waiter", None)
        if waiter is not None:
            ok = yield from waiter.interrupt()
            return ok
        if task.done:
            return False
        yield Spin("interrupt-task-wait")


def cooperative_yield() -> Generator[Any, Any, None]:
    """Yield the virtual processor once."""

    yield Yield()


def busy_work(cycles: int) -> Generator[Any, Any, None]:
    """Consume ``cycles`` of non-contended local work (benchmark idiom)."""

    yield Work(cycles)
