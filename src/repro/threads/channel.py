"""OS-thread adapter: a ``BlockingChannel`` for preemptive threads.

The generator algorithm runs unchanged; this driver provides the
environment contract differently from the simulator:

* **atomicity** — every op's effect is applied under one channel-wide
  lock, giving the sequentially-consistent single-word atomics of §2.
  (Under CPython's GIL this costs little and makes the memory model
  explicit rather than relying on bytecode-level atomicity.)
* **parking** — a per-suspension :class:`threading.Event`; the permit
  flags handle unpark-before-park, guarded by the same op lock;
* **preemption** — real: the OS interleaves threads between ops, so this
  adapter doubles as a GIL-preemptive stress-test harness for the
  algorithm (see ``tests/test_threads_adapter.py``).

Cancellation of a blocked thread is supported through ``close()`` /
``cancel()`` (which interrupt waiters via the normal protocol); there is
no per-operation cancellation API for threads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Generator, Optional

from ..concurrent.ops import (
    CurrentTask,
    Op,
    ParkTask,
    UnparkTask,
    apply_memory_op,
    is_memory_op,
)
from ..core.channel import make_channel
from ..core.segments import DEFAULT_SEGMENT_SIZE
from ..errors import ChannelClosedForReceive, Interrupted, RetryWakeup
from ..obs.events import EventBus, emit_op_events

__all__ = ["BlockingChannel", "select_blocking"]

#: One lock serializes op application across *all* blocking channels: a
#: cross-channel ``select`` needs its steps atomic with every channel it
#: touches (and under CPython this mirrors the GIL's reality anyway).
_GLOBAL_OP_LOCK = threading.Lock()


class _ThreadTaskHandle:
    """Per-operation task object for the thread driver."""

    __slots__ = ("event", "unpark_pending", "interrupt_pending", "retry_pending", "current_waiter", "done")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.unpark_pending = False
        self.interrupt_pending = False
        self.retry_pending = False
        self.current_waiter: Any = None
        self.done = False


class BlockingChannel:
    """Thread-safe blocking channel backed by the paper's algorithm."""

    def __init__(
        self,
        capacity: int = 0,
        seg_size: int = DEFAULT_SEGMENT_SIZE,
        name: str = "blocking-chan",
        overflow: str = "suspend",
        bus: Optional[EventBus] = None,
    ):
        """``overflow``: ``"suspend"`` (default), ``"drop_oldest"``, or
        ``"conflate"`` — the kotlinx buffer-overflow policies.

        ``bus`` opts this channel into the :mod:`repro.obs` event
        stream; events are emitted under the op lock, so subscribers are
        serialized across threads (they must still be quick — they run
        inside every channel operation)."""

        if overflow == "suspend":
            self._ch = make_channel(capacity, seg_size=seg_size, name=name)
        elif overflow == "drop_oldest":
            from ..core.conflated import DropOldestChannel

            self._ch = DropOldestChannel(max(1, capacity), seg_size=seg_size, name=name)
        elif overflow == "conflate":
            from ..core.conflated import ConflatedChannel

            self._ch = ConflatedChannel(seg_size=seg_size, name=name)
        else:
            raise ValueError(f"unknown overflow policy: {overflow!r}")
        self._op_lock = _GLOBAL_OP_LOCK
        self.name = name
        self.bus = bus

    @property
    def capacity(self) -> int:
        return self._ch.capacity

    @property
    def stats(self):
        return self._ch.stats

    # ------------------------------------------------------------------

    def send(self, element: Any, timeout: Optional[float] = None) -> None:
        """Send, blocking the calling thread while the channel is full."""

        self._drive(self._ch.send(element), timeout)

    def receive(self, timeout: Optional[float] = None) -> Any:
        """Receive, blocking while the channel is empty."""

        return self._drive(self._ch.receive(), timeout)

    def receive_catching(self, timeout: Optional[float] = None) -> tuple[bool, Any]:
        return self._drive(self._ch.receive_catching(), timeout)

    def try_send(self, element: Any) -> bool:
        return self._drive(self._ch.try_send(element), None)

    def try_receive(self) -> tuple[bool, Any]:
        return self._drive(self._ch.try_receive(), None)

    def close(self) -> bool:
        return self._drive(self._ch.close(), None)

    def cancel(self) -> bool:
        return self._drive(self._ch.cancel(), None)

    def __iter__(self):
        """Iterate until the channel is closed and drained."""

        while True:
            try:
                yield self.receive()
            except ChannelClosedForReceive:
                return

    # Expose the wrapped core channel for select clauses.
    @property
    def core(self):
        return self._ch

    # ------------------------------------------------------------------

    def _drive(self, gen: Generator[Any, Any, Any], timeout: Optional[float]) -> Any:
        handle = _ThreadTaskHandle()
        to_send: Any = None
        to_throw: Optional[BaseException] = None
        lock = self._op_lock
        while True:
            try:
                if to_throw is not None:
                    exc, to_throw = to_throw, None
                    op = gen.throw(exc)
                else:
                    op = gen.send(to_send)
                    to_send = None
            except StopIteration as stop:
                handle.done = True
                return stop.value
            if type(op) is ParkTask:
                with lock:
                    if handle.interrupt_pending:
                        handle.interrupt_pending = False
                        to_throw = Interrupted()
                        continue
                    if handle.retry_pending:
                        handle.retry_pending = False
                        to_throw = RetryWakeup()
                        continue
                    if handle.unpark_pending:
                        handle.unpark_pending = False
                        continue
                    handle.event.clear()
                    bus = self.bus
                    if bus is not None and bus.active:
                        emit_op_events(
                            bus,
                            threading.current_thread().name,
                            op,
                            clock=time.monotonic_ns() // 1000,
                            parked=True,
                        )
                if not handle.event.wait(timeout):
                    raise TimeoutError(
                        f"{self.name}: operation still parked after {timeout}s"
                    )
                with lock:
                    # Exactly one wake flag accompanies the event.set():
                    # each waiter is resumed at most once.
                    if handle.interrupt_pending:
                        handle.interrupt_pending = False
                        to_throw = Interrupted()
                    elif handle.retry_pending:
                        handle.retry_pending = False
                        to_throw = RetryWakeup()
                    elif handle.unpark_pending:
                        handle.unpark_pending = False
                continue
            with lock:
                to_send = self._apply(op, handle)
                bus = self.bus
                if bus is not None and bus.active:
                    emit_op_events(
                        bus,
                        threading.current_thread().name,
                        op,
                        result=to_send,
                        clock=time.monotonic_ns() // 1000,
                    )

    @staticmethod
    def _apply(op: Op, handle: _ThreadTaskHandle) -> Any:
        if is_memory_op(op):
            return apply_memory_op(op)
        t = type(op)
        if t is CurrentTask:
            return handle
        if t is UnparkTask:
            target: _ThreadTaskHandle = op.task  # type: ignore[attr-defined]
            if op.interrupt:  # type: ignore[attr-defined]
                target.interrupt_pending = True
            elif op.retry:  # type: ignore[attr-defined]
                target.retry_pending = True
            else:
                target.unpark_pending = True
            target.event.set()
            return None
        return None  # Yield / Spin / Work / Label / Alloc


def select_blocking(*clauses, timeout: Optional[float] = None):
    """``select`` across :class:`BlockingChannel` clauses (thread-blocking).

    Clauses are built with :func:`repro.core.select.send_clause` /
    :func:`receive_clause` over each channel's ``.core``::

        from repro.core import receive_clause
        idx, value = select_blocking(receive_clause(a.core),
                                     receive_clause(b.core))

    Sound because every blocking channel shares one op lock.
    """

    from ..core.select import select as _select

    if not clauses:
        raise ValueError("select requires at least one clause")
    driver = BlockingChannel.__new__(BlockingChannel)
    driver._op_lock = _GLOBAL_OP_LOCK
    driver.name = "select"
    driver.bus = None
    return driver._drive(_select(*clauses), timeout)
