"""OS-thread adapter for the channel algorithms."""

from .channel import BlockingChannel, select_blocking

__all__ = ["BlockingChannel", "select_blocking"]
