"""Contention profiler: where do the simulated cycles go?

The cost model (:mod:`repro.sim.costmodel`) already *computes* the three
§5 contention regimes per memory op — it just never told anyone.  With a
profiler attached, every charge is decomposed through an
:class:`~repro.sim.costmodel.OpCostAudit` tap and attributed here:

* **serialization** — cycles stalled waiting for a cache line's previous
  exclusive owner (how coarse locks lose: the whole critical section is
  one long stall chain);
* **remote_miss** — cycles of coherence transfers themselves (how *any*
  shared counter pays, bounded per element for FAA designs);
* **failed_cas** — the *entire* cost of CAS attempts that lost their
  race, stall and transfer included (how CAS-retry designs waste line
  transfers under contention — a failed CAS still acquires the line
  exclusively);
* **local** — the intrinsic cost of ops that did useful work.

Attribution is kept per **cache line** (cell names, normalized so all
segments/indices of one field family aggregate: ``chan.seg*.state[*]``)
and per **code site** (the ``file:line`` of the innermost generator
``yield`` that paid the cycles), so the report ranks the *hot lines* of
an algorithm — the FAA-vs-CAS-retry-vs-lock gap of Figure 5 becomes
directly inspectable instead of inferred from end-to-end throughput.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Optional

from ..concurrent.ops import Cas, Op
from ..sim.costmodel import OpCostAudit

__all__ = ["REGIMES", "ContentionProfiler", "ContentionReport"]

#: Attribution buckets, in report order.
REGIMES = ("serialization", "remote_miss", "failed_cas", "local")

_SEG_RE = re.compile(r"seg(?:ment)?\d+")
_IDX_RE = re.compile(r"\[\d+\]")


def _normalize_cell(name: str, loc_id: int) -> str:
    """Collapse per-segment/per-index cell names into one field family."""

    if not name:
        return f"cell#{loc_id}"
    name = _SEG_RE.sub("seg*", name)
    return _IDX_RE.sub("[*]", name)


def _code_site(task: Any) -> str:
    """``file:line`` of the innermost suspended ``yield`` of ``task``.

    Walks the ``yield from`` delegation chain so the site names the
    algorithm line that issued the op, not the benchmark driver loop.
    """

    gen = task.gen
    for _ in range(16):
        sub = getattr(gen, "gi_yieldfrom", None)
        if sub is None or not hasattr(sub, "gi_frame"):
            break
        gen = sub
    frame = getattr(gen, "gi_frame", None)
    if frame is None:
        return "<finished>"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


class _Bucket:
    """Cycles by regime for one aggregation key."""

    __slots__ = ("serialization", "remote_miss", "failed_cas", "local", "ops")

    def __init__(self) -> None:
        self.serialization = 0
        self.remote_miss = 0
        self.failed_cas = 0
        self.local = 0
        self.ops = 0

    @property
    def contended(self) -> int:
        return self.serialization + self.remote_miss + self.failed_cas

    @property
    def total(self) -> int:
        return self.contended + self.local

    def as_dict(self) -> dict[str, int]:
        return {r: getattr(self, r) for r in REGIMES} | {"ops": self.ops}


class ContentionProfiler:
    """Scheduler hook attributing audited op costs to contention regimes.

    Attach both sides — the audit tap on the cost model and the hook on
    the scheduler::

        profiler = ContentionProfiler()
        profiler.attach(sched)          # or ObsSession does this
        sched.run()
        print(profiler.report().format())
    """

    __slots__ = ("audit", "totals", "by_site", "by_line", "_enabled")

    def __init__(self) -> None:
        self.audit = OpCostAudit()
        self.totals = _Bucket()
        self.by_site: dict[str, _Bucket] = {}
        self.by_line: dict[str, _Bucket] = {}
        self._enabled = False

    def attach(self, sched: Any) -> "ContentionProfiler":
        """Install the audit tap and the per-op hook on ``sched``."""

        cost = getattr(sched, "cost", None)
        if hasattr(cost, "audit"):
            cost.audit = self.audit
            self._enabled = True
        sched.add_hook(self)
        return self

    def __call__(self, sched: Any, task: Any, op: Op) -> None:
        a = self.audit
        cell = a.cell
        if cell is None:
            return  # no shared-memory effect: nothing to attribute
        site = _code_site(task)
        line = _normalize_cell(cell.name, cell.loc_id)
        failed = type(op) is Cas and task.pending_value is False
        for bucket in (
            self.totals,
            self.by_site.setdefault(site, _Bucket()),
            self.by_line.setdefault(line, _Bucket()),
        ):
            bucket.ops += 1
            if failed:
                # A lost CAS still stalled for and acquired the line —
                # every one of its cycles is waste.
                bucket.failed_cas += a.stall + a.miss + a.base
            else:
                bucket.serialization += a.stall
                bucket.remote_miss += a.miss
                bucket.local += a.base

    def report(self, label: str = "") -> "ContentionReport":
        return ContentionReport(
            label=label,
            enabled=self._enabled,
            totals=self.totals.as_dict(),
            by_site={k: b.as_dict() for k, b in self.by_site.items()},
            by_line={k: b.as_dict() for k, b in self.by_line.items()},
        )


def _ranked(table: dict[str, dict[str, int]], n: int) -> list[tuple[str, dict[str, int]]]:
    def contended(entry: dict[str, int]) -> int:
        return entry["serialization"] + entry["remote_miss"] + entry["failed_cas"]

    return sorted(table.items(), key=lambda kv: contended(kv[1]), reverse=True)[:n]


@dataclass
class ContentionReport:
    """Per-regime cycle attribution for one run."""

    label: str
    enabled: bool
    totals: dict[str, int]
    by_site: dict[str, dict[str, int]] = field(default_factory=dict)
    by_line: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return sum(self.totals[r] for r in REGIMES)

    def share(self, regime: str) -> float:
        """This regime's fraction of all attributed cycles."""

        total = self.total_cycles
        return self.totals[regime] / total if total else 0.0

    def hot_sites(self, n: int = 10) -> list[tuple[str, dict[str, int]]]:
        """Code sites ranked by contended (non-local) cycles."""

        return _ranked(self.by_site, n)

    def hot_lines(self, n: int = 10) -> list[tuple[str, dict[str, int]]]:
        """Cache-line families ranked by contended cycles."""

        return _ranked(self.by_line, n)

    def summary_row(self) -> str:
        shares = "".join(f"{self.share(r) * 100:>13.1f}%" for r in REGIMES)
        return f"{self.label:18s}{shares}{self.total_cycles:>14d}"

    def format(self, top: int = 8) -> str:
        """Full report: regime shares plus the ranked hot lines/sites."""

        title = f"Contention profile — {self.label or 'run'}"
        lines = [title, "-" * len(title)]
        if not self.enabled:
            lines.append("(cost audit unavailable: not a CostModel run; counts only)")
        total = self.total_cycles
        for regime in REGIMES:
            cycles = self.totals[regime]
            lines.append(f"  {regime:14s} {cycles:>14d} cycles  {self.share(regime) * 100:6.1f}%")
        lines.append(f"  {'attributed':14s} {total:>14d} cycles over {self.totals['ops']} memory ops")
        for header, table in (("hot cache lines", self.by_line), ("hot code sites", self.by_site)):
            lines.append(f"{header} (by contended cycles):")
            for key, entry in _ranked(table, top):
                contended = entry["serialization"] + entry["remote_miss"] + entry["failed_cas"]
                lines.append(
                    f"  {key:44s} stall={entry['serialization']:<10d} "
                    f"miss={entry['remote_miss']:<10d} failed-cas={entry['failed_cas']:<10d} "
                    f"({contended * 100 // total if total else 0}% of attributed)"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "enabled": self.enabled,
            "totals": dict(self.totals),
            "shares": {r: self.share(r) for r in REGIMES},
            "by_line": dict(self.by_line),
            "by_site": dict(self.by_site),
        }
