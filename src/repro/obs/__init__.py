"""``repro.obs`` — the unified observability layer.

One subsystem subsumes the previously fragmented hooks (``sim/trace.py``
ring buffers, ``core/stats.py`` counters, ``core/debug.py`` dumps) behind
four cooperating pieces:

* :mod:`repro.obs.events` — a typed **event bus**.  Drivers translate
  executed ops into structured events (op executed, park/unpark, CAS
  failure, segment alloc, cell poisoned, channel close/cancel) through a
  single shared translation path, so the simulator, the asyncio adapter
  and the OS-thread adapter are observable with the same subscribers.
* :mod:`repro.obs.metrics` — a **metrics registry** of labeled counters,
  gauges and histograms (with p50/p99 extraction).
* :mod:`repro.obs.profiler` — a **contention profiler** attributing
  simulated cycles per cache line and per code site to the three §5
  regimes: serialization stalls, remote-miss transfers, failed-CAS waste.
* :mod:`repro.obs.timeline` — a **timeline exporter** writing Chrome
  Trace Event Format JSON loadable in Perfetto / ``chrome://tracing``.

:class:`~repro.obs.session.ObsSession` bundles them; the bench harness
threads a session through a run via ``run_producer_consumer(...,
profile=session)`` and ``python -m repro.bench profile`` drives it from
the command line.

Everything here is **pay-for-use**: with no session attached, the
scheduler's hook list stays empty and the cost model's audit tap stays
``None``, so benchmark runs are unaffected (<5% — see
``tests/test_obs_profiler.py``).
"""

from .events import (
    CasFailureEvent,
    CellPoisonEvent,
    ChannelCloseEvent,
    Event,
    EventBus,
    LabelEvent,
    OpEvent,
    ParkEvent,
    ResumeEvent,
    SchedulerObserver,
    SegmentAllocEvent,
    UnparkEvent,
    emit_op_events,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import REGIMES, ContentionProfiler, ContentionReport
from .session import ObsSession
from .timeline import REQUIRED_KEYS, TimelineRecorder, validate_trace_events

__all__ = [
    "Event",
    "EventBus",
    "OpEvent",
    "ParkEvent",
    "ResumeEvent",
    "UnparkEvent",
    "CasFailureEvent",
    "CellPoisonEvent",
    "SegmentAllocEvent",
    "ChannelCloseEvent",
    "LabelEvent",
    "SchedulerObserver",
    "emit_op_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ContentionProfiler",
    "ContentionReport",
    "REGIMES",
    "TimelineRecorder",
    "REQUIRED_KEYS",
    "validate_trace_events",
    "ObsSession",
]
