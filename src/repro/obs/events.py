"""Typed structured events and the event bus.

The bus is deliberately tiny: subscribers register for an event type (or
for all events) and :meth:`EventBus.emit` dispatches in **subscription
order** — deterministic, so tests can assert on delivery sequences.

The **disabled fast path** is the whole design: an :class:`EventBus`
with no subscribers reports ``active == False`` and every emission site
checks that flag before *constructing* an event, so an unobserved run
allocates nothing and pays one attribute read per op.  Hooks are only
attached to a scheduler when a session is threaded through a run, so
the default benchmark path is byte-for-byte the pre-observability one.

:func:`emit_op_events` is the single op→event translation shared by all
three drivers (simulator, asyncio adapter, OS-thread adapter): given one
executed op descriptor plus its result, it derives the structured events
the op implies — a CAS that lost its race, a cell poisoned with
``BROKEN``, a segment allocation, the close/cancel bit being planted in
a channel counter.  Having exactly one translation path is what makes
"the same algorithm, observed anywhere" true for events the way
:func:`~repro.concurrent.ops.apply_memory_op` makes it true for memory.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..concurrent.ops import (
    Alloc,
    Cas,
    Label,
    Op,
    ParkTask,
    Spin,
    UnparkTask,
    Write,
)
from ..core.closing import CLOSE_BIT
from ..core.states import BROKEN

__all__ = [
    "Event",
    "OpEvent",
    "ParkEvent",
    "ResumeEvent",
    "UnparkEvent",
    "CasFailureEvent",
    "CellPoisonEvent",
    "SegmentAllocEvent",
    "ChannelCloseEvent",
    "LabelEvent",
    "EventBus",
    "SchedulerObserver",
    "emit_op_events",
]


class Event:
    """Base class for one structured observation.

    ``source`` names the virtual thread (or adapter operation) the event
    originated from; ``clock`` is its timestamp — simulated cycles under
    the simulator, monotonic microseconds under the real-time adapters.
    """

    __slots__ = ("source", "clock")

    def __init__(self, source: str, clock: int):
        self.source = source
        self.clock = clock

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for cls in type(self).__mro__
            for name in getattr(cls, "__slots__", ())
        )
        return f"{type(self).__name__}({fields})"


class OpEvent(Event):
    """One op executed: the raw descriptor plus the value it resumed with."""

    __slots__ = ("op", "result", "tid")

    def __init__(self, source: str, clock: int, op: Op, result: Any = None, tid: int = 0):
        super().__init__(source, clock)
        self.op = op
        self.result = result
        self.tid = tid


class ParkEvent(Event):
    """A task actually suspended (its park was not elided by a permit)."""

    __slots__ = ("tid",)

    def __init__(self, source: str, clock: int, tid: int = 0):
        super().__init__(source, clock)
        self.tid = tid


class ResumeEvent(Event):
    """A previously parked task executed its first op after waking.

    ``waited`` is the suspension latency: park to first post-wake op,
    including the driver's wake-up latency — the quantity the paper's
    suspension-rich steady state (§5) is about.
    """

    __slots__ = ("tid", "waited")

    def __init__(self, source: str, clock: int, tid: int = 0, waited: int = 0):
        super().__init__(source, clock)
        self.tid = tid
        self.waited = waited


class UnparkEvent(Event):
    """A successful ``tryUnpark()`` (or a permit deposit) on ``target``."""

    __slots__ = ("target", "interrupt", "retry")

    def __init__(self, source: str, clock: int, target: str, interrupt: bool, retry: bool):
        super().__init__(source, clock)
        self.target = target
        self.interrupt = interrupt
        self.retry = retry


class CasFailureEvent(Event):
    """A CAS lost its race — the wasted-line-transfer currency of §5."""

    __slots__ = ("cell",)

    def __init__(self, source: str, clock: int, cell: Any):
        super().__init__(source, clock)
        self.cell = cell


class CellPoisonEvent(Event):
    """A cell moved to ``BROKEN`` (the red path of Figure 1)."""

    __slots__ = ("cell",)

    def __init__(self, source: str, clock: int, cell: Any):
        super().__init__(source, clock)
        self.cell = cell


class SegmentAllocEvent(Event):
    """An :class:`~repro.concurrent.ops.Alloc` — segment/node/descriptor."""

    __slots__ = ("tag", "units")

    def __init__(self, source: str, clock: int, tag: str, units: int):
        super().__init__(source, clock)
        self.tag = tag
        self.units = units


class ChannelCloseEvent(Event):
    """The close (or cancel) flag was planted in a channel counter.

    Detected structurally: a successful CAS that sets ``CLOSE_BIT`` in an
    integer cell.  ``cancel`` is ``True`` when the bit landed in the
    receivers counter (``*.R``), i.e. the ``cancel()`` protocol.
    """

    __slots__ = ("cell", "cancel")

    def __init__(self, source: str, clock: int, cell: Any, cancel: bool):
        super().__init__(source, clock)
        self.cell = cell
        self.cancel = cancel


class LabelEvent(Event):
    """A :class:`~repro.concurrent.ops.Label` trace marker."""

    __slots__ = ("name", "payload")

    def __init__(self, source: str, clock: int, name: str, payload: Any):
        super().__init__(source, clock)
        self.name = name
        self.payload = payload


class EventBus:
    """Dispatches events to subscribers in subscription order."""

    __slots__ = ("_subs",)

    def __init__(self) -> None:
        #: Ordered ``(event_type_or_None, callback)`` pairs.
        self._subs: list[tuple[Optional[type], Callable[[Event], None]]] = []

    @property
    def active(self) -> bool:
        """``True`` iff anyone is listening — the emission-site guard."""

        return bool(self._subs)

    def subscribe(
        self, event_type: Optional[type], fn: Callable[[Event], None]
    ) -> Callable[[Event], None]:
        """Register ``fn`` for ``event_type`` (``None`` = every event)."""

        if event_type is not None and not (
            isinstance(event_type, type) and issubclass(event_type, Event)
        ):
            raise TypeError(f"not an Event type: {event_type!r}")
        self._subs.append((event_type, fn))
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        """Remove every subscription of ``fn``."""

        self._subs = [(et, f) for et, f in self._subs if f is not fn]

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to matching subscribers, in subscription order."""

        for event_type, fn in self._subs:
            if event_type is None or isinstance(event, event_type):
                fn(event)


def _is_close_cas(op: Cas) -> bool:
    """Does this CAS plant the close/cancel flag in a packed counter?"""

    expected, update = op.expected, op.update
    return (
        type(update) is int
        and type(expected) is int
        and update != expected
        and update == expected | CLOSE_BIT
    )


def emit_op_events(
    bus: EventBus,
    source: str,
    op: Op,
    *,
    result: Any = None,
    clock: int = 0,
    tid: int = 0,
    parked: bool = False,
) -> None:
    """Translate one executed op into structured events on ``bus``.

    The shared op→event path of all drivers.  ``result`` is the value the
    op resumed its generator with (the CAS outcome, the read value, …);
    ``parked`` says whether a ``ParkTask`` actually suspended (as opposed
    to consuming a pending unpark permit).

    Callers should guard with ``bus.active`` — this function assumes
    someone is listening and always constructs the :class:`OpEvent`.
    """

    bus.emit(OpEvent(source, clock, op, result, tid))
    t = type(op)
    if t is Cas:
        if result is False:
            bus.emit(CasFailureEvent(source, clock, op.cell))
        elif result is True:
            if op.update is BROKEN:
                bus.emit(CellPoisonEvent(source, clock, op.cell))
            elif _is_close_cas(op):
                cancel = op.cell.name.endswith(".R")
                bus.emit(ChannelCloseEvent(source, clock, op.cell, cancel))
    elif t is Write:
        if op.value is BROKEN:
            bus.emit(CellPoisonEvent(source, clock, op.cell))
    elif t is Alloc:
        bus.emit(SegmentAllocEvent(source, clock, op.tag, op.units))
    elif t is ParkTask:
        if parked:
            bus.emit(ParkEvent(source, clock, tid))
    elif t is UnparkTask:
        target = getattr(op.task, "name", None) or "?"
        bus.emit(UnparkEvent(source, clock, target, op.interrupt, op.retry))
    elif t is Label:
        bus.emit(LabelEvent(source, clock, op.name, op.payload))
    # Read/Faa/GetAndSet/Yield/Spin/Work/CurrentTask: OpEvent only.


class SchedulerObserver:
    """Scheduler hook feeding an :class:`EventBus` from executed ops.

    Attach with ``sched.add_hook(SchedulerObserver(bus))`` (or let
    :class:`~repro.obs.session.ObsSession` do it).  Beyond the shared
    translation it tracks park→resume pairs to emit
    :class:`ResumeEvent` with the measured suspension latency.
    """

    __slots__ = ("bus", "_parked")

    def __init__(self, bus: EventBus):
        self.bus = bus
        #: tid -> clock at the moment the task actually parked.
        self._parked: dict[int, int] = {}

    def __call__(self, sched: Any, task: Any, op: Op) -> None:
        bus = self.bus
        if not bus.active:
            return
        tid = task.tid
        if self._parked:
            start = self._parked.pop(tid, None)
            if start is not None:
                bus.emit(ResumeEvent(task.name, task.clock, tid, task.clock - start))
        parked = task.state.name == "PARKED"
        emit_op_events(
            bus,
            task.name,
            op,
            result=task.pending_value,
            clock=task.clock,
            tid=tid,
            parked=parked,
        )
        if parked:
            self._parked[tid] = task.clock
