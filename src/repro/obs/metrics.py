"""Labeled counters, gauges and histograms.

A :class:`MetricsRegistry` is a flat namespace of metric *series*: a
series is a metric name plus a set of ``key=value`` labels (per
implementation, per channel, per code site, …).  ``counter(name,
**labels)`` is get-or-create, so emission sites never need to
pre-register anything::

    reg = MetricsRegistry()
    reg.counter("ops_total", impl="faa-channel", kind="rmw").inc()
    reg.histogram("park_wait_cycles", impl="faa-channel").observe(1234)
    reg.histogram("park_wait_cycles", impl="faa-channel").p99

Histograms keep exact samples (benchmark runs observe at most a few
hundred thousand values) and extract percentiles by nearest-rank on a
cached sort, so ``p50``/``p99`` are exact, not bucket upper bounds.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n


class Histogram:
    """Exact-sample distribution with nearest-rank percentiles."""

    __slots__ = ("_values", "_sorted")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        values = self._values
        if self._sorted and values and value < values[-1]:
            self._sorted = False
        values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def samples(self) -> tuple[float, ...]:
        """The raw observed values (unsorted order not guaranteed).

        Exact samples make distributions *mergeable*: re-observing one
        histogram's samples into another yields exact percentiles for
        the union — which is how multi-process load drivers fold their
        per-process latency histograms into one report.
        """

        return tuple(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in (0, 100]."""

        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        values = self._values
        if not values:
            return 0.0
        if not self._sorted:
            values.sort()
            self._sorted = True
        rank = max(1, math.ceil(len(values) * p / 100))
        return values[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "max": max(self._values) if self._values else 0.0,
        }


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Get-or-create registry of labeled metric series."""

    __slots__ = ("_metrics",)

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        #: (name, labels) -> (kind, metric)
        self._metrics: dict[tuple[str, tuple[tuple[str, Any], ...]], tuple[str, Any]] = {}

    def _get(self, kind: str, name: str, labels: dict[str, Any]) -> Any:
        key = (name, _label_key(labels))
        entry = self._metrics.get(key)
        if entry is None:
            metric = self._KINDS[kind]()
            self._metrics[key] = (kind, metric)
            return metric
        found_kind, metric = entry
        if found_kind != kind:
            raise TypeError(f"{name}{labels!r} already registered as a {found_kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def series(self, name: str) -> list[tuple[dict[str, Any], Any]]:
        """All (labels, metric) series registered under ``name``."""

        return [
            (dict(label_key), metric)
            for (metric_name, label_key), (_, metric) in self._metrics.items()
            if metric_name == name
        ]

    def names(self) -> list[str]:
        return sorted({name for name, _ in self._metrics})

    def snapshot(self) -> dict[str, Any]:
        """Flat ``name{k=v,...} -> value`` mapping for reports/JSON."""

        out: dict[str, Any] = {}
        for (name, label_key), (kind, metric) in sorted(self._metrics.items()):
            labels = ",".join(f"{k}={v}" for k, v in label_key)
            full = f"{name}{{{labels}}}" if labels else name
            out[full] = metric.snapshot() if kind == "histogram" else metric.value
        return out

    def format(self, names: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump (sorted, one series per line)."""

        wanted = set(names) if names is not None else None
        lines = []
        for full, value in self.snapshot().items():
            if wanted is not None and full.split("{")[0] not in wanted:
                continue
            if isinstance(value, dict):
                rendered = " ".join(f"{k}={v:g}" for k, v in value.items())
            else:
                rendered = f"{value:g}"
            lines.append(f"{full:60s} {rendered}")
        return "\n".join(lines)
