"""Timeline export in Chrome Trace Event Format.

:class:`TimelineRecorder` is a scheduler hook that reconstructs one
track per virtual thread from the per-op stream: ``run`` spans while the
task executes, ``park`` spans while it is suspended, nested ``stall``
spans when the cost audit shows the op waited for a cache line, and
instant markers for lost CAS races and cell poisonings.

The export is plain Trace Event Format JSON — ``{"traceEvents": [...]}``
with ``X`` (complete), ``i`` (instant) and ``M`` (metadata) phases — so
it loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Timestamps are simulated cycles reported in the
``ts`` microsecond field: 1 µs of trace time = 1 simulated cycle.

::

    rec = TimelineRecorder()
    sched.add_hook(rec)
    sched.run()
    rec.finish(sched)
    rec.export("trace.json")      # open in Perfetto
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..concurrent.ops import Cas, Op, Write
from ..core.states import BROKEN
from ..sim.costmodel import OpCostAudit

__all__ = ["TimelineRecorder", "validate_trace_events"]

#: Keys every non-metadata trace event must carry (the format's minimum).
REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


class TimelineRecorder:
    """Reconstructs per-task run/park/stall spans from executed ops."""

    __slots__ = ("pid", "audit", "spans", "instants", "_open", "_parked", "_names")

    def __init__(self, pid: int = 0, audit: Optional[OpCostAudit] = None):
        self.pid = pid
        #: Optional cost-audit tap (shared with the profiler): enables
        #: nested ``stall`` spans inside run spans.
        self.audit = audit
        #: (name, tid, start, duration) completed spans.
        self.spans: list[tuple[str, int, int, int]] = []
        #: (name, tid, ts) instant markers.
        self.instants: list[tuple[str, int, int]] = []
        self._open: dict[int, int] = {}  # tid -> run-span start clock
        self._parked: dict[int, int] = {}  # tid -> park clock
        self._names: dict[int, str] = {}

    def __call__(self, sched: Any, task: Any, op: Op) -> None:
        tid = task.tid
        clock = task.clock
        if tid not in self._names:
            self._names[tid] = task.name
            self._open[tid] = clock
        parked_at = self._parked.pop(tid, None)
        if parked_at is not None:
            # First op after waking: close the park span, reopen a run.
            self.spans.append(("park", tid, parked_at, clock - parked_at))
            self._open[tid] = clock
        a = self.audit
        if a is not None and a.cell is not None and a.stall:
            # The stall ended when the op's transfer+execution began.
            self.spans.append(("stall", tid, clock - a.base - a.miss - a.stall, a.stall))
        if type(op) is Cas:
            if task.pending_value is False:
                self.instants.append(("cas-fail", tid, clock))
            elif op.update is BROKEN:
                self.instants.append(("poison", tid, clock))
        elif type(op) is Write and op.value is BROKEN:
            self.instants.append(("poison", tid, clock))
        if task.state.name == "PARKED":
            start = self._open.pop(tid, clock)
            if clock > start:
                self.spans.append(("run", tid, start, clock - start))
            self._parked[tid] = clock

    def finish(self, sched: Any) -> None:
        """Close every span still open at the end of the run."""

        for task in getattr(sched, "tasks", []):
            tid = task.tid
            start = self._open.pop(tid, None)
            if start is not None and task.clock > start:
                self.spans.append(("run", tid, start, task.clock - start))
            parked_at = self._parked.pop(tid, None)
            if parked_at is not None:
                self.spans.append(("park", tid, parked_at, max(0, task.clock - parked_at)))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def trace_events(self, process_name: str = "simulated-multicore") -> list[dict[str, Any]]:
        """The run as a Trace Event Format event list."""

        pid = self.pid
        events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for tid, name in sorted(self._names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for name, tid, start, dur in self.spans:
            events.append(
                {
                    "name": name,
                    "cat": "task" if name != "stall" else "contention",
                    "ph": "X",
                    "ts": start,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                }
            )
        for name, tid, ts in self.instants:
            events.append(
                {
                    "name": name,
                    "cat": "contention",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                }
            )
        return events

    def export(self, path: str, process_name: str = "simulated-multicore") -> int:
        """Write the trace JSON to ``path``; returns the event count."""

        events = self.trace_events(process_name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
        return len(events)


def validate_trace_events(events: Any) -> None:
    """Raise :class:`ValueError` unless ``events`` is valid trace JSON.

    Accepts either the ``{"traceEvents": [...]}`` object form or a bare
    event list, and checks the keys Perfetto requires of every event.
    """

    if isinstance(events, dict):
        if "traceEvents" not in events:
            raise ValueError("trace object lacks 'traceEvents'")
        events = events["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("trace must be a non-empty event list")
    for i, event in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"event #{i} lacks required key {key!r}: {event!r}")
        if event["ph"] == "X" and event.get("dur", -1) < 0:
            raise ValueError(f"complete event #{i} has negative/missing dur: {event!r}")
        if event["ph"] not in ("X", "i", "M", "B", "E", "C"):
            raise ValueError(f"event #{i} has unknown phase {event['ph']!r}")
