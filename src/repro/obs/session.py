"""One observability session: bus + metrics + profiler + timeline.

An :class:`ObsSession` is the object the bench harness threads through a
run (``run_producer_consumer(..., profile=session)``).  It owns an
:class:`~repro.obs.events.EventBus`, wires a standard set of metrics
into a :class:`~repro.obs.metrics.MetricsRegistry`, and optionally
carries a contention profiler and a timeline recorder.  ``attach()``
installs whatever the session carries onto a scheduler; nothing is
installed on schedulers the session never touches, preserving the
pay-for-use contract.
"""

from __future__ import annotations

from typing import Any, Optional

from .events import (
    CasFailureEvent,
    CellPoisonEvent,
    ChannelCloseEvent,
    Event,
    EventBus,
    OpEvent,
    ParkEvent,
    ResumeEvent,
    SchedulerObserver,
    SegmentAllocEvent,
)
from .metrics import MetricsRegistry
from .profiler import ContentionProfiler
from .timeline import TimelineRecorder

__all__ = ["ObsSession", "MetricsBridge"]


class MetricsBridge:
    """Bus subscriber maintaining the standard metric series.

    * ``ops_total{kind=...}`` — op mix;
    * ``cas_failures_total`` — lost CAS races;
    * ``parks_total`` / ``cell_poisons_total`` / ``segment_alloc_units``
      / ``channel_closes_total`` — the structured events;
    * ``park_wait_cycles`` — suspension-latency histogram (p50/p99).

    Every series carries the session's labels (typically ``impl=...``).
    """

    __slots__ = ("registry", "labels")

    def __init__(self, registry: MetricsRegistry, **labels: Any):
        self.registry = registry
        self.labels = labels

    def install(self, bus: EventBus) -> "MetricsBridge":
        bus.subscribe(OpEvent, self._on_op)
        bus.subscribe(CasFailureEvent, self._on_cas_failure)
        bus.subscribe(ParkEvent, self._on_park)
        bus.subscribe(ResumeEvent, self._on_resume)
        bus.subscribe(CellPoisonEvent, self._on_poison)
        bus.subscribe(SegmentAllocEvent, self._on_alloc)
        bus.subscribe(ChannelCloseEvent, self._on_close)
        return self

    def _on_op(self, e: Event) -> None:
        self.registry.counter("ops_total", kind=e.op.kind, **self.labels).inc()

    def _on_cas_failure(self, e: Event) -> None:
        self.registry.counter("cas_failures_total", **self.labels).inc()

    def _on_park(self, e: Event) -> None:
        self.registry.counter("parks_total", **self.labels).inc()

    def _on_resume(self, e: Event) -> None:
        self.registry.histogram("park_wait_cycles", **self.labels).observe(e.waited)

    def _on_poison(self, e: Event) -> None:
        self.registry.counter("cell_poisons_total", **self.labels).inc()

    def _on_alloc(self, e: Event) -> None:
        self.registry.counter("segment_alloc_units", tag=e.tag, **self.labels).inc(e.units)

    def _on_close(self, e: Event) -> None:
        kind = "cancel" if e.cancel else "close"
        self.registry.counter("channel_closes_total", kind=kind, **self.labels).inc()


class ObsSession:
    """Bundle of observability tools for one (or more) runs.

    Parameters
    ----------
    label:
        Value of the ``impl`` label on every metric series (and the
        default report label) — typically the implementation name.
    metrics / profiler / timeline:
        Which tools to carry.  Metrics and the profiler are on by
        default; the timeline is opt-in (it records one tuple per
        span, which is noticeable on million-element runs).
    """

    def __init__(
        self,
        label: str = "",
        *,
        metrics: bool = True,
        profiler: bool = True,
        timeline: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.label = label
        self.bus = EventBus()
        self.metrics = registry if registry is not None else (MetricsRegistry() if metrics else None)
        self.profiler = ContentionProfiler() if profiler else None
        self.timeline = (
            TimelineRecorder(audit=self.profiler.audit if self.profiler else None)
            if timeline
            else None
        )
        if self.metrics is not None:
            labels = {"impl": label} if label else {}
            MetricsBridge(self.metrics, **labels).install(self.bus)
        self._attached: list[tuple[Any, list[Any]]] = []

    def attach(self, sched: Any) -> "ObsSession":
        """Install the session's hooks (and the cost audit) on ``sched``."""

        hooks: list[Any] = []
        if self.bus.active:
            observer = SchedulerObserver(self.bus)
            sched.add_hook(observer)
            hooks.append(observer)
        if self.profiler is not None:
            self.profiler.attach(sched)
            hooks.append(self.profiler)
        if self.timeline is not None:
            sched.add_hook(self.timeline)
            hooks.append(self.timeline)
        self._attached.append((sched, hooks))
        return self

    def detach(self, sched: Any) -> "ObsSession":
        """Uninstall everything :meth:`attach` put on ``sched``.

        Removes the session's hooks and clears the profiler's cost-audit
        tap, so the scheduler's next :meth:`~repro.sim.scheduler.Scheduler.run`
        regains the fused fast path — observability is fully reversible,
        cost included.  Collected data (metrics, profiler buckets,
        timeline spans) is kept.  Unknown schedulers are a no-op.
        """

        kept: list[tuple[Any, list[Any]]] = []
        for s, hooks in self._attached:
            if s is not sched:
                kept.append((s, hooks))
                continue
            for hook in hooks:
                sched.remove_hook(hook)
            cost = getattr(sched, "cost", None)
            if (
                self.profiler is not None
                and getattr(cost, "audit", None) is self.profiler.audit
            ):
                cost.audit = None
        self._attached = kept
        return self

    def finish(self, sched: Any) -> "ObsSession":
        """Seal per-run state (close open timeline spans, set gauges)."""

        if self.timeline is not None:
            self.timeline.finish(sched)
        if self.metrics is not None:
            labels = {"impl": self.label} if self.label else {}
            self.metrics.gauge("makespan_cycles", **labels).set(sched.makespan)
            self.metrics.gauge("scheduler_steps", **labels).set(sched.total_steps)
        return self

    def contention_report(self):
        """The profiler's report, labeled with the session label."""

        if self.profiler is None:
            raise ValueError("session was created with profiler=False")
        return self.profiler.report(self.label)

    def export_timeline(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the event count."""

        if self.timeline is None:
            raise ValueError("session was created with timeline=False")
        return self.timeline.export(path, process_name=self.label or "simulated-multicore")
