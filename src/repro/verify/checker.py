"""History-based linearizability checking for channels without known
linearization points (baselines).

For the FAA channels, §4.1 pins the linearization points and
:class:`~repro.verify.invariants.FifoObserver` checks them directly.  The
baselines expose no cell indices, so this module records *histories* —
(invocation, response) step intervals per completed operation — and
searches for a valid sequential witness (Wing & Gong style DFS; practical
for the small scenarios the exploration suites use).

Operations are treated at *registration* granularity (dual data
structures [22]): a blocked operation's linearization point may fall
anywhere in its interval, and a receive that had to wait is served, in
FIFO order, by a send linearized later.  The sequential witness therefore
tracks two FIFO lines:

* ``pending_elements`` — elements sent but not yet claimed;
* ``pending_receivers`` — values that already-linearized waiting receives
  are known (from the history) to eventually return; a subsequent send
  must serve the oldest one with exactly that value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from ..errors import LinearizabilityError
from .spec import SequentialChannelSpec  # re-exported for API completeness

__all__ = ["HistoryRecorder", "Event", "check_linearizable", "SequentialChannelSpec"]


@dataclass
class Event:
    """One completed operation in a recorded history."""

    kind: str  # "send" | "receive"
    value: Any  # element sent / value received
    invoked: int  # global step index at invocation
    responded: int  # global step index at response
    op_id: int = 0


class HistoryRecorder:
    """Wraps channel operations to record a real-time history.

    Usage (inside task generators)::

        rec = HistoryRecorder(sched)
        ...
        yield from rec.send(channel, element)
        value = yield from rec.receive(channel)
    """

    def __init__(self, sched: Any):
        self.sched = sched
        self.events: list[Event] = []
        self._ids = itertools.count()

    def _now(self) -> int:
        return self.sched.total_steps

    def send(self, channel: Any, element: Any):
        start = self._now()
        yield from channel.send(element)
        self.events.append(Event("send", element, start, self._now(), next(self._ids)))

    def receive(self, channel: Any):
        start = self._now()
        value = yield from channel.receive()
        self.events.append(Event("receive", value, start, self._now(), next(self._ids)))
        return value


def check_linearizable(events: list[Event], capacity: int = 0) -> None:
    """Search for a sequential witness of the history; raise if none.

    Value consistency and FIFO order are checked exactly; ``capacity``
    is accepted for symmetry but does not constrain the witness (blocked
    operations linearize at registration, so buffer occupancy never
    invalidates a value-consistent witness).
    """

    events = sorted(events, key=lambda e: (e.invoked, e.responded))
    n = len(events)
    if n > 14:
        raise ValueError("exhaustive witness search is only for small histories (<= 14 ops)")

    seen_states: set = set()

    def dfs(done: frozenset, pending_elements: tuple, pending_receivers: tuple) -> bool:
        if len(done) == n:
            return True
        key = (done, pending_elements, pending_receivers)
        if key in seen_states:
            return False
        seen_states.add(key)
        # Real-time constraint: the next linearized op must have been
        # invoked no later than the earliest response among the rest.
        min_resp = min(events[i].responded for i in range(n) if i not in done)
        for i in range(n):
            if i in done:
                continue
            ev = events[i]
            if ev.invoked > min_resp:
                break  # events sorted by invocation
            if ev.kind == "send":
                if pending_receivers:
                    # Must serve the oldest waiting receive, whose value
                    # the history already fixed.
                    if pending_receivers[0] != ev.value:
                        continue
                    if dfs(done | {i}, pending_elements, pending_receivers[1:]):
                        return True
                else:
                    if dfs(done | {i}, pending_elements + (ev.value,), pending_receivers):
                        return True
            else:  # receive
                if pending_elements:
                    if pending_elements[0] != ev.value:
                        continue
                    if dfs(done | {i}, pending_elements[1:], pending_receivers):
                        return True
                else:
                    if dfs(done | {i}, pending_elements, pending_receivers + (ev.value,)):
                        return True
        return False

    if not dfs(frozenset(), (), ()):
        raise LinearizabilityError(
            "no sequential witness found for history:\n  "
            + "\n  ".join(
                f"[{e.invoked},{e.responded}] {e.kind}({e.value!r})" for e in events
            )
        )
