"""Sequential specification of channel behaviour (dual data structures [22]).

The spec models what a channel *is*, independent of the algorithm: a FIFO
element order, a buffer of bounded capacity, and registration-phase
semantics for blocked operations.  The checker replays an execution's
linearization sequence through this state machine.

For the FAA channels the linearization points are known (§4.1): an
operation linearizes at its counter FAA when the subsequent cell update
succeeds.  That makes checking direct (no permutation search): successful
sends in S-order form the channel's element sequence, successful receives
in R-order must read exactly that sequence — the k-th successful receive
returns the k-th successfully sent element.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from ..errors import LinearizabilityError

__all__ = ["SequentialChannelSpec", "check_fifo_matching"]


class SequentialChannelSpec:
    """Executable sequential channel: replay ops, validate results.

    ``send``/``receive`` here are *registration-phase* transitions: a
    ``send`` that must block records a pending sender (its element is
    already logically in the channel's element order — dual-structure
    semantics); a blocked ``receive`` records a pending reservation that
    the next ``send`` must serve in order.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        #: Elements sent but not yet claimed by a receive, in order
        #: (includes those held by still-suspended senders).
        self.pending_elements: Deque[Any] = deque()
        #: Number of receives registered while no element was available.
        self.pending_receives = 0
        self.closed = False

    def send(self, element: Any) -> str:
        """Register a send; returns ``"done"`` or ``"suspend"``."""

        if self.closed:
            return "closed"
        self.pending_elements.append(element)
        if self.pending_receives > 0:
            self.pending_receives -= 1
            return "done"
        # A send completes without suspending iff it fits the buffer.
        if len(self.pending_elements) <= self.capacity:
            return "done"
        return "suspend"

    def receive(self) -> tuple[str, Optional[Any]]:
        """Register a receive; returns ``(status, element_or_None)``."""

        if self.pending_elements:
            return ("done", self.pending_elements.popleft())
        if self.closed:
            return ("closed", None)
        self.pending_receives += 1
        return ("suspend", None)

    def close(self) -> None:
        self.closed = True


def check_fifo_matching(sent: list[Any], received: list[Any], closed_clean: bool = True) -> None:
    """Validate the §4.1 linearization: receives read sends in order.

    ``sent`` — elements of successful sends in S-counter order;
    ``received`` — elements of successful receives in R-counter order.
    Raises :class:`LinearizabilityError` on any mismatch.  With
    ``closed_clean`` (no ``cancel()``), undelivered elements must be
    exactly the tail of the send order.
    """

    if len(received) > len(sent):
        raise LinearizabilityError(
            f"{len(received)} receives completed but only {len(sent)} sends"
        )
    for k, (s, r) in enumerate(zip(sent, received)):
        if s != r:
            raise LinearizabilityError(
                f"FIFO violation at position {k}: sent {s!r}, received {r!r}\n"
                f"  sent:     {sent[:k + 3]!r}...\n"
                f"  received: {received[:k + 3]!r}..."
            )
    if closed_clean:
        # Nothing to check beyond the prefix property: the remaining
        # elements sent[len(received):] are still buffered/suspended.
        pass
