"""Cell life-cycle conformance: every transition must be a diagram edge.

The paper specifies the channels as cell state machines (Figure 1 for the
rendezvous channel, Figure 2 for the buffered one, Figure 6 for the
Appendix A variant).  This checker watches every successful write/CAS on a
cell-state location and asserts the (old → new) pair is an edge of the
applicable diagram — under any scheduling policy, including exhaustive
exploration.

States are abstracted to the diagram's vocabulary:

``EMPTY, SEND_WAITER, RCV_WAITER, ANY_WAITER, EB_WAITER, BUFFERED,
IN_BUFFER, DONE, DONE_RCV, BROKEN, INT_SEND, INT_RCV, INT, INT_EB,
S_RESUMING_RCV, S_RESUMING_EB, CANCELLED``

The edge sets include the paper's production extensions, each annotated:
closing (EMPTY → INT_* by failed sends/receives), ``cancel()``
(BUFFERED → CANCELLED), and select (waiter → BROKEN via the retry
neutralization; waiter → INT_* via losing-registration cleanup — the same
edges as interruption).
"""

from __future__ import annotations

from typing import Any, Optional

from ..concurrent.ops import Cas, GetAndSet, Op, Write
from ..core.states import (
    BROKEN,
    BUFFERED,
    CANCELLED,
    DONE,
    DONE_RCV,
    EBWaiter,
    IN_BUFFER,
    INTERRUPTED,
    INTERRUPTED_EB,
    INTERRUPTED_RCV,
    INTERRUPTED_SEND,
    S_RESUMING_EB,
    S_RESUMING_RCV,
    ReceiverWaiter,
    SenderWaiter,
)
from ..errors import InvariantViolation
from ..runtime.waiter import Waiter
from ..sim.scheduler import Scheduler
from ..sim.tasks import Task

__all__ = ["CellLifecycleChecker", "abstract_state", "RENDEZVOUS_EDGES", "BUFFERED_EDGES", "EB_EDGES"]


def abstract_state(value: Any) -> str:
    """Map a concrete cell value to the diagram vocabulary."""

    if value is None:
        return "EMPTY"
    if isinstance(value, SenderWaiter):
        return "SEND_WAITER"
    if isinstance(value, ReceiverWaiter):
        return "RCV_WAITER"
    if isinstance(value, EBWaiter):
        return "EB_WAITER"
    if isinstance(value, Waiter):
        return "ANY_WAITER"
    mapping = {
        BUFFERED: "BUFFERED",
        IN_BUFFER: "IN_BUFFER",
        DONE: "DONE",
        DONE_RCV: "DONE_RCV",
        BROKEN: "BROKEN",
        INTERRUPTED_SEND: "INT_SEND",
        INTERRUPTED_RCV: "INT_RCV",
        INTERRUPTED: "INT",
        INTERRUPTED_EB: "INT_EB",
        S_RESUMING_RCV: "S_RESUMING_RCV",
        S_RESUMING_EB: "S_RESUMING_EB",
        CANCELLED: "CANCELLED",
    }
    name = mapping.get(value)
    if name is None:
        raise InvariantViolation(f"unknown cell state value: {value!r}")
    return name


#: Figure 1 (+ production extensions, annotated).
RENDEZVOUS_EDGES = frozenset(
    {
        ("EMPTY", "SEND_WAITER"),  # sender suspends
        ("EMPTY", "RCV_WAITER"),  # receiver suspends
        ("EMPTY", "BUFFERED"),  # elimination
        ("EMPTY", "BROKEN"),  # poisoning
        ("SEND_WAITER", "DONE"),  # receiver resumes sender
        ("RCV_WAITER", "DONE"),  # sender resumes receiver
        ("SEND_WAITER", "INT_SEND"),  # sender interrupted / select cleanup
        ("RCV_WAITER", "INT_RCV"),  # receiver interrupted / select cleanup
        ("EMPTY", "INT_SEND"),  # closed/try send marks its cell
        ("EMPTY", "INT_RCV"),  # closed/try receive marks its cell
        ("SEND_WAITER", "BROKEN"),  # select retry-neutralization (ext.)
        ("RCV_WAITER", "BROKEN"),  # select retry-neutralization (ext.)
        ("BUFFERED", "CANCELLED"),  # cancel() discards the element (ext.)
    }
)

#: Figure 2 (+ production extensions).
BUFFERED_EDGES = frozenset(
    {
        ("EMPTY", "SEND_WAITER"),
        ("EMPTY", "RCV_WAITER"),
        ("IN_BUFFER", "RCV_WAITER"),
        ("EMPTY", "BUFFERED"),  # buffer deposit / elimination
        ("IN_BUFFER", "BUFFERED"),
        ("EMPTY", "IN_BUFFER"),  # expandBuffer pre-marks
        ("EMPTY", "BROKEN"),
        ("IN_BUFFER", "BROKEN"),
        ("RCV_WAITER", "DONE_RCV"),
        ("SEND_WAITER", "S_RESUMING_RCV"),  # receive helps
        ("SEND_WAITER", "S_RESUMING_EB"),  # expandBuffer resumes
        ("S_RESUMING_RCV", "BUFFERED"),
        ("S_RESUMING_RCV", "INT_SEND"),
        ("S_RESUMING_EB", "BUFFERED"),
        ("S_RESUMING_EB", "INT_SEND"),
        ("SEND_WAITER", "INT_SEND"),
        ("RCV_WAITER", "INT_RCV"),
        ("EMPTY", "INT_SEND"),  # closed/try send (ext.)
        ("EMPTY", "INT_RCV"),  # closed/try receive (ext.)
        ("IN_BUFFER", "INT_RCV"),  # closed/try receive on a buffer cell (ext.)
        ("SEND_WAITER", "BROKEN"),  # select retry (ext.)
        ("RCV_WAITER", "BROKEN"),  # select retry (ext.)
        ("BUFFERED", "CANCELLED"),  # cancel() (ext.)
    }
)

#: Figure 6 (generic waiters, EB markers) + extensions.
EB_EDGES = frozenset(
    {
        ("EMPTY", "ANY_WAITER"),
        ("IN_BUFFER", "ANY_WAITER"),
        ("EMPTY", "BUFFERED"),
        ("IN_BUFFER", "BUFFERED"),
        ("EMPTY", "IN_BUFFER"),
        ("EMPTY", "BROKEN"),
        ("IN_BUFFER", "BROKEN"),
        ("ANY_WAITER", "DONE_RCV"),
        ("ANY_WAITER", "EB_WAITER"),  # Coroutine -> Coroutine+EB
        ("EB_WAITER", "DONE_RCV"),  # send ignores the marker
        ("ANY_WAITER", "S_RESUMING_RCV"),
        ("EB_WAITER", "S_RESUMING_RCV"),
        ("ANY_WAITER", "S_RESUMING_EB"),
        ("S_RESUMING_RCV", "BUFFERED"),
        ("S_RESUMING_RCV", "INT_SEND"),
        ("S_RESUMING_EB", "BUFFERED"),
        ("S_RESUMING_EB", "INT_SEND"),
        ("ANY_WAITER", "INT"),  # generic interruption
        ("EB_WAITER", "INT_EB"),
        ("INT", "INT_EB"),  # expandBuffer delegates
        ("INT", "INT_SEND"),  # expandBuffer classifies (b >= R)
        ("INT_EB", "INT_SEND"),  # receive classifies + compensates
        ("EMPTY", "INT"),  # closed/try ops (ext.)
        ("IN_BUFFER", "INT"),  # closed/try receive (ext.)
        ("BUFFERED", "CANCELLED"),  # cancel() (ext.)
    }
)


class CellLifecycleChecker:
    """Scheduler hook asserting all cell transitions are diagram edges.

    ``edges`` defaults by channel type name; pass explicitly to check a
    custom variant.  State cells are recognized by their debug names
    (``seg<N>.state[<i>]``), which every segment assigns.
    """

    def __init__(self, edges: frozenset[tuple[str, str]], tag: Optional[str] = None):
        self.edges = edges
        #: Cell-name prefix scoping the checker to one channel's segment
        #: list (``None`` = watch every state cell in the simulation).
        self.tag = tag
        self._shadow: dict[int, Any] = {}
        self.transitions = 0

    @classmethod
    def for_channel(cls, channel: Any) -> "CellLifecycleChecker":
        from ..core.buffered import BufferedChannel
        from ..core.buffered_eb import BufferedChannelEB
        from ..core.rendezvous import RendezvousChannel

        tag = channel._list.tag
        if isinstance(channel, BufferedChannelEB):
            return cls(EB_EDGES, tag)
        if isinstance(channel, BufferedChannel):
            return cls(BUFFERED_EDGES, tag)
        if isinstance(channel, RendezvousChannel):
            return cls(RENDEZVOUS_EDGES, tag)
        raise TypeError(f"no life-cycle diagram known for {type(channel).__name__}")

    def __call__(self, sched: Scheduler, task: Task, op: Op) -> None:
        t = type(op)
        if t is Cas:
            if not task.pending_value:
                return  # failed CAS: no transition
            cell = op.cell
            new = op.update
        elif t is Write or t is GetAndSet:
            cell = op.cell
            new = op.value
        else:
            return
        name = cell.name
        if ".state[" not in name:
            return
        if self.tag is not None and not name.startswith(self.tag + "."):
            return
        old = self._shadow.get(cell.loc_id)
        self._shadow[cell.loc_id] = new
        old_abs = abstract_state(old)
        new_abs = abstract_state(new)
        if old_abs == new_abs:
            return  # e.g. waiter replaced by same-kind waiter: not possible, but benign
        self.transitions += 1
        if (old_abs, new_abs) not in self.edges:
            raise InvariantViolation(
                f"illegal cell transition {old_abs} -> {new_abs} on {name} "
                f"(task {task.name})"
            )
