"""Lincheck-style fuzzing: random concurrent programs vs. the spec.

Generates random per-task operation sequences (send / receive / try-ops /
close), executes them under seeded-random scheduling, and validates:

* small programs — full linearizability of the completed send/receive
  history (:func:`repro.verify.checker.check_linearizable`);
* all programs — conservation: every received value was sent exactly
  once, and values neither duplicate nor materialize.

Programs may legitimately deadlock (e.g. a send with no matching
receive); the run then validates whatever completed — exactly how dual
data structures are specified (pending registrations are unconstrained).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import (
    ChannelClosed,
    ChannelClosedForReceive,
    ChannelClosedForSend,
    DeadlockError,
    Interrupted,
    StepLimitExceeded,
)
from ..sim.costmodel import NullCostModel
from ..sim.scheduler import RandomPolicy, Scheduler
from .checker import Event, check_linearizable

__all__ = [
    "FuzzReport",
    "random_program",
    "run_fuzz_case",
    "fuzz_channel",
    "fuzz_segment_recycling",
]

_OP_KINDS = ("send", "receive", "try_send", "try_receive")


@dataclass
class FuzzReport:
    """Outcome of one fuzz case."""

    seed: int
    program: list[list[tuple[str, Any]]]
    events: list[Event] = field(default_factory=list)
    deadlocked: bool = False
    sent: list[Any] = field(default_factory=list)
    received: list[Any] = field(default_factory=list)
    checked_linearizability: bool = False


def random_program(
    rng: random.Random,
    n_tasks: int,
    ops_per_task: int,
    allow_close: bool = True,
) -> list[list[tuple[str, Any]]]:
    """A random program: per task, a list of ``(op_kind, value)``."""

    value = iter(range(1, 10_000))
    program = []
    for _ in range(n_tasks):
        ops = []
        for _ in range(ops_per_task):
            kind = rng.choice(_OP_KINDS + (("close",) if allow_close and rng.random() < 0.08 else ()))
            ops.append((kind, next(value) if "send" in kind else None))
        program.append(ops)
    return program


def run_fuzz_case(
    channel_factory: Callable[[], Any],
    program: list[list[tuple[str, Any]]],
    seed: int,
    capacity: int,
    check_lin: bool = False,
    max_steps: int = 500_000,
    policy_factory: Optional[Callable[[int], Any]] = None,
    cost_model_factory: Optional[Callable[[], Any]] = None,
) -> FuzzReport:
    """Execute one random program and validate its outcome.

    ``policy_factory`` (seed → policy) swaps the scheduling regime the
    program runs under — the policy-parity harness fuzzes every policy
    through here.  Defaults to seeded-random scheduling, the regime with
    the densest interleaving coverage.
    """

    channel = channel_factory()
    policy = policy_factory(seed) if policy_factory is not None else RandomPolicy(seed)
    cost = cost_model_factory() if cost_model_factory is not None else NullCostModel()
    sched = Scheduler(policy=policy, cost_model=cost, max_steps=max_steps)
    report = FuzzReport(seed=seed, program=program)
    now = lambda: sched.total_steps  # noqa: E731

    def task_body(ops):
        for kind, value in ops:
            try:
                if kind == "send":
                    start = now()
                    yield from channel.send(value)
                    report.events.append(Event("send", value, start, now()))
                    report.sent.append(value)
                elif kind == "receive":
                    start = now()
                    got = yield from channel.receive()
                    report.events.append(Event("receive", got, start, now()))
                    report.received.append(got)
                elif kind == "try_send":
                    start = now()
                    ok = yield from channel.try_send(value)
                    if ok:
                        report.events.append(Event("send", value, start, now()))
                        report.sent.append(value)
                elif kind == "try_receive":
                    start = now()
                    ok, got = yield from channel.try_receive()
                    if ok:
                        report.events.append(Event("receive", got, start, now()))
                        report.received.append(got)
                else:  # close
                    yield from channel.close()
            except (ChannelClosedForSend, ChannelClosedForReceive):
                continue  # closed mid-program: later ops may still be legal

    for ops in program:
        sched.spawn(task_body(ops))
    try:
        sched.run()
    except DeadlockError:
        report.deadlocked = True
    except StepLimitExceeded:
        report.deadlocked = True  # treat budget exhaustion like a stall

    _validate(report, capacity, check_lin)
    return report


def _validate(report: FuzzReport, capacity: int, check_lin: bool) -> None:
    # Conservation: receives are a sub-multiset of sends, no duplicates.
    sent = sorted(report.sent)
    received = sorted(report.received)
    assert len(set(sent)) == len(sent), f"duplicate send recorded: {sent}"
    assert len(set(received)) == len(received), f"value received twice: {received}"
    missing = set(received) - set(sent)
    assert not missing, f"values received but never sent: {missing}"
    if check_lin and len(report.events) <= 12:
        check_linearizable(report.events, capacity)
        report.checked_linearizability = True


def fuzz_segment_recycling(
    cases: int = 25,
    seed: int = 0,
    seg_size: int = 2,
    max_steps: int = 300_000,
) -> dict[str, int]:
    """Storm-test segment pooling: cancel/close/interrupt while recycling.

    Tiny segments (``seg_size`` cells) force continuous segment turnover;
    producer/consumer pairs race with interrupters and an occasional
    ``close()``/``cancel()``, so segments are freed — and their carcasses
    recycled into later segments — while waiters are parked, cells are
    being interrupted, and close/cancel walks are in flight.

    Invariants checked per case:

    * the pool never harvests a carcass whose cells still hold a waiter
      (``pool_rejected == 0``) — recycling must be impossible to observe
      as a resurrected parked task;
    * conservation — every received value was sent, exactly once.

    The aggregate must also show the pool actually worked (some carcasses
    recycled *and* reused), otherwise the test is vacuous.  Returns the
    aggregated pool counters.
    """

    import gc

    from ..core import BufferedChannel, RendezvousChannel
    from ..runtime import interrupt_task

    totals = {"recycled": 0, "hits": 0, "rejected": 0, "deadlocks": 0}
    for case in range(cases):
        rng = random.Random(seed * 7919 + case)
        capacity = rng.choice((0, 0, 1, 4))
        if capacity == 0:
            channel: Any = RendezvousChannel(seg_size=seg_size, name=f"fuzz-pool-{case}")
        else:
            channel = BufferedChannel(capacity, seg_size=seg_size, name=f"fuzz-pool-{case}")
        sched = Scheduler(
            policy=RandomPolicy(seed * 99991 + case),
            cost_model=NullCostModel(),
            max_steps=max_steps,
        )
        sent: list[int] = []
        received: list[int] = []
        pairs = rng.randint(1, 3)
        per_task = rng.randint(4, 12)
        base = case * 1_000_000

        def producer(pid: int, n: int):
            for k in range(n):
                value = base + pid * 1000 + k
                try:
                    yield from channel.send(value)
                except (ChannelClosed, Interrupted):
                    return
                sent.append(value)

        def consumer(n: int):
            for _ in range(n):
                try:
                    got = yield from channel.receive()
                except (ChannelClosed, Interrupted):
                    return
                received.append(got)

        def terminator():
            if rng.random() < 0.5:
                yield from channel.close()
            else:
                yield from channel.cancel()

        victims = []
        for p in range(pairs):
            victims.append(sched.spawn(producer(p, per_task), f"prod-{p}"))
            victims.append(sched.spawn(consumer(per_task), f"cons-{p}"))
        for x in range(rng.randint(1, 3)):
            sched.spawn(interrupt_task(rng.choice(victims)), f"x-{x}")
        if rng.random() < 0.4:
            sched.spawn(terminator(), "terminator")
        try:
            sched.run()
        except (DeadlockError, StepLimitExceeded):
            totals["deadlocks"] += 1

        gc.collect()  # drive any cycle-held segment carcasses to harvest
        seg_list = channel._list
        assert seg_list.pool_rejected == 0, (
            f"case {case}: pool offered a carcass still holding a waiter "
            f"({seg_list.pool_rejected} rejections)"
        )
        assert len(set(received)) == len(received), f"case {case}: value received twice"
        missing = set(received) - set(sent)
        assert not missing, f"case {case}: received but never sent: {missing}"
        totals["recycled"] += seg_list.pool_recycled
        totals["hits"] += seg_list.pool_hits
        totals["rejected"] += seg_list.pool_rejected
    assert totals["recycled"] > 0, "pooling never exercised: no carcass was recycled"
    assert totals["hits"] > 0, "pooling never exercised: no carcass was reused"
    return totals


def fuzz_channel(
    channel_factory: Callable[[], Any],
    capacity: int,
    cases: int = 50,
    seed: int = 0,
    n_tasks: int = 3,
    ops_per_task: int = 4,
    check_lin: bool = True,
    policy_factory: Optional[Callable[[int], Any]] = None,
    cost_model_factory: Optional[Callable[[], Any]] = None,
) -> list[FuzzReport]:
    """Run many fuzz cases; returns their reports (raises on violation)."""

    rng = random.Random(seed)
    reports = []
    for case in range(cases):
        program = random_program(rng, n_tasks, ops_per_task)
        reports.append(
            run_fuzz_case(
                channel_factory,
                program,
                seed=seed * 99991 + case,
                capacity=capacity,
                check_lin=check_lin,
                policy_factory=policy_factory,
                cost_model_factory=cost_model_factory,
            )
        )
    return reports
