"""Lincheck-style fuzzing: random concurrent programs vs. the spec.

Generates random per-task operation sequences (send / receive / try-ops /
close), executes them under seeded-random scheduling, and validates:

* small programs — full linearizability of the completed send/receive
  history (:func:`repro.verify.checker.check_linearizable`);
* all programs — conservation: every received value was sent exactly
  once, and values neither duplicate nor materialize.

Programs may legitimately deadlock (e.g. a send with no matching
receive); the run then validates whatever completed — exactly how dual
data structures are specified (pending registrations are unconstrained).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import (
    ChannelClosedForReceive,
    ChannelClosedForSend,
    DeadlockError,
    StepLimitExceeded,
)
from ..sim.costmodel import NullCostModel
from ..sim.scheduler import RandomPolicy, Scheduler
from .checker import Event, check_linearizable

__all__ = ["FuzzReport", "random_program", "run_fuzz_case", "fuzz_channel"]

_OP_KINDS = ("send", "receive", "try_send", "try_receive")


@dataclass
class FuzzReport:
    """Outcome of one fuzz case."""

    seed: int
    program: list[list[tuple[str, Any]]]
    events: list[Event] = field(default_factory=list)
    deadlocked: bool = False
    sent: list[Any] = field(default_factory=list)
    received: list[Any] = field(default_factory=list)
    checked_linearizability: bool = False


def random_program(
    rng: random.Random,
    n_tasks: int,
    ops_per_task: int,
    allow_close: bool = True,
) -> list[list[tuple[str, Any]]]:
    """A random program: per task, a list of ``(op_kind, value)``."""

    value = iter(range(1, 10_000))
    program = []
    for _ in range(n_tasks):
        ops = []
        for _ in range(ops_per_task):
            kind = rng.choice(_OP_KINDS + (("close",) if allow_close and rng.random() < 0.08 else ()))
            ops.append((kind, next(value) if "send" in kind else None))
        program.append(ops)
    return program


def run_fuzz_case(
    channel_factory: Callable[[], Any],
    program: list[list[tuple[str, Any]]],
    seed: int,
    capacity: int,
    check_lin: bool = False,
    max_steps: int = 500_000,
) -> FuzzReport:
    """Execute one random program and validate its outcome."""

    channel = channel_factory()
    sched = Scheduler(policy=RandomPolicy(seed), cost_model=NullCostModel(), max_steps=max_steps)
    report = FuzzReport(seed=seed, program=program)
    now = lambda: sched.total_steps  # noqa: E731

    def task_body(ops):
        for kind, value in ops:
            try:
                if kind == "send":
                    start = now()
                    yield from channel.send(value)
                    report.events.append(Event("send", value, start, now()))
                    report.sent.append(value)
                elif kind == "receive":
                    start = now()
                    got = yield from channel.receive()
                    report.events.append(Event("receive", got, start, now()))
                    report.received.append(got)
                elif kind == "try_send":
                    start = now()
                    ok = yield from channel.try_send(value)
                    if ok:
                        report.events.append(Event("send", value, start, now()))
                        report.sent.append(value)
                elif kind == "try_receive":
                    start = now()
                    ok, got = yield from channel.try_receive()
                    if ok:
                        report.events.append(Event("receive", got, start, now()))
                        report.received.append(got)
                else:  # close
                    yield from channel.close()
            except (ChannelClosedForSend, ChannelClosedForReceive):
                continue  # closed mid-program: later ops may still be legal

    for ops in program:
        sched.spawn(task_body(ops))
    try:
        sched.run()
    except DeadlockError:
        report.deadlocked = True
    except StepLimitExceeded:
        report.deadlocked = True  # treat budget exhaustion like a stall

    _validate(report, capacity, check_lin)
    return report


def _validate(report: FuzzReport, capacity: int, check_lin: bool) -> None:
    # Conservation: receives are a sub-multiset of sends, no duplicates.
    sent = sorted(report.sent)
    received = sorted(report.received)
    assert len(set(sent)) == len(sent), f"duplicate send recorded: {sent}"
    assert len(set(received)) == len(received), f"value received twice: {received}"
    missing = set(received) - set(sent)
    assert not missing, f"values received but never sent: {missing}"
    if check_lin and len(report.events) <= 12:
        check_linearizable(report.events, capacity)
        report.checked_linearizability = True


def fuzz_channel(
    channel_factory: Callable[[], Any],
    capacity: int,
    cases: int = 50,
    seed: int = 0,
    n_tasks: int = 3,
    ops_per_task: int = 4,
    check_lin: bool = True,
) -> list[FuzzReport]:
    """Run many fuzz cases; returns their reports (raises on violation)."""

    rng = random.Random(seed)
    reports = []
    for case in range(cases):
        program = random_program(rng, n_tasks, ops_per_task)
        reports.append(
            run_fuzz_case(
                channel_factory,
                program,
                seed=seed * 99991 + case,
                capacity=capacity,
                check_lin=check_lin,
            )
        )
    return reports
