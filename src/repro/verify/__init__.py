"""Verification: sequential spec, invariant hooks, linearizability checks."""

from .checker import Event, HistoryRecorder, check_linearizable
from .fuzz import FuzzReport, fuzz_channel, random_program, run_fuzz_case
from .invariants import FifoObserver, Lemma1Checker, NoRendezvousBlockingChecker
from .lifecycle import (
    BUFFERED_EDGES,
    EB_EDGES,
    RENDEZVOUS_EDGES,
    CellLifecycleChecker,
    abstract_state,
)
from .scenarios import ProducerConsumerScenario, drain_consumer, producer_consumer
from .spec import SequentialChannelSpec, check_fifo_matching

__all__ = [
    "SequentialChannelSpec",
    "check_fifo_matching",
    "Lemma1Checker",
    "FifoObserver",
    "NoRendezvousBlockingChecker",
    "ProducerConsumerScenario",
    "producer_consumer",
    "drain_consumer",
    "HistoryRecorder",
    "Event",
    "check_linearizable",
    "fuzz_channel",
    "run_fuzz_case",
    "random_program",
    "FuzzReport",
    "CellLifecycleChecker",
    "abstract_state",
    "RENDEZVOUS_EDGES",
    "BUFFERED_EDGES",
    "EB_EDGES",
]
