"""Reusable concurrent scenarios for exploration and stress testing.

A scenario builder spawns producer/consumer (and optionally canceller /
closer) tasks on a scheduler and returns a context the paired checker
validates after the run.  They are shared between the unit tests, the
hypothesis properties, and the exploration suites so that one definition
covers all scheduling regimes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..concurrent.ops import Yield
from ..errors import Interrupted
from ..sim.scheduler import Scheduler
from .invariants import FifoObserver

__all__ = ["ProducerConsumerScenario", "producer_consumer", "drain_consumer"]

ChannelFactory = Callable[[], Any]


class ProducerConsumerScenario:
    """N producers / M consumers over one channel, with optional close.

    The per-run context records every successfully sent and received
    element; :meth:`check` validates conservation (multiset equality)
    and, when the channel supports an observer, FIFO matching.
    """

    def __init__(
        self,
        factory: ChannelFactory,
        producers: int = 2,
        consumers: int = 2,
        per_producer: int = 5,
        use_observer: bool = True,
    ):
        self.factory = factory
        self.producers = producers
        self.consumers = consumers
        self.per_producer = per_producer
        self.use_observer = use_observer
        total = producers * per_producer
        if total % consumers:
            raise ValueError("total elements must divide evenly among consumers")
        self.per_consumer = total // consumers

    def build(self, sched: Scheduler) -> dict[str, Any]:
        channel = self.factory()
        ctx: dict[str, Any] = {"channel": channel, "received": [], "observer": None}
        if self.use_observer and hasattr(channel, "observer"):
            obs = FifoObserver()
            channel.observer = obs
            ctx["observer"] = obs

        def producer(pid: int):
            for i in range(self.per_producer):
                yield from channel.send(pid * 1000 + i)

        def consumer():
            for _ in range(self.per_consumer):
                value = yield from channel.receive()
                ctx["received"].append(value)

        for p in range(self.producers):
            sched.spawn(producer(p), f"producer-{p}")
        for c in range(self.consumers):
            sched.spawn(consumer(), f"consumer-{c}")
        return ctx

    def check(self, ctx: dict[str, Any], sched: Scheduler) -> None:
        expected = sorted(
            pid * 1000 + i for pid in range(self.producers) for i in range(self.per_producer)
        )
        got = sorted(ctx["received"])
        assert got == expected, f"conservation violated: {got} != {expected}"
        obs: Optional[FifoObserver] = ctx["observer"]
        if obs is not None:
            obs.verify()


def producer_consumer(channel: Any, pid: int, count: int, sent_log: Optional[list] = None):
    """A producer task body; records successful sends in ``sent_log``."""

    try:
        for i in range(count):
            yield from channel.send(pid * 1000 + i)
            if sent_log is not None:
                sent_log.append(pid * 1000 + i)
    except Interrupted:
        pass


def drain_consumer(channel: Any, out: list):
    """Consume until the channel closes, appending to ``out``."""

    while True:
        ok, value = yield from channel.receive_catching()
        if not ok:
            return
        out.append(value)
