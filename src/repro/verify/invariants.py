"""Per-step invariant checkers (scheduler hooks).

Attach these to a :class:`~repro.sim.scheduler.Scheduler` with
``sched.add_hook(checker)``; they observe every executed op and raise
:class:`~repro.errors.InvariantViolation` the moment a paper property
breaks, under any scheduling policy.

* :class:`Lemma1Checker` — suspension correctness (§4.1): an operation
  may suspend only if its counter was not behind the opposite counter at
  its FAA linearization point.
* :class:`FifoObserver` — collects successful sends/receives in
  linearization (counter) order and validates the FIFO matching of §4.1.
* :class:`NoRendezvousBlockingChecker` — progress (§4.2): rendezvous
  channel operations never execute a *blocking* spin-wait (the only
  tagged spins belong to the buffered algorithm's documented
  receive/expandBuffer race).
"""

from __future__ import annotations

from typing import Any, Optional

from ..concurrent.ops import Faa, Op, ParkTask, Spin
from ..core.base import ChannelBase
from ..core.closing import counter_of
from ..core.states import ReceiverWaiter, SenderWaiter
from ..errors import InvariantViolation
from ..sim.scheduler import Scheduler
from ..sim.tasks import Task
from .spec import check_fifo_matching

__all__ = ["Lemma1Checker", "FifoObserver", "NoRendezvousBlockingChecker"]


class Lemma1Checker:
    """Checks Lemma 1 at every actual suspension.

    The hook runs in the same atomic window as the op it observes, so
    reading the opposite counter's plain ``value`` right after a FAA
    yields exactly its value at the linearization point.
    """

    def __init__(self, channel: ChannelBase):
        self.channel = channel
        self._send_res: dict[int, tuple[int, int]] = {}  # tid -> (s, r_at_faa)
        self._rcv_res: dict[int, tuple[int, int]] = {}  # tid -> (r, s_at_faa)
        self.checked_suspensions = 0

    def __call__(self, sched: Scheduler, task: Task, op: Op) -> None:
        ch = self.channel
        t = type(op)
        if t is Faa:
            cell = op.cell  # type: ignore[attr-defined]
            if cell is ch.S:
                s = counter_of(task.pending_value)
                self._send_res[task.tid] = (s, counter_of(ch.R.value))
            elif cell is ch.R:
                r = counter_of(task.pending_value)
                self._rcv_res[task.tid] = (r, counter_of(ch.S.value))
            return
        if t is ParkTask:
            waiter = op.waiter  # type: ignore[attr-defined]
            if isinstance(waiter, SenderWaiter):
                res = self._send_res.get(task.tid)
                if res is not None:
                    s, r_at = res
                    self.checked_suspensions += 1
                    if s < r_at:
                        raise InvariantViolation(
                            f"Lemma 1 violated: sender suspended at cell {s} "
                            f"although R was already {r_at} at its FAA"
                        )
            elif isinstance(waiter, ReceiverWaiter):
                res = self._rcv_res.get(task.tid)
                if res is not None:
                    r, s_at = res
                    self.checked_suspensions += 1
                    # For buffered channels the receive suspends only when
                    # r >= s; the rendezvous case is identical.
                    if r < s_at:
                        raise InvariantViolation(
                            f"Lemma 1 violated: receiver suspended at cell {r} "
                            f"although S was already {s_at} at its FAA"
                        )


class FifoObserver:
    """Channel observer collecting the §4.1 linearization orders.

    Install with ``channel.observer = obs``; call :meth:`verify` after
    the run.  Works for every :class:`~repro.core.base.ChannelBase`
    subclass (the observer callbacks carry the success cell index, which
    *is* the linearization order per direction).
    """

    def __init__(self) -> None:
        self.sends: list[tuple[int, Any]] = []
        self.receives: list[tuple[int, Any]] = []

    def send_done(self, cell: int, element: Any) -> None:
        self.sends.append((cell, element))

    def receive_done(self, cell: int, value: Any) -> None:
        self.receives.append((cell, value))

    def verify(self) -> None:
        sent = [e for _, e in sorted(self.sends)]
        received = [v for _, v in sorted(self.receives)]
        # Sanity: one success per cell and per direction.
        send_cells = [c for c, _ in self.sends]
        rcv_cells = [c for c, _ in self.receives]
        if len(set(send_cells)) != len(send_cells):
            raise InvariantViolation(f"two sends succeeded in one cell: {sorted(send_cells)}")
        if len(set(rcv_cells)) != len(rcv_cells):
            raise InvariantViolation(f"two receives succeeded in one cell: {sorted(rcv_cells)}")
        check_fifo_matching(sent, received)

    # Convenience for tests.
    @property
    def sent_in_order(self) -> list[Any]:
        return [e for _, e in sorted(self.sends)]

    @property
    def received_in_order(self) -> list[Any]:
        return [v for _, v in sorted(self.receives)]


class NoRendezvousBlockingChecker:
    """Asserts the rendezvous algorithm never blocks in a spin-wait.

    The buffered algorithm's only blocking interactions are the tagged
    ``rcv-wait-eb`` / ``eb-wait-rcv`` spins; a rendezvous channel must
    produce none (§4.2: obstruction-free, spin-free).
    """

    BLOCKING_REASONS = ("rcv-wait-eb", "eb-wait-rcv")

    def __init__(self, allow: tuple[str, ...] = ()):  # allow-list for other spins
        self.allow = allow
        self.seen: list[str] = []

    def __call__(self, sched: Scheduler, task: Task, op: Op) -> None:
        if type(op) is Spin:
            reason = op.reason  # type: ignore[attr-defined]
            if reason in self.BLOCKING_REASONS and reason not in self.allow:
                raise InvariantViolation(
                    f"rendezvous operation executed blocking spin {reason!r}"
                )
            self.seen.append(reason)
