"""Channel introspection: render the live segment/cell state.

For failing tests and curious users: :func:`dump_channel` prints the
counters and every reachable segment's cell states in a compact, stable
format, safe to call between simulator steps (plain value reads only).

::

    >>> print(dump_channel(ch))
    BufferedChannel 'jobs'  S=7 R=5 B=9  closed=False
      seg#0 ptrs=3 int=0/2  [0]=BUFFERED elem=41  [1]=DONE_RCV
      seg#1 ptrs=0 int=1/2  [2]=INT_SEND          [3]=<SenderWaiter PARKED>
"""

from __future__ import annotations

from typing import Any

from ..runtime.waiter import Waiter
from .base import ChannelBase
from .states import CellState, EBWaiter

__all__ = ["dump_channel", "channel_summary"]


def _fmt_state(value: Any) -> str:
    if value is None:
        return "EMPTY"
    if isinstance(value, EBWaiter):
        return f"<{type(value.waiter).__name__}+EB {value.waiter.state!r}>"
    if isinstance(value, Waiter):
        return f"<{type(value).__name__} {value.state!r}>"
    if isinstance(value, CellState):
        return value.name
    return repr(value)


def dump_channel(channel: ChannelBase) -> str:
    """Human-readable snapshot of a channel's segments and counters."""

    lines = [
        f"{type(channel).__name__} {channel.name!r}  "
        f"S={channel.sender_counter} R={channel.receiver_counter}"
        + (f" B={channel.B.value}" if hasattr(channel, "B") else "")
        + f"  closed={channel.closed_now}"
    ]
    K = channel.seg_size
    for seg in channel._list.iter_segments():
        pointers, interrupted = seg._decode(seg._cnt.value)
        removed = " REMOVED" if seg.removed_now else ""
        cells = []
        for i in range(K):
            state = seg.state_cell(i).value
            elem = seg.elem_cell(i).value
            entry = f"[{seg.id * K + i}]={_fmt_state(state)}"
            if elem is not None:
                entry += f" elem={elem!r}"
            cells.append(entry)
        lines.append(
            f"  seg#{seg.id} ptrs={pointers} int={interrupted}/{K}{removed}  " + "  ".join(cells)
        )
    return "\n".join(lines)


def channel_summary(channel: ChannelBase) -> dict[str, Any]:
    """Machine-readable channel summary (counters, cell-state histogram)."""

    histogram: dict[str, int] = {}
    for seg in channel._list.iter_segments():
        for cell in seg.states:
            key = _fmt_state(cell.value).split(" ")[0].strip("<>")
            histogram[key] = histogram.get(key, 0) + 1
    return {
        "type": type(channel).__name__,
        "name": channel.name,
        "senders": channel.sender_counter,
        "receivers": channel.receiver_counter,
        "buffer_end": channel.B.value if hasattr(channel, "B") else None,
        "closed": channel.closed_now,
        "segments": len(channel._list.iter_segments()),
        "segments_alive": channel._list.alive_count(),
        "cell_states": histogram,
        "stats": channel.stats.snapshot(),
    }
