"""Counter packing for the close/cancel protocol (§5 "full channel semantics").

The paper's production version packs the channel's close status into the
``S`` counter so that closing and sending order themselves with a single
atomic instruction.  We reproduce that:

* bit 60 of ``S`` is the **close** flag: set by ``close()``/``cancel()``
  with a CAS; every ``send`` observes it atomically in the value returned
  by its ``FAA(&S, +1)`` — a send whose FAA returns a flagged value
  linearizes *after* the close and must fail (after marking its reserved
  cell ``INTERRUPTED_SEND`` so the cell life-cycle stays sound);
* bit 60 of ``R`` is the **cancel** flag: ``cancel()`` additionally stops
  receivers from draining; a receive whose FAA returns a flagged value
  fails immediately.

Counters are conceptually 60-bit; Python integers never overflow, so no
wrap-around handling is required.
"""

from __future__ import annotations

__all__ = ["CLOSE_BIT", "COUNTER_MASK", "counter_of", "is_flagged", "with_flag"]

#: Status flag bit (close on S, cancel on R).
CLOSE_BIT = 1 << 60

#: Mask selecting the pure counter value.
COUNTER_MASK = CLOSE_BIT - 1


def counter_of(raw: int) -> int:
    """The counter part of a packed S/R value."""

    return raw & COUNTER_MASK


def is_flagged(raw: int) -> bool:
    """Is the close/cancel flag set in this packed value?"""

    return bool(raw & CLOSE_BIT)


def with_flag(raw: int) -> int:
    """The packed value with the status flag set."""

    return raw | CLOSE_BIT
