"""The paper's contribution: FAA-based rendezvous and buffered channels."""

from .base import ChannelBase
from .buffered import BufferedChannel
from .buffered_eb import BufferedChannelEB
from .channel import RENDEZVOUS, UNLIMITED, Channel, make_channel
from .conflated import ConflatedChannel, DropOldestChannel
from .plain_array import PlainInfiniteArray
from .rendezvous import RendezvousChannel
from .segments import DEFAULT_SEGMENT_SIZE, Segment, SegmentList
from .select import SelectClause, receive_clause, select, send_clause
from .simplified import SimplifiedBufferedChannel
from .states import (
    BROKEN,
    BUFFERED,
    CANCELLED,
    DONE,
    DONE_RCV,
    IN_BUFFER,
    INTERRUPTED,
    INTERRUPTED_EB,
    INTERRUPTED_RCV,
    INTERRUPTED_SEND,
    S_RESUMING_EB,
    S_RESUMING_RCV,
    CellState,
    EBWaiter,
    ReceiverWaiter,
    SenderWaiter,
)
from .stats import ChannelStats

__all__ = [
    "make_channel",
    "Channel",
    "UNLIMITED",
    "RENDEZVOUS",
    "RendezvousChannel",
    "BufferedChannel",
    "BufferedChannelEB",
    "ConflatedChannel",
    "DropOldestChannel",
    "SimplifiedBufferedChannel",
    "PlainInfiniteArray",
    "ChannelBase",
    "ChannelStats",
    "select",
    "send_clause",
    "receive_clause",
    "SelectClause",
    "Segment",
    "SegmentList",
    "DEFAULT_SEGMENT_SIZE",
    "CellState",
    "SenderWaiter",
    "ReceiverWaiter",
    "EBWaiter",
    "BUFFERED",
    "IN_BUFFER",
    "DONE",
    "DONE_RCV",
    "BROKEN",
    "CANCELLED",
    "INTERRUPTED",
    "INTERRUPTED_EB",
    "INTERRUPTED_SEND",
    "INTERRUPTED_RCV",
    "S_RESUMING_RCV",
    "S_RESUMING_EB",
]
