"""Cell states and waiter kinds for the channel algorithms.

The cell life-cycle diagrams (Figure 1 for rendezvous, Figure 2 for
buffered, Figure 6 for the indistinguishable-coroutine variant) are encoded
as identity-compared sentinels plus waiter objects:

=====================  =======================================================
state                  meaning
=====================  =======================================================
``None``               EMPTY — nobody processed the cell yet
``SenderWaiter``       Coroutine\\ :sub:`SEND` — a suspended ``send(e)``
``ReceiverWaiter``     Coroutine\\ :sub:`RCV` — a suspended ``receive()``
``BUFFERED``           the element sits in the cell (elimination or buffer)
``IN_BUFFER``          ``expandBuffer()`` pre-marked the still-empty cell
``DONE_RCV``           a suspended receiver was resumed (rendezvous done)
``BROKEN``             the cell was poisoned by a racing ``receive()``
``INTERRUPTED_SEND``   the suspended sender was cancelled
``INTERRUPTED_RCV``    the suspended receiver was cancelled
``S_RESUMING_RCV``     ``receive()`` is resuming the sender (transient)
``S_RESUMING_EB``      ``expandBuffer()`` is resuming the sender (transient)
``EBWaiter(w)``        Coroutine+EB — Appendix A delegation marker
``INTERRUPTED``        generic interruption (Appendix A variant)
``INTERRUPTED_EB``     generic interruption + EB delegation (Appendix A)
=====================  =======================================================

All sentinels are singletons compared with ``is`` (cells are
:class:`~repro.concurrent.cells.RefCell`\\ s, whose CAS is identity-based).
"""

from __future__ import annotations

from typing import Any, Optional

from ..runtime.waiter import Waiter

__all__ = [
    "CellState",
    "BUFFERED",
    "IN_BUFFER",
    "DONE_RCV",
    "DONE",
    "CANCELLED",
    "BROKEN",
    "INTERRUPTED_SEND",
    "INTERRUPTED_RCV",
    "INTERRUPTED",
    "INTERRUPTED_EB",
    "S_RESUMING_RCV",
    "S_RESUMING_EB",
    "SenderWaiter",
    "ReceiverWaiter",
    "EBWaiter",
    "is_sender_waiter",
    "is_receiver_waiter",
    "TERMINAL_STATES",
]


class CellState:
    """Named singleton sentinel for one cell state."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


BUFFERED = CellState("BUFFERED")
IN_BUFFER = CellState("IN_BUFFER")
DONE_RCV = CellState("DONE_RCV")
#: Rendezvous-channel completion marker (Figure 1 uses a single DONE).
DONE = CellState("DONE")
#: The whole channel was cancelled and this buffered element discarded.
CANCELLED = CellState("CANCELLED")
BROKEN = CellState("BROKEN")
INTERRUPTED_SEND = CellState("INTERRUPTED_SEND")
INTERRUPTED_RCV = CellState("INTERRUPTED_RCV")
#: Generic interruption for the Appendix A variant, where the cancellation
#: handler cannot know whether the waiter was a sender or a receiver.
INTERRUPTED = CellState("INTERRUPTED")
#: Generic interruption with a pending ``expandBuffer()`` delegation.
INTERRUPTED_EB = CellState("INTERRUPTED_EB")
S_RESUMING_RCV = CellState("S_RESUMING_RCV")
S_RESUMING_EB = CellState("S_RESUMING_EB")

#: States that can never change again (used by invariant checks).
TERMINAL_STATES = frozenset(
    s.name for s in (DONE_RCV, BROKEN, INTERRUPTED_SEND, INTERRUPTED_RCV, INTERRUPTED_EB)
)


class SenderWaiter(Waiter):
    """A suspended ``send(e)`` — Coroutine\\ :sub:`SEND` in Figure 2."""

    __slots__ = ()


class ReceiverWaiter(Waiter):
    """A suspended ``receive()`` — Coroutine\\ :sub:`RCV` in Figure 2."""

    __slots__ = ()


class EBWaiter:
    """Coroutine+EB (Appendix A): a waiter carrying the «EB» marker.

    ``expandBuffer()`` installs this wrapper when it finds a suspended
    coroutine it cannot classify (the cell is already covered by
    ``receive()``), delegating its own completion to whichever operation
    processes the cell next.
    """

    __slots__ = ("waiter",)

    def __init__(self, waiter: Waiter):
        self.waiter = waiter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EB({self.waiter!r})"


def is_sender_waiter(state: Any) -> bool:
    """Is this cell state a suspended sender (distinguishable variant)?"""

    return isinstance(state, SenderWaiter)


def is_receiver_waiter(state: Any) -> bool:
    """Is this cell state a suspended receiver (distinguishable variant)?"""

    return isinstance(state, ReceiverWaiter)
