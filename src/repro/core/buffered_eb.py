"""The buffered channel for indistinguishable coroutines (Appendix A, Fig. 6).

Kotlin and Java cannot tell whether a suspended continuation stored in a
cell belongs to a sender or a receiver (Go can, via its typed ``sudog``).
This variant — the one actually shipped in ``kotlinx.coroutines`` — stores
both kinds as a plain :class:`~repro.runtime.waiter.Waiter` and recovers
the missing information from the counters, with two delegation markers:

* ``expandBuffer()`` finding a waiter in a cell **already covered by
  receive()** (``b < R``) cannot classify it, so it wraps it as
  :class:`~repro.core.states.EBWaiter` (Coroutine+EB) and finishes; the
  operation that processes the cell next completes the expansion's work —
  a ``send`` ignores the marker (the waiter must be a receiver), while a
  ``receive`` resumes the sender and, on failure, compensates by invoking
  ``expandBuffer()`` itself;
* interruption handlers can likewise only write the generic
  ``INTERRUPTED`` (or ``INTERRUPTED_EB`` when the EB marker was present);
  the reader reconstructs the kind: in a *send*'s cell the interrupted
  party was a receiver, in a *receive*'s cell a sender, and
  ``expandBuffer`` classifies by ``b >= R`` (not covered by receive ⇒ it
  was a sender ⇒ restart) or delegates via ``INTERRUPTED_EB``.

Memory-reclamation substitution (documented in DESIGN.md/EXPERIMENTS.md):
this variant keeps the segment list but does **not** remove segments on
interruption — exactly-once interrupted-cell accounting would need the
full ``kotlinx`` delegation bookkeeping, which is orthogonal to the
synchronization protocol Appendix A presents.  The distinguishable variant
(:class:`~repro.core.buffered.BufferedChannel`) demonstrates removal.
"""

from __future__ import annotations

from typing import Any, Generator

from ..concurrent.cells import IntCell
from ..concurrent.ops import CURRENT_TASK, FRESH_KIT, Cas, Faa, Read, Spin, Write, read_of
from ..errors import Interrupted, RetryWakeup
from ..runtime.waiter import Waiter
from .base import (
    CLOSED,
    MARK,
    RESTART,
    SUCCESS,
    WOULD_BLOCK,
    ChannelBase,
    SelectRegistrar,
    _Outcome,
)
from .closing import counter_of, is_flagged
from .segments import DEFAULT_SEGMENT_SIZE, Segment
from .states import (
    BROKEN,
    BUFFERED,
    CANCELLED,
    DONE_RCV,
    EBWaiter,
    IN_BUFFER,
    INTERRUPTED,
    INTERRUPTED_EB,
    INTERRUPTED_RCV,
    INTERRUPTED_SEND,
    S_RESUMING_EB,
    S_RESUMING_RCV,
)

__all__ = ["BufferedChannelEB"]


class BufferedChannelEB(ChannelBase):
    """Appendix A algorithm: one ``Waiter`` type, «EB» delegation markers."""

    ANCHORS = 3
    COUNT_SEND_INTERRUPT_IMMEDIATELY = False  # no interruption-driven removal

    def __init__(
        self,
        capacity: int,
        seg_size: int = DEFAULT_SEGMENT_SIZE,
        name: str = "buffered-eb",
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        super().__init__(seg_size=seg_size, name=name)
        self.capacity = capacity
        self.B = IntCell(capacity, name=f"{name}.B")
        self._segm_b = self._list.make_anchor("B")

    # ------------------------------------------------------------------
    # Suspension with the *generic* interrupt handler
    # ------------------------------------------------------------------

    def _park_generic(self, w: Waiter, segm: Segment, i: int, is_sender: bool) -> Generator[Any, Any, bool]:
        state_cell = segm.state_cell(i)
        elem_cell = segm.elem_cell(i)

        def on_interrupt() -> Generator[Any, Any, None]:
            yield Write(elem_cell, None)
            # The handler cannot know the waiter kind: write the generic
            # INTERRUPTED, preserving an EB marker if one was attached.
            ok = yield Cas(state_cell, w, INTERRUPTED)
            if not ok:
                state = yield Read(state_cell)
                if isinstance(state, EBWaiter) and state.waiter is w:
                    yield Cas(state_cell, state, INTERRUPTED_EB)
                # Otherwise a resumer locked the cell; it owns the transition.

        if is_sender:
            self.stats.send_suspends += 1
        else:
            self.stats.rcv_suspends += 1
        try:
            yield from w.park(on_interrupt)
            return True
        except RetryWakeup:
            return False
        except Interrupted:
            if is_sender:
                self.stats.send_interrupts += 1
            else:
                self.stats.rcv_interrupts += 1
            if w.interrupt_cause is not None:
                raise w.interrupt_cause from None
            raise

    def _extract_receiver_waiter(self, state: Any):  # close() support
        # In this variant any bare waiter *might* be a receiver; close()
        # only walks cells with index >= the frozen S, where suspended
        # waiters are necessarily receivers.  EB markers wrap receivers
        # in receive-covered cells, which those always are here.
        if isinstance(state, Waiter):
            return state
        if isinstance(state, EBWaiter):
            return state.waiter
        return None

    # ------------------------------------------------------------------
    # updCellSend (Figure 6: send-side)
    # ------------------------------------------------------------------

    def _upd_cell_send(
        self, segm: Segment, i: int, s: int, mode: Any, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, Any]:
        if isinstance(mode, SelectRegistrar):
            raise NotImplementedError(
                "select is not supported on the Appendix A variant; use BufferedChannel"
            )
        state_cell = segm.states[i]
        elem_cell = segm.elems[i]
        read_state = read_of(state_cell)
        read_r = read_of(self.R)
        read_b = read_of(self.B)
        while True:
            state = yield read_state
            r_raw = yield read_r
            r = counter_of(r_raw)
            b = yield read_b
            if (state is None and (s < r or s < b)) or state is IN_BUFFER:
                ok = yield kit.cas(state_cell, state, BUFFERED)
                if ok:
                    return SUCCESS
                continue
            if state is None and s >= b and s >= r:
                if mode is MARK:
                    ok = yield kit.cas(state_cell, None, INTERRUPTED)
                    if ok:
                        yield kit.write(elem_cell, None)
                        return WOULD_BLOCK
                    continue
                w = Waiter.of((yield CURRENT_TASK))  # inlined make()
                ok = yield kit.cas(state_cell, None, w)
                if ok:
                    resumed = yield from self._park_generic(w, segm, i, is_sender=True)
                    return SUCCESS if resumed else RESTART
                continue
            if isinstance(state, (Waiter, EBWaiter)):
                # In a send's cell a stored waiter is a *receiver*;
                # ignore any «EB» marker (Appendix A).
                waiter = state.waiter if isinstance(state, EBWaiter) else state
                ok = yield from waiter.try_unpark()
                if ok:
                    yield kit.write(state_cell, DONE_RCV)
                    return SUCCESS
                yield kit.write(elem_cell, None)
                return RESTART
            if state in (INTERRUPTED, INTERRUPTED_EB) or state is BROKEN or state is CANCELLED:
                # An interrupted party in our cell was a receiver.
                yield kit.write(elem_cell, None)
                return RESTART
            raise AssertionError(f"EB-send found impossible state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # updCellRcv (Figure 6: receive-side)
    # ------------------------------------------------------------------

    def _upd_cell_rcv(
        self, segm: Segment, i: int, r: int, mode: Any, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, Any]:
        if isinstance(mode, SelectRegistrar):
            raise NotImplementedError(
                "select is not supported on the Appendix A variant; use BufferedChannel"
            )
        state_cell = segm.states[i]
        read_state = read_of(state_cell)
        read_s = read_of(self.S)
        while True:
            state = yield read_state
            s_raw = yield read_s
            s = counter_of(s_raw)
            if (state is None or state is IN_BUFFER) and r >= s:
                if is_flagged(s_raw):
                    ok = yield kit.cas(state_cell, state, INTERRUPTED)
                    if ok:
                        yield from self.expand_buffer()
                        return CLOSED
                    continue
                if mode is MARK:
                    ok = yield kit.cas(state_cell, state, INTERRUPTED)
                    if ok:
                        yield from self.expand_buffer()
                        return WOULD_BLOCK
                    continue
                w = Waiter.of((yield CURRENT_TASK))  # inlined make()
                ok = yield kit.cas(state_cell, state, w)
                if ok:
                    yield from self.expand_buffer()
                    yield from self._close_recheck_receiver(w, r)
                    resumed = yield from self._park_generic(w, segm, i, is_sender=False)
                    return SUCCESS if resumed else RESTART
                continue
            if (state is None or state is IN_BUFFER) and r < s:
                ok = yield kit.cas(state_cell, state, BROKEN)
                if ok:
                    self.stats.poisoned += 1
                    yield from self.expand_buffer()
                    return RESTART
                continue
            if state is BUFFERED:
                yield from self.expand_buffer()
                return SUCCESS
            if state is INTERRUPTED:
                # In a receive's cell the interrupted party was a sender;
                # expandBuffer will classify it itself when it arrives.
                return RESTART
            if state is INTERRUPTED_EB:
                # A delegated expansion met a cancelled sender: compensate
                # for the delegating expandBuffer and retry elsewhere.
                ok = yield kit.cas(state_cell, INTERRUPTED_EB, INTERRUPTED_SEND)
                if ok:
                    yield from self.expand_buffer()
                return RESTART
            if state is INTERRUPTED_SEND:
                return RESTART  # already classified and compensated
            if state is CANCELLED:
                return RESTART
            if isinstance(state, (Waiter, EBWaiter)):
                # In a receive's cell a stored waiter is a *sender*.
                has_eb = isinstance(state, EBWaiter)
                waiter = state.waiter if has_eb else state
                ok = yield kit.cas(state_cell, state, S_RESUMING_RCV)
                if ok:
                    resumed = yield from waiter.try_unpark()
                    if resumed:
                        yield kit.write(state_cell, BUFFERED)
                    else:
                        yield kit.write(state_cell, INTERRUPTED_SEND)
                        if has_eb:
                            # Complete the delegated expansion's restart.
                            yield from self.expand_buffer()
                continue
            if state is S_RESUMING_EB:
                yield Spin("rcv-wait-eb")
                continue
            raise AssertionError(f"EB-receive found impossible state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # expandBuffer (Figure 6: EB-side)
    # ------------------------------------------------------------------

    def expand_buffer(self) -> Generator[Any, Any, None]:
        while True:
            self.stats.expansions += 1
            segm = yield Read(self._segm_b)
            b = yield Faa(self.B, 1)
            s_raw = yield Read(self.S)
            if b >= counter_of(s_raw):
                return
            bid, i = divmod(b, self.seg_size)
            segm = yield from self._list.find_and_move_forward(self._segm_b, segm, bid)
            if segm.id != bid:
                yield Cas(self.B, b + 1, segm.id * self.seg_size)
                return
            done = yield from self._upd_cell_eb(segm, i, b)
            if done:
                return
            self.stats.expansion_restarts += 1

    def _upd_cell_eb(self, segm: Segment, i: int, b: int) -> Generator[Any, Any, bool]:
        state_cell = segm.state_cell(i)
        while True:
            state = yield Read(state_cell)
            if isinstance(state, Waiter):
                r_raw = yield Read(self.R)
                if b >= counter_of(r_raw):
                    # Not covered by receive: the waiter must be a sender.
                    ok = yield Cas(state_cell, state, S_RESUMING_EB)
                    if ok:
                        resumed = yield from state.try_unpark()
                        if resumed:
                            yield Write(state_cell, BUFFERED)
                            return True
                        yield Write(state_cell, INTERRUPTED_SEND)
                        return False
                    continue
                # Covered by receive: could be either kind — attach the
                # «EB» marker and delegate our completion (Appendix A).
                ok = yield Cas(state_cell, state, EBWaiter(state))
                if ok:
                    return True
                continue
            if state is BUFFERED or isinstance(state, EBWaiter):
                return True
            if state is INTERRUPTED:
                r_raw = yield Read(self.R)
                if b >= counter_of(r_raw):
                    # Not covered by receive ⇒ it was a sender ⇒ the
                    # expansion gained nothing: classify and restart.
                    ok = yield Cas(state_cell, INTERRUPTED, INTERRUPTED_SEND)
                    if ok:
                        return False
                    continue
                # Ambiguous: delegate via INTERRUPTED_EB; the receive
                # that processes the cell compensates if it was a sender.
                ok = yield Cas(state_cell, INTERRUPTED, INTERRUPTED_EB)
                if ok:
                    return True
                continue
            if state is INTERRUPTED_SEND:
                return False
            if state in (INTERRUPTED_EB, INTERRUPTED_RCV, DONE_RCV):
                return True
            if state is BROKEN or state is CANCELLED:
                return True
            if state is None:
                ok = yield Cas(state_cell, None, IN_BUFFER)
                if ok:
                    return True
                continue
            if state is IN_BUFFER:
                return True  # already marked (idempotent visit)
            if state is S_RESUMING_RCV:
                yield Spin("eb-wait-rcv")
                continue
            raise AssertionError(f"EB-expandBuffer found impossible state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # trySend / tryReceive fast paths
    # ------------------------------------------------------------------

    def _try_send_would_block(self) -> Generator[Any, Any, bool]:
        s_raw = yield Read(self.S)
        if is_flagged(s_raw):
            return False
        r_raw = yield Read(self.R)
        b = yield Read(self.B)
        s = counter_of(s_raw)
        return s >= b and s >= counter_of(r_raw)

    def _try_receive_would_block(self) -> Generator[Any, Any, bool]:
        r_raw = yield Read(self.R)
        s_raw = yield Read(self.S)
        if is_flagged(s_raw) or is_flagged(r_raw):
            return False
        return counter_of(r_raw) >= counter_of(s_raw)
