"""The infinite array: a linked list of fixed-size segments (§3.3, App. B).

All cells of the channel's conceptually infinite array live in segments of
``K`` cells each (the paper tunes ``K = 32``).  Segments carry a unique
``id``; cell ``i`` of the infinite array is cell ``i % K`` of the segment
with ``id == i // K``.  The list supports:

* **forward traversal with on-demand growth** — :meth:`SegmentList.find_segment`
  walks ``next`` pointers from a start segment, CAS-appending fresh segments
  at the tail as needed (Listing 6, ``findSegment``);
* **anchor advancement** — each operation type keeps an anchor reference
  (``SegmentS``/``SegmentR``/``SegmentB``) to the segment it last used, moved
  forward with :meth:`SegmentList.find_and_move_forward` (``moveForwardSend``);
* **O(1) physical removal of fully-interrupted segments** — the core memory
  guarantee: space depends only on the number of *non-cancelled* waiters.

Removal correctness hinges on the packed ``(pointers, interrupted)`` counter
(Listing 6, line 42): a segment is *logically removed* iff all ``K`` cells
are interrupted **and** no anchor references it.  The two numbers share one
atomic integer — ``value = pointers * (K + 1) + interrupted`` — so both
conditions are checked/updated in a single CAS/FAA, exactly the paper's
``atomic { ... }`` blocks.  Anchors take a "pointer" before they may
reference a segment (:meth:`Segment.try_inc_pointers`, which fails on a
logically-removed segment so removed segments can never come back alive) and
drop it when they move on (:meth:`Segment.dec_pointers`, whose caller must
physically remove the segment when the drop made it logically removed).

The tail segment is never physically removed (it anchors id uniqueness); its
removal is re-checked when the tail advances.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from ..concurrent.cells import CacheLine, IntCell, RefCell
from ..concurrent.ops import Alloc, Cas, Faa, Read, Write

__all__ = ["Segment", "SegmentList", "DEFAULT_SEGMENT_SIZE"]

#: The paper's tuned segment size ("we have chosen the segment size of 32").
DEFAULT_SEGMENT_SIZE = 32


class Segment:
    """One fixed-size block of ``K`` (state, elem) cell pairs."""

    __slots__ = ("owner", "id", "K", "_next", "_prev", "_cnt", "states", "elems")

    def __init__(self, owner: "SegmentList", seg_id: int, prev: Optional["Segment"], pointers: int = 0):
        self.owner = owner
        self.id = seg_id
        K = owner.seg_size
        self.K = K
        tag = owner.tag
        self._next: RefCell = RefCell(None, name=f"{tag}.seg{seg_id}.next")
        self._prev: RefCell = RefCell(prev, name=f"{tag}.seg{seg_id}.prev")
        # Packed counter: value = pointers * (K + 1) + interrupted.
        self._cnt: IntCell = IntCell(pointers * (K + 1), name=f"{tag}.seg{seg_id}.cnt")
        # A cell's state and elem are adjacent slots of one array in the
        # real layout — the same cache line.  Model that: the sender's
        # element store takes the line exclusively, so its state CAS is
        # local while a racing receiver's state read must fetch the line
        # from it (this asymmetry keeps poisoning rare, §5).
        lines = [CacheLine() for _ in range(K)]
        self.states: list[RefCell] = [
            RefCell(None, name=f"{tag}.seg{seg_id}.state[{i}]", line=lines[i]) for i in range(K)
        ]
        self.elems: list[RefCell] = [
            RefCell(None, name=f"{tag}.seg{seg_id}.elem[{i}]", line=lines[i]) for i in range(K)
        ]

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------

    def state_cell(self, i: int) -> RefCell:
        """The ``A[_].state`` cell for in-segment index ``i``."""

        return self.states[i]

    def elem_cell(self, i: int) -> RefCell:
        """The ``A[_].elem`` cell for in-segment index ``i``."""

        return self.elems[i]

    # ------------------------------------------------------------------
    # Packed (pointers, interrupted) counter
    # ------------------------------------------------------------------

    def _decode(self, value: int) -> tuple[int, int]:
        unit = self.K + 1
        return value // unit, value % unit

    def _is_removed_value(self, value: int) -> bool:
        pointers, interrupted = self._decode(value)
        return interrupted == self.K and pointers == 0

    @property
    def removed_now(self) -> bool:
        """Non-simulated peek for tests run between scheduler steps."""

        return self._is_removed_value(self._cnt.value)

    def is_removed(self) -> Generator[Any, Any, bool]:
        """Atomic read of the logically-removed predicate."""

        value = yield Read(self._cnt)
        return self._is_removed_value(value)

    def try_inc_pointers(self) -> Generator[Any, Any, bool]:
        """Take a reference; fails iff the segment is logically removed.

        The CAS loop makes "check not-removed, then increment" atomic —
        a removed segment can never be resurrected by a late anchor.
        """

        unit = self.K + 1
        while True:
            value = yield Read(self._cnt)
            if self._is_removed_value(value):
                return False
            ok = yield Cas(self._cnt, value, value + unit)
            if ok:
                return True

    def dec_pointers(self) -> Generator[Any, Any, bool]:
        """Drop a reference; ``True`` iff this made the segment removed.

        The caller must then invoke :meth:`remove` (Listing 6, line 32).
        """

        unit = self.K + 1
        old = yield Faa(self._cnt, -unit)
        return self._is_removed_value(old - unit)

    def on_interrupted_cell(self) -> Generator[Any, Any, None]:
        """Account one cell as interrupted; physically remove if now full.

        Called by cancellation handlers (and, for cells whose
        interrupted state ``expandBuffer()`` still needs to observe, by
        ``expandBuffer()`` itself — the Appendix B delegation rule).
        """

        old = yield Faa(self._cnt, +1)
        if self._is_removed_value(old + 1):
            yield from self.remove()

    # ------------------------------------------------------------------
    # Physical removal (Listing 6, lines 65–93)
    # ------------------------------------------------------------------

    def remove(self) -> Generator[Any, Any, None]:
        """Unlink this logically-removed segment from the list.

        The tail cannot be removed (its removal is re-run by
        ``findSegment`` once the tail advances).  After linking the
        nearest alive neighbours around us, we re-check that neither got
        removed concurrently; if one did, the unlink is retried so the
        broken linking a racing ``remove()`` may have produced is always
        repaired (the paper's "the remove() that led to this error will
        fix the problem").
        """

        while True:
            nxt = yield Read(self._next)
            if nxt is None:
                return  # the tail segment must not be removed
            prev = yield from self._alive_segment_left()
            nxt = yield from self._alive_segment_right()
            yield Write(nxt._prev, prev)
            if prev is not None:
                yield Write(prev._next, nxt)
            # Re-validate both neighbours.
            if (yield from nxt.is_removed()):
                nxt_next = yield Read(nxt._next)
                if nxt_next is not None:
                    continue
            if prev is not None and (yield from prev.is_removed()):
                continue
            return

    def _alive_segment_left(self) -> Generator[Any, Any, Optional["Segment"]]:
        cur = yield Read(self._prev)
        while cur is not None and (yield from cur.is_removed()):
            cur = yield Read(cur._prev)
        return cur

    def _alive_segment_right(self) -> Generator[Any, Any, "Segment"]:
        cur = yield Read(self._next)
        assert cur is not None, "tail segments are never removed"
        while True:
            if not (yield from cur.is_removed()):
                return cur
            nxt = yield Read(cur._next)
            if nxt is None:
                return cur  # the tail, even if logically removed
            cur = nxt

    def clean_prev(self) -> Generator[Any, Any, None]:
        """Null the ``prev`` pointer once earlier segments are processed.

        Keeps fully-processed segments unreachable (Appendix B).  Safe at
        any time — removal treats a ``None`` prev as "no alive segment on
        the left" and merely skips the left-side relink.
        """

        yield Write(self._prev, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pointers, interrupted = self._decode(self._cnt.value)
        return f"<Segment #{self.id} ptrs={pointers} int={interrupted}/{self.K}>"


_list_ids = itertools.count()


class SegmentList:
    """Factory and traversal logic for the segment linked list."""

    def __init__(self, seg_size: int = DEFAULT_SEGMENT_SIZE, anchors: int = 2, name: str = "chan"):
        if seg_size < 1:
            raise ValueError("segment size must be >= 1")
        if anchors < 1:
            raise ValueError("at least one anchor reference is required")
        self.seg_size = seg_size
        self.name = name
        #: Unique per-instance tag prefixed onto every cell name, so
        #: instrumentation can scope itself to one channel's cells.
        self.tag = f"L{next(_list_ids)}"
        #: Number of anchor references (2 for rendezvous: S and R;
        #: 3 for buffered: S, R and B).  The first segment starts with
        #: this many pointers — Listing 6: "Initialized with (3, 0)".
        self.anchors = anchors
        self.first = Segment(self, 0, prev=None, pointers=anchors)
        #: Segments ever allocated (allocation-pressure statistic).
        self.segments_allocated = 1

    def make_anchor(self, label: str) -> RefCell:
        """A new anchor reference cell pointing at the first segment."""

        return RefCell(self.first, name=f"{self.name}.segment{label}")

    # ------------------------------------------------------------------
    # findSegment / moveForward (Listing 6, lines 1–37)
    # ------------------------------------------------------------------

    def find_segment(self, start: Segment, seg_id: int) -> Generator[Any, Any, Segment]:
        """First non-removed segment with ``id >= seg_id``, growing the list.

        May return a segment with a *larger* id when the requested one was
        fully interrupted and physically removed; callers then skip the
        whole interrupted range (Listing 5, lines 5–7).
        """

        cur = start
        while True:
            if cur.id >= seg_id and not (yield from cur.is_removed()):
                return cur
            nxt = yield Read(cur._next)
            if nxt is None:
                new = Segment(self, cur.id + 1, prev=cur)
                yield Alloc("segment", self.seg_size)
                ok = yield Cas(cur._next, None, new)
                if ok:
                    self.segments_allocated += 1
                    # The old tail may have been waiting for its removal.
                    if (yield from cur.is_removed()):
                        yield from cur.remove()
                continue  # re-read next: it is non-null now
            cur = nxt

    def move_forward(self, anchor: RefCell, to: Segment) -> Generator[Any, Any, bool]:
        """Advance *anchor* to ``to`` (never backwards), managing pointers.

        Returns ``False`` iff ``to`` became logically removed before the
        anchor could take a pointer to it; the caller must re-run
        :meth:`find_segment` (Listing 6, ``moveForwardSend``).
        """

        while True:
            cur: Segment = yield Read(anchor)
            if cur.id >= to.id:
                return True  # someone else advanced it past `to`
            if not (yield from to.try_inc_pointers()):
                return False
            ok = yield Cas(anchor, cur, to)
            if ok:
                if (yield from cur.dec_pointers()):
                    yield from cur.remove()
                return True
            if (yield from to.dec_pointers()):
                yield from to.remove()

    def find_and_move_forward(
        self, anchor: RefCell, start: Segment, seg_id: int
    ) -> Generator[Any, Any, Segment]:
        """``findAndMoveForwardSend`` and friends (Listing 6, lines 1–8)."""

        while True:
            segm = yield from self.find_segment(start, seg_id)
            if (yield from self.move_forward(anchor, segm)):
                return segm

    # ------------------------------------------------------------------
    # Test helpers (non-simulated; run only between scheduler steps)
    # ------------------------------------------------------------------

    def iter_segments(self) -> list[Segment]:
        """Snapshot of segments reachable from the first one (tests)."""

        out = []
        cur: Optional[Segment] = self.first
        while cur is not None:
            out.append(cur)
            cur = cur._next.value
        return out

    def alive_count(self) -> int:
        """Number of reachable, non-removed segments (tests)."""

        return sum(1 for seg in self.iter_segments() if not seg.removed_now)
