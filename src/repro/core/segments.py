"""The infinite array: a linked list of fixed-size segments (§3.3, App. B).

All cells of the channel's conceptually infinite array live in segments of
``K`` cells each (the paper tunes ``K = 32``).  Segments carry a unique
``id``; cell ``i`` of the infinite array is cell ``i % K`` of the segment
with ``id == i // K``.  The list supports:

* **forward traversal with on-demand growth** — :meth:`SegmentList.find_segment`
  walks ``next`` pointers from a start segment, CAS-appending fresh segments
  at the tail as needed (Listing 6, ``findSegment``);
* **anchor advancement** — each operation type keeps an anchor reference
  (``SegmentS``/``SegmentR``/``SegmentB``) to the segment it last used, moved
  forward with :meth:`SegmentList.find_and_move_forward` (``moveForwardSend``);
* **O(1) physical removal of fully-interrupted segments** — the core memory
  guarantee: space depends only on the number of *non-cancelled* waiters.

Removal correctness hinges on the packed ``(pointers, interrupted)`` counter
(Listing 6, line 42): a segment is *logically removed* iff all ``K`` cells
are interrupted **and** no anchor references it.  The two numbers share one
atomic integer — ``value = pointers * (K + 1) + interrupted`` — so both
conditions are checked/updated in a single CAS/FAA, exactly the paper's
``atomic { ... }`` blocks.  Anchors take a "pointer" before they may
reference a segment (:meth:`Segment.try_inc_pointers`, which fails on a
logically-removed segment so removed segments can never come back alive) and
drop it when they move on (:meth:`Segment.dec_pointers`, whose caller must
physically remove the segment when the drop made it logically removed).

The tail segment is never physically removed (it anchors id uniqueness); its
removal is re-checked when the tail advances.

**Segment pooling (PR 4).**  Fully-processed segments are *recycled*: when a
segment becomes unreachable (``clean_prev`` plus anchor advancement cut the
last references — reachability is the safety proof, exactly like the JVM's
GC-based reclamation the paper relies on), a ``weakref.finalize`` callback
harvests its cells into the owning list's carcass pool, and the next
tail-append adopts a pooled carcass instead of allocating ~3K fresh objects.
Only the *innards* (cells, lines, lists) are reused — never the
:class:`Segment` object itself, whose identity and ``id`` concurrent walkers
may still hold.  A recycled segment is observationally identical to a fresh
one: its cache lines take **fresh** ``loc_id``\\ s from the global counter in
construction order and all cost-model bookkeeping is reset, so simulated
results are bit-identical whether or not (and whenever) recycling happens.
Logical allocation accounting is unchanged: the ``Alloc`` op is emitted and
``segments_allocated`` incremented for pooled and fresh segments alike;
``pool_hits``/``pool_recycled`` count reuse separately.
"""

from __future__ import annotations

import itertools
import os
import weakref
from typing import Any, Generator, Optional

from ..concurrent.cells import CacheLine, IntCell, RefCell, renew_line
from ..concurrent.ops import Alloc, Cas, Faa, Read, Write, read_of
from ..runtime.waiter import Waiter

__all__ = [
    "Segment",
    "SegmentList",
    "DEFAULT_SEGMENT_SIZE",
    "KERNEL_DELEGATES",
    "segment_pool_enabled",
    "set_segment_pool",
]

#: The paper's tuned segment size ("we have chosen the segment size of 32").
DEFAULT_SEGMENT_SIZE = 32

#: Compiled-tier delegation boundary (PR 10, DESIGN.md §14): the segment
#: walks stay *Python generators* even under the native kernels.  A
#: kernel that reaches one of these calls the generator function fresh
#: and drives it through the same charge tables (the "delegate
#: executor"), so the walk's op stream — including segment allocation,
#: ``Alloc`` accounting and removal CAS traffic — is produced by exactly
#: this code under both tiers.  Tests introspect this list to pin the
#: boundary.
KERNEL_DELEGATES = (
    "SegmentList.find_segment",
    "SegmentList.find_and_move_forward",
    "Segment.on_interrupted_cell",
)

_segment_pool = os.environ.get("REPRO_NO_SEGMENT_POOL", "") in ("", "0")


def segment_pool_enabled() -> bool:
    """``True`` when carcass recycling is active (A/B lever)."""

    return _segment_pool


def set_segment_pool(enabled: bool) -> None:
    """Runtime toggle for segment pooling (A/B and identity tests)."""

    global _segment_pool
    _segment_pool = bool(enabled)


#: Harvested carcasses kept per list.  Small on purpose: steady state
#: needs one or two (the wave reuses the segment the anchors just left).
_POOL_CAP = 16


class _CarcassPool:
    """Free-list of segment innards ``(next, prev, cnt, states, elems)``.

    Deliberately ignorant of :class:`SegmentList` so the
    ``weakref.finalize`` callbacks that feed it never keep the list (or
    the dying segment) alive.
    """

    __slots__ = ("items", "hits", "recycled", "rejected")

    def __init__(self) -> None:
        self.items: list[tuple] = []
        #: Carcasses handed back out to new segments.
        self.hits = 0
        #: Carcasses harvested from dead segments.
        self.recycled = 0
        #: Harvests refused because a cell still held a waiter.
        self.rejected = 0

    def harvest(self, carcass: tuple) -> None:
        """Scrub a dead segment's cells and pool them for reuse."""

        if not _segment_pool or len(self.items) >= _POOL_CAP:
            return
        nxt_c, prev_c, cnt_c, states, elems = carcass
        for c in states:
            if isinstance(c.value, Waiter):
                # Lifecycle invariant: a segment holding a parked waiter
                # must be reachable (the waiter's own task frame pins it),
                # so a dying one cannot carry a waiter.  Refuse the
                # carcass rather than ever resurrecting a waiter into a
                # fresh segment; the fuzzer asserts this stays zero.
                self.rejected += 1
                return
        # Drop value references now (elements, neighbour segments) so the
        # pooled carcass pins nothing.
        nxt_c.value = None
        prev_c.value = None
        for c in states:
            c.value = None
        for c in elems:
            c.value = None
        self.items.append(carcass)
        self.recycled += 1

    def take(self) -> Optional[tuple]:
        if self.items:
            self.hits += 1
            return self.items.pop()
        return None


class Segment:
    """One fixed-size block of ``K`` (state, elem) cell pairs."""

    __slots__ = (
        "owner",
        "id",
        "K",
        "_next",
        "_prev",
        "_cnt",
        "states",
        "elems",
        "_fin",
        "__weakref__",
    )

    def __init__(
        self,
        owner: "SegmentList",
        seg_id: int,
        prev: Optional["Segment"],
        pointers: int = 0,
        carcass: Optional[tuple] = None,
    ):
        self.owner = owner
        self.id = seg_id
        K = owner.seg_size
        self.K = K
        tag = owner.tag
        if carcass is not None:
            # Adopt pooled innards.  Lines are renewed in the same order
            # fresh construction creates them (next, prev, cnt, then the
            # K shared state/elem lines), drawing the same number of
            # fresh loc_ids from the global counter — the cost model
            # cannot tell a recycled segment from a new one.
            # Names are lazy ``(fmt, *args)`` tuples (see ``Cell.name``):
            # segment construction is the allocation hot path and the
            # labels are only ever read by tracing/debug code.
            nxt_c, prev_c, cnt_c, states, elems = carcass
            renew_line(nxt_c.line)
            nxt_c.value = None
            nxt_c.name = ("%s.seg%d.next", tag, seg_id)
            renew_line(prev_c.line)
            prev_c.value = prev
            prev_c.name = ("%s.seg%d.prev", tag, seg_id)
            renew_line(cnt_c.line)
            cnt_c.value = pointers * (K + 1)
            cnt_c.name = ("%s.seg%d.cnt", tag, seg_id)
            for i in range(K):
                sc = states[i]
                renew_line(sc.line)  # shared with elems[i]
                sc.value = None
                sc.name = ("%s.seg%d.state[%d]", tag, seg_id, i)
                ec = elems[i]
                ec.value = None
                ec.name = ("%s.seg%d.elem[%d]", tag, seg_id, i)
            self._next = nxt_c
            self._prev = prev_c
            self._cnt = cnt_c
            self.states = states
            self.elems = elems
        else:
            self._next = RefCell(None, name=("%s.seg%d.next", tag, seg_id))
            self._prev = RefCell(prev, name=("%s.seg%d.prev", tag, seg_id))
            # Packed counter: value = pointers * (K + 1) + interrupted.
            self._cnt = IntCell(pointers * (K + 1), name=("%s.seg%d.cnt", tag, seg_id))
            # A cell's state and elem are adjacent slots of one array in the
            # real layout — the same cache line.  Model that: the sender's
            # element store takes the line exclusively, so its state CAS is
            # local while a racing receiver's state read must fetch the line
            # from it (this asymmetry keeps poisoning rare, §5).
            lines = [CacheLine() for _ in range(K)]
            self.states = [
                RefCell(None, name=("%s.seg%d.state[%d]", tag, seg_id, i), line=lines[i])
                for i in range(K)
            ]
            self.elems = [
                RefCell(None, name=("%s.seg%d.elem[%d]", tag, seg_id, i), line=lines[i])
                for i in range(K)
            ]
        # Recycle the innards when this segment object dies.  The
        # callback references only the pool and the cells (never the
        # segment or the list), so registration does not extend any
        # lifetime; atexit harvesting is pointless, skip it.
        self._fin = weakref.finalize(
            self,
            owner._pool.harvest,
            (self._next, self._prev, self._cnt, self.states, self.elems),
        )
        self._fin.atexit = False

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------

    def state_cell(self, i: int) -> RefCell:
        """The ``A[_].state`` cell for in-segment index ``i``."""

        return self.states[i]

    def elem_cell(self, i: int) -> RefCell:
        """The ``A[_].elem`` cell for in-segment index ``i``."""

        return self.elems[i]

    # ------------------------------------------------------------------
    # Packed (pointers, interrupted) counter
    # ------------------------------------------------------------------

    def _decode(self, value: int) -> tuple[int, int]:
        unit = self.K + 1
        return value // unit, value % unit

    def _is_removed_value(self, value: int) -> bool:
        pointers, interrupted = self._decode(value)
        return interrupted == self.K and pointers == 0

    @property
    def removed_now(self) -> bool:
        """Non-simulated peek for tests run between scheduler steps."""

        return self._is_removed_value(self._cnt.value)

    def is_removed(self) -> Generator[Any, Any, bool]:
        """Atomic read of the logically-removed predicate."""

        value = yield Read(self._cnt)
        return self._is_removed_value(value)

    def try_inc_pointers(self) -> Generator[Any, Any, bool]:
        """Take a reference; fails iff the segment is logically removed.

        The CAS loop makes "check not-removed, then increment" atomic —
        a removed segment can never be resurrected by a late anchor.
        """

        unit = self.K + 1
        while True:
            value = yield Read(self._cnt)
            if self._is_removed_value(value):
                return False
            ok = yield Cas(self._cnt, value, value + unit)
            if ok:
                return True

    def dec_pointers(self) -> Generator[Any, Any, bool]:
        """Drop a reference; ``True`` iff this made the segment removed.

        The caller must then invoke :meth:`remove` (Listing 6, line 32).
        """

        unit = self.K + 1
        old = yield Faa(self._cnt, -unit)
        return self._is_removed_value(old - unit)

    def on_interrupted_cell(self) -> Generator[Any, Any, None]:
        """Account one cell as interrupted; physically remove if now full.

        Called by cancellation handlers (and, for cells whose
        interrupted state ``expandBuffer()`` still needs to observe, by
        ``expandBuffer()`` itself — the Appendix B delegation rule).
        """

        old = yield Faa(self._cnt, +1)
        if self._is_removed_value(old + 1):
            yield from self.remove()

    # ------------------------------------------------------------------
    # Physical removal (Listing 6, lines 65–93)
    # ------------------------------------------------------------------

    def remove(self) -> Generator[Any, Any, None]:
        """Unlink this logically-removed segment from the list.

        The tail cannot be removed (its removal is re-run by
        ``findSegment`` once the tail advances).  After linking the
        nearest alive neighbours around us, we re-check that neither got
        removed concurrently; if one did, the unlink is retried so the
        broken linking a racing ``remove()`` may have produced is always
        repaired (the paper's "the remove() that led to this error will
        fix the problem").
        """

        while True:
            nxt = yield Read(self._next)
            if nxt is None:
                return  # the tail segment must not be removed
            prev = yield from self._alive_segment_left()
            nxt = yield from self._alive_segment_right()
            yield Write(nxt._prev, prev)
            if prev is not None:
                yield Write(prev._next, nxt)
            # Re-validate both neighbours.
            if (yield from nxt.is_removed()):
                nxt_next = yield Read(nxt._next)
                if nxt_next is not None:
                    continue
            if prev is not None and (yield from prev.is_removed()):
                continue
            return

    def _alive_segment_left(self) -> Generator[Any, Any, Optional["Segment"]]:
        cur = yield Read(self._prev)
        while cur is not None and (yield from cur.is_removed()):
            cur = yield Read(cur._prev)
        return cur

    def _alive_segment_right(self) -> Generator[Any, Any, "Segment"]:
        cur = yield Read(self._next)
        assert cur is not None, "tail segments are never removed"
        while True:
            if not (yield from cur.is_removed()):
                return cur
            nxt = yield Read(cur._next)
            if nxt is None:
                return cur  # the tail, even if logically removed
            cur = nxt

    def clean_prev(self) -> Generator[Any, Any, None]:
        """Null the ``prev`` pointer once earlier segments are processed.

        Keeps fully-processed segments unreachable (Appendix B).  Safe at
        any time — removal treats a ``None`` prev as "no alive segment on
        the left" and merely skips the left-side relink.
        """

        yield Write(self._prev, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pointers, interrupted = self._decode(self._cnt.value)
        return f"<Segment #{self.id} ptrs={pointers} int={interrupted}/{self.K}>"


_list_ids = itertools.count()


class SegmentList:
    """Factory and traversal logic for the segment linked list."""

    def __init__(self, seg_size: int = DEFAULT_SEGMENT_SIZE, anchors: int = 2, name: str = "chan"):
        if seg_size < 1:
            raise ValueError("segment size must be >= 1")
        if anchors < 1:
            raise ValueError("at least one anchor reference is required")
        self.seg_size = seg_size
        self.name = name
        #: Unique per-instance tag prefixed onto every cell name, so
        #: instrumentation can scope itself to one channel's cells.
        self.tag = f"L{next(_list_ids)}"
        #: Number of anchor references (2 for rendezvous: S and R;
        #: 3 for buffered: S, R and B).  The first segment starts with
        #: this many pointers — Listing 6: "Initialized with (3, 0)".
        self.anchors = anchors
        self._pool = _CarcassPool()
        self.first = Segment(self, 0, prev=None, pointers=anchors)
        #: Segments ever allocated (allocation-pressure statistic).
        #: Counts *logical* allocations: recycled segments count too —
        #: pooling is invisible to allocation accounting by design.
        self.segments_allocated = 1

    def make_anchor(self, label: str) -> RefCell:
        """A new anchor reference cell pointing at the first segment."""

        return RefCell(self.first, name=f"{self.name}.segment{label}")

    # ------------------------------------------------------------------
    # Segment construction / recycling
    # ------------------------------------------------------------------

    def _new_segment(self, seg_id: int, prev: Optional[Segment], pointers: int = 0) -> Segment:
        """A segment for the tail append — from the carcass pool if possible."""

        carcass = self._pool.take() if _segment_pool else None
        return Segment(self, seg_id, prev, pointers, carcass=carcass)

    def _recycle_unpublished(self, seg: Segment) -> None:
        """Pool a segment whose tail-append CAS lost (deterministic path).

        The segment was never published — no other task can hold a
        reference — so its innards go straight back to the pool instead
        of waiting for GC.  Detach the finalizer first or the eventual
        collection would harvest the same carcass twice.
        """

        if _segment_pool:
            seg._fin.detach()
            self._pool.harvest((seg._next, seg._prev, seg._cnt, seg.states, seg.elems))

    @property
    def pool_hits(self) -> int:
        return self._pool.hits

    @property
    def pool_recycled(self) -> int:
        return self._pool.recycled

    @property
    def pool_rejected(self) -> int:
        return self._pool.rejected

    # ------------------------------------------------------------------
    # findSegment / moveForward (Listing 6, lines 1–37)
    # ------------------------------------------------------------------
    #
    # Hot-path flattening rule (DESIGN.md §10): these walks inline the
    # bodies of ``is_removed``/``try_inc_pointers``/``dec_pointers``
    # *mechanically* — the emitted op sequence is identical to the
    # delegating form, only the generator frames are gone.  The slow
    # ``remove()`` machinery stays on the readable helpers.

    def find_segment(
        self, start: Segment, seg_id: int, checked_start: bool = False
    ) -> Generator[Any, Any, Segment]:
        """First non-removed segment with ``id >= seg_id``, growing the list.

        May return a segment with a *larger* id when the requested one was
        fully interrupted and physically removed; callers then skip the
        whole interrupted range (Listing 5, lines 5–7).

        ``checked_start=True`` resumes a caller's inlined fast path: the
        caller already performed this walk's first removal check on
        ``start`` (one ``Read(start._cnt)``) and saw it removed, so the
        walk starts directly at ``Read(start._next)`` without re-emitting
        the check.
        """

        K1 = self.seg_size + 1
        cur = start
        skip_check = checked_start
        while True:
            if cur.id >= seg_id and not skip_check:
                value = yield read_of(cur._cnt)  # inlined is_removed()
                if not (value % K1 == self.seg_size and value // K1 == 0):
                    return cur
            skip_check = False
            nxt = yield read_of(cur._next)
            if nxt is None:
                new = self._new_segment(cur.id + 1, cur)
                yield Alloc("segment", self.seg_size)
                ok = yield Cas(cur._next, None, new)
                if ok:
                    self.segments_allocated += 1
                    # The old tail may have been waiting for its removal.
                    value = yield read_of(cur._cnt)
                    if value % K1 == self.seg_size and value // K1 == 0:
                        yield from cur.remove()
                else:
                    self._recycle_unpublished(new)
                continue  # re-read next: it is non-null now
            cur = nxt

    def move_forward(self, anchor: RefCell, to: Segment) -> Generator[Any, Any, bool]:
        """Advance *anchor* to ``to`` (never backwards), managing pointers.

        Returns ``False`` iff ``to`` became logically removed before the
        anchor could take a pointer to it; the caller must re-run
        :meth:`find_segment` (Listing 6, ``moveForwardSend``).
        """

        while True:
            cur: Segment = yield Read(anchor)
            if cur.id >= to.id:
                return True  # someone else advanced it past `to`
            if not (yield from to.try_inc_pointers()):
                return False
            ok = yield Cas(anchor, cur, to)
            if ok:
                if (yield from cur.dec_pointers()):
                    yield from cur.remove()
                return True
            if (yield from to.dec_pointers()):
                yield from to.remove()

    def find_and_move_forward(
        self,
        anchor: RefCell,
        start: Segment,
        seg_id: int,
        checked_start: bool = False,
        resume_cur: Optional[Segment] = None,
    ) -> Generator[Any, Any, Segment]:
        """``findAndMoveForwardSend`` and friends (Listing 6, lines 1–8).

        One flat generator: the find phase delegates to
        :meth:`find_segment` only when walking is actually required, and
        the move phase inlines ``move_forward``/``try_inc_pointers``/
        ``dec_pointers`` so the common advance is a single extra frame.

        Two resume-state parameters let callers inline the uncontended
        case without re-emitting ops (both consumed on first use):

        * ``checked_start`` — as for :meth:`find_segment`;
        * ``resume_cur`` — the caller already found ``start`` alive
          (``start.id >= seg_id``) *and* read the anchor, observing
          ``resume_cur`` with ``resume_cur.id < start.id``; the move
          phase continues at the pointer-increment CAS.
        """

        K = self.seg_size
        K1 = K + 1
        read_anchor = read_of(anchor)
        while True:
            # ---- find phase ----
            if resume_cur is not None:
                segm = start
                pending_cur: Optional[Segment] = resume_cur
                resume_cur = None
            else:
                segm = yield from self.find_segment(start, seg_id, checked_start)
                checked_start = False
                pending_cur = None
            # ---- move phase (inlined move_forward) ----
            moved = False
            while True:
                if pending_cur is not None:
                    cur = pending_cur
                    pending_cur = None
                else:
                    cur = yield read_anchor
                if cur.id >= segm.id:
                    moved = True
                    break
                # Inlined try_inc_pointers(segm).
                inc_ok = False
                while True:
                    value = yield read_of(segm._cnt)
                    if value % K1 == K and value // K1 == 0:
                        break  # logically removed: cannot take a pointer
                    ok = yield Cas(segm._cnt, value, value + K1)
                    if ok:
                        inc_ok = True
                        break
                if not inc_ok:
                    break  # re-run the find phase
                ok = yield Cas(anchor, cur, segm)
                if ok:
                    # Inlined cur.dec_pointers().
                    old = yield Faa(cur._cnt, -K1)
                    if (old - K1) % K1 == K and (old - K1) // K1 == 0:
                        yield from cur.remove()
                    moved = True
                    break
                # Inlined segm.dec_pointers() after the lost anchor CAS.
                old = yield Faa(segm._cnt, -K1)
                if (old - K1) % K1 == K and (old - K1) // K1 == 0:
                    yield from segm.remove()
            if moved:
                return segm

    # ------------------------------------------------------------------
    # Test helpers (non-simulated; run only between scheduler steps)
    # ------------------------------------------------------------------

    def iter_segments(self) -> list[Segment]:
        """Snapshot of segments reachable from the first one (tests)."""

        out = []
        cur: Optional[Segment] = self.first
        while cur is not None:
            out.append(cur)
            cur = cur._next.value
        return out

    def alive_count(self) -> int:
        """Number of reachable, non-removed segments (tests)."""

        return sum(1 for seg in self.iter_segments() if not seg.removed_now)
