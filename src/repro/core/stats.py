"""Per-channel statistics counters.

These are *observer* counters, not simulated memory: the algorithms bump
plain Python attributes between their atomic steps, which is race-free in
every driver (the simulator runs one op at a time; the asyncio adapter is
single-threaded; the thread adapter holds the op lock).

They feed two of the paper's evaluation artefacts directly:

* **Cell poisoning** (§5): ``poisoned`` vs. ``cells_processed`` reproduces
  the "never exceeds 10% of cells" measurement;
* **Memory usage** (§5): segment/node allocation counts are gathered by
  :mod:`repro.bench.memstats` via :class:`~repro.concurrent.ops.Alloc`
  events, with ``ChannelStats`` supplying the per-operation denominators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ChannelStats"]


@dataclass
class ChannelStats:
    """Operation counters for one channel instance."""

    #: Completed ``send(e)`` operations.
    sends: int = 0
    #: Completed ``receive()`` operations.
    receives: int = 0
    #: ``send(e)`` calls that actually suspended.
    send_suspends: int = 0
    #: ``receive()`` calls that actually suspended.
    rcv_suspends: int = 0
    #: Sender-side eliminations (EMPTY -> BUFFERED while a receiver is
    #: incoming; the yellow path of Figure 1).
    eliminations: int = 0
    #: Cells poisoned by ``receive()`` (EMPTY -> BROKEN; the red path).
    poisoned: int = 0
    #: Total cell-reservation attempts (FAA on S plus FAA on R); the
    #: denominator of the poisoning statistic.
    cells_processed: int = 0
    #: ``expandBuffer()`` invocations (buffered channel only).
    expansions: int = 0
    #: ``expandBuffer()`` restarts due to interrupted senders.
    expansion_restarts: int = 0
    #: Operation restarts (a FAA-reserved cell had to be abandoned).
    send_restarts: int = 0
    rcv_restarts: int = 0
    #: Suspensions cancelled before resumption.
    send_interrupts: int = 0
    rcv_interrupts: int = 0
    #: Failed non-blocking attempts.
    try_send_failures: int = 0
    try_receive_failures: int = 0
    #: Elements consumed by a losing select clause with no
    #: ``on_undelivered`` hook installed (dropped).
    select_undelivered: int = 0

    @property
    def poisoned_fraction(self) -> float:
        """Poisoned cells over processed cells (the §5 statistic)."""

        return self.poisoned / self.cells_processed if self.cells_processed else 0.0

    def snapshot(self) -> dict[str, int | float]:
        """Plain-dict copy for reports."""

        data = {k: getattr(self, k) for k in self.__dataclass_fields__}
        data["poisoned_fraction"] = self.poisoned_fraction
        return data
