"""``select`` over channel clauses (the kotlinx companion feature).

``select`` waits on several send/receive clauses at once and completes
exactly one — the backbone of multiplexing patterns (fan-in with
priorities, timeouts via a timer channel, graceful shutdown channels)::

    idx, value = yield from select(
        receive_clause(updates),
        receive_clause(shutdown),
        send_clause(downstream, item),
    )
    if idx == 0: handle(value)
    elif idx == 1: return
    else: ...  # item was sent

Design (see DESIGN.md §select):

* all clauses share one *decision* — the primary waiter's state cell; a
  resumption/interruption anywhere commits the whole select atomically;
* a clause that can complete immediately first **claims** the decision
  (kotlinx's ``trySelect``); losing the claim aborts the completion;
* registered-but-losing clauses are neutralized: their cells move to
  ``INTERRUPTED_*`` (with the channel's segment accounting), and any peer
  waiter found in a reserved cell is woken with the **retry** signal so
  it re-reserves a fresh cell instead of being orphaned;
* the one unrecoverable race — a losing receive clause that already
  consumed a buffered element — routes the element to the channel's
  ``on_undelivered`` hook, exactly like kotlinx's ``onUndeliveredElement``.

Limitations (documented): clauses must target distinct channels (one
select cannot both send and receive on the same channel), and the
Appendix A variant (:class:`~repro.core.buffered_eb.BufferedChannelEB`)
does not support select.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.ops import Read, Spin
from ..errors import Interrupted, ReproError
from ..runtime.waiter import Waiter
from .base import ChannelBase, Registered, SelectRegistrar
from .states import BROKEN, BUFFERED, DONE, DONE_RCV, INTERRUPTED_RCV, INTERRUPTED_SEND

__all__ = ["select", "send_clause", "receive_clause", "SelectClause"]


class SelectClause:
    """One alternative of a select: a pending send or receive."""

    __slots__ = ("kind", "channel", "element")

    def __init__(self, kind: str, channel: ChannelBase, element: Any = None):
        self.kind = kind  # "send" | "recv"
        self.channel = channel
        self.element = element

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "send":
            return f"send_clause({self.channel.name}, {self.element!r})"
        return f"receive_clause({self.channel.name})"


def send_clause(channel: ChannelBase, element: Any) -> SelectClause:
    """A clause that completes by sending ``element`` into ``channel``."""

    return SelectClause("send", channel, element)


def receive_clause(channel: ChannelBase) -> SelectClause:
    """A clause that completes by receiving from ``channel``."""

    return SelectClause("recv", channel)


def select(*clauses: SelectClause) -> Generator[Any, Any, tuple[int, Any]]:
    """Wait until one clause completes; returns ``(clause_index, value)``.

    ``value`` is the received element for a receive clause, ``None`` for
    a send clause.  Raises the respective closed-channel exception if the
    winning/only-viable clause's channel is closed, and
    :class:`~repro.errors.Interrupted` if the suspension is cancelled.
    """

    if not clauses:
        raise ValueError("select requires at least one clause")
    seen_channels = set()
    for clause in clauses:
        if id(clause.channel) in seen_channels:
            raise ValueError("select clauses must target distinct channels")
        seen_channels.add(id(clause.channel))

    primary = yield from Waiter.make()
    registrar = SelectRegistrar(primary)
    registrations: list[tuple[int, SelectClause, Registered]] = []

    def cleanup(winner_reg: Optional[Registered] = None) -> Generator[Any, Any, None]:
        """Neutralize losing registrations (idempotent)."""

        for _, clause, reg in registrations:
            if reg is winner_reg:
                continue
            yield from clause.channel.select_cleanup(reg, clause.kind == "send")

    try:
        # Phase 1: visit clauses in order; complete immediately or register.
        for index, clause in enumerate(clauses):
            if clause.kind == "send":
                status, value = yield from clause.channel.select_send(
                    registrar, clause.element
                )
            else:
                status, value = yield from clause.channel.select_receive(registrar)
            if status == "done":
                yield from cleanup()
                return (index, value)
            if status == "registered":
                registrations.append((index, clause, value))
                continue
            if status == "lost":
                # Another clause's registration was resumed concurrently.
                return (yield from _resolve_by_scan(registrations, registrar, cleanup))
            if status == "closed":
                # A closed receive clause fails the whole select, like
                # kotlinx's onReceive on a closed channel.
                from ..errors import ChannelClosedForReceive

                raise ChannelClosedForReceive()
        # Phase 2: nothing immediate — park on the shared decision.
        try:
            yield from primary.park(None)
        except Interrupted:
            yield from cleanup()
            cause = _interrupt_cause(primary, registrations)
            if cause is not None:
                raise cause from None
            raise
        return (yield from _resolve_by_scan(registrations, registrar, cleanup))
    except GeneratorExit:
        # The whole operation is being dropped (e.g. garbage-collected
        # after a deadlock report): unwinding must not yield.
        raise
    except BaseException:
        yield from cleanup()
        raise


def _resolve_by_scan(
    registrations: list[tuple[int, SelectClause, Registered]],
    registrar: SelectRegistrar,
    cleanup: Any,
) -> Generator[Any, Any, tuple[int, Any]]:
    """Find which registered clause the resumer completed, clean the rest.

    The resumer's post-``tryUnpark`` cell transition (``DONE``,
    ``DONE_RCV``, or ``BUFFERED``) may still be in flight when we wake;
    it is performed by a running task mid-operation, so a bounded
    spin-wait (tagged, like the algorithm's S_RESUMING waits) suffices.
    An interruption (e.g. a closing channel cancelling a registered
    receive clause) is also detected here.
    """

    from ..concurrent.ops import GetAndSet
    from ..runtime.waiter import INTERRUPTED as W_INTERRUPTED

    while True:
        for index, clause, reg in registrations:
            state = yield Read(reg.segm.state_cell(reg.index))
            if state is reg.waiter:
                continue  # untouched registration: a loser
            if clause.kind == "recv" and (state is DONE or state is DONE_RCV):
                value = yield GetAndSet(reg.segm.elem_cell(reg.index), None)
                yield from cleanup(reg)
                return (index, value)
            if clause.kind == "send" and (state is DONE or state is DONE_RCV or state is BUFFERED):
                yield from cleanup(reg)
                return (index, None)
            # INTERRUPTED_* / BROKEN: a racing resumer lost against our
            # decision and neutralized the cell itself — not the winner.
        pstate = yield Read(registrar.primary._state)
        if pstate is W_INTERRUPTED:
            yield from cleanup()
            cause = _interrupt_cause(registrar.primary, registrations)
            if cause is not None:
                raise cause
            raise Interrupted()
        yield Spin("select-await-winner")


def _interrupt_cause(primary: Waiter, registrations: list) -> Optional[BaseException]:
    """The richest interruption cause across the linked clause waiters.

    Linked waiters share the primary's *state* cell but each carries its
    own ``interrupt_cause`` slot (an interruptor — e.g. a closing
    channel's cancellation walk — writes the cause on the clause waiter
    it found in the cell)."""

    if primary.interrupt_cause is not None:
        return primary.interrupt_cause
    for _, _, reg in registrations:
        if reg.waiter.interrupt_cause is not None:
            return reg.waiter.interrupt_cause
    return None
