"""A plain (non-segmented) infinite array of channel cells.

Used by the simplified Appendix C algorithm and the MPDQ baseline, where
the focus is the cell protocol rather than memory reclamation.  Cells are
created lazily on first touch; creation happens inline within the touching
task's atomic step, which is sound because the simulator executes one step
at a time (and the other drivers serialize op application the same way).
"""

from __future__ import annotations

from typing import Any

from ..concurrent.cells import RefCell

__all__ = ["PlainInfiniteArray"]


class PlainInfiniteArray:
    """Lazily grown array of ``(state, elem)`` cell pairs."""

    __slots__ = ("name", "_states", "_elems")

    def __init__(self, name: str = "arr"):
        self.name = name
        self._states: dict[int, RefCell] = {}
        self._elems: dict[int, RefCell] = {}

    def state_cell(self, i: int) -> RefCell:
        cell = self._states.get(i)
        if cell is None:
            cell = self._states[i] = RefCell(None, name=f"{self.name}.state[{i}]")
        return cell

    def elem_cell(self, i: int) -> RefCell:
        cell = self._elems.get(i)
        if cell is None:
            cell = self._elems[i] = RefCell(None, name=f"{self.name}.elem[{i}]")
        return cell

    def touched_indices(self) -> list[int]:
        """Indices of cells ever created (tests and invariant checks)."""

        return sorted(self._states.keys() | self._elems.keys())
