"""The simplified buffered channel of Appendix C (Listing 7, Figure 4).

This is the algorithm the paper's Theorem 1 ("the buffer size is constant
over time") is proved about; the production algorithm of §3.2 is argued to
be an optimized refinement of it.  The simplifications:

* plain infinite array (no segments, no memory reclamation);
* no elimination and no poisoning — races are resolved by **spin-waiting**
  (senders wait for ``IN_BUFFER``, receivers wait for the cell to resolve);
* ``expandBuffer()`` always marks EMPTY cells ``IN_BUFFER`` (no ``b >= S``
  shortcut), and the first ``C`` cells are pre-marked at construction;
* capacity must be positive and **receivers never interrupt** (senders may).

Theorem 1 instrumentation: the proof's ghost variables are maintained as
plain attributes, updated immediately after the cell transition that
changes them (between two yields, hence atomically w.r.t. other tasks):

* ``bc`` — empty buffer cells (``IN_BUFFER``),
* ``el`` — unconsumed buffered elements (``BUFFERED``),
* ``eb`` — obligated-but-not-yet-effective ``expandBuffer()`` calls.

``check_invariant()`` asserts ``bc + el + eb == C``; the test suite runs it
after *every simulator step* under exhaustive and random schedules.
"""

from __future__ import annotations

from typing import Any, Generator

from ..concurrent.cells import IntCell
from ..concurrent.ops import Cas, Faa, Read, Spin, Write
from ..errors import Interrupted, InvariantViolation
from .plain_array import PlainInfiniteArray
from .states import BUFFERED, IN_BUFFER, INTERRUPTED_SEND, ReceiverWaiter, SenderWaiter

__all__ = ["SimplifiedBufferedChannel"]


class SimplifiedBufferedChannel:
    """Appendix C algorithm with built-in Theorem 1 ghost accounting."""

    def __init__(self, capacity: int, name: str = "simplified"):
        if capacity < 1:
            raise ValueError("the simplified algorithm requires capacity >= 1")
        self.capacity = capacity
        self.name = name
        self.S = IntCell(0, name=f"{name}.S")
        self.R = IntCell(0, name=f"{name}.R")
        self.B = IntCell(capacity, name=f"{name}.B")
        self.A = PlainInfiniteArray(f"{name}.A")
        # "Initially ... the first C cells are in the IN_BUFFER state."
        for i in range(capacity):
            self.A.state_cell(i).value = IN_BUFFER
        # Theorem 1 ghost variables.
        self.bc = capacity
        self.el = 0
        self.eb = 0

    # ------------------------------------------------------------------
    # Ghost accounting
    # ------------------------------------------------------------------

    def check_invariant(self) -> None:
        """Assert Theorem 1: ``bc + el + eb == C`` at every step."""

        total = self.bc + self.el + self.eb
        if total != self.capacity:
            raise InvariantViolation(
                f"Theorem 1 violated: bc={self.bc} el={self.el} eb={self.eb} "
                f"sum={total} != C={self.capacity}"
            )

    # ------------------------------------------------------------------
    # send (Listing 7, lines 4-46)
    # ------------------------------------------------------------------

    def send(self, element: Any) -> Generator[Any, Any, None]:
        if element is None:
            raise ValueError("channel cannot carry None")
        while True:
            s = yield Faa(self.S, 1)
            yield Write(self.A.elem_cell(s), element)
            if (yield from self._upd_cell_send(s)):
                return

    def _upd_cell_send(self, s: int) -> Generator[Any, Any, bool]:
        state_cell = self.A.state_cell(s)
        elem_cell = self.A.elem_cell(s)
        while True:
            state = yield Read(state_cell)
            b = yield Read(self.B)
            if state is IN_BUFFER:
                # The cell is part of the buffer => deposit and finish.
                ok = yield Cas(state_cell, IN_BUFFER, BUFFERED)
                if ok:
                    self.bc -= 1
                    self.el += 1
                    self.check_invariant()
                    return True
                continue
            if state is None and s >= b:
                # Outside the buffer => suspend.
                w = yield from SenderWaiter.make()
                ok = yield Cas(state_cell, None, w)
                if ok:
                    yield from self._park_sender(w, s)
                    return True
                continue
            if isinstance(state, ReceiverWaiter):
                # Waiting receiver => resume it and finish (receivers
                # never interrupt in the simplified algorithm).
                resumed = yield from state.try_unpark()
                assert resumed, "simplified algorithm: receivers never interrupt"
                return True
            if state is None and s < b:
                # Will become a buffer cell => wait for IN_BUFFER.
                yield Spin("simplified-send-wait-inbuffer")
                continue
            raise AssertionError(f"simplified send: impossible state {state!r} at cell {s}")

    def _park_sender(self, w: SenderWaiter, s: int) -> Generator[Any, Any, None]:
        state_cell = self.A.state_cell(s)
        elem_cell = self.A.elem_cell(s)

        def on_interrupt() -> Generator[Any, Any, None]:
            yield Write(elem_cell, None)
            ok = yield Cas(state_cell, w, INTERRUPTED_SEND)
            # If the CAS failed, a resumer locked the cell; its failed
            # tryUnpark writes INTERRUPTED_SEND itself.  (The simplified
            # algorithm has no S_RESUMING lock states, so resumers use
            # the waiter CAS alone — nothing further to do either way.)
            _ = ok

        try:
            yield from w.park(on_interrupt)
        except Interrupted:
            if w.interrupt_cause is not None:
                raise w.interrupt_cause from None
            raise

    # ------------------------------------------------------------------
    # receive (Listing 7, lines 11-72)
    # ------------------------------------------------------------------

    def receive(self) -> Generator[Any, Any, Any]:
        while True:
            r = yield Faa(self.R, 1)
            if (yield from self._upd_cell_rcv(r)):
                elem_cell = self.A.elem_cell(r)
                value = yield Read(elem_cell)
                yield Write(elem_cell, None)
                return value

    def _upd_cell_rcv(self, r: int) -> Generator[Any, Any, bool]:
        state_cell = self.A.state_cell(r)
        while True:
            state = yield Read(state_cell)
            s = yield Read(self.S)
            if state is IN_BUFFER and r >= s:
                # Buffer cell, no sender coming => suspend.
                w = yield from ReceiverWaiter.make()
                ok = yield Cas(state_cell, IN_BUFFER, w)
                if ok:
                    self.bc -= 1
                    self.eb += 1  # this receive owes one expansion
                    self.check_invariant()
                    yield from self.expand_buffer()
                    yield from w.park()  # receivers never interrupt
                    return True
                continue
            if state is IN_BUFFER and r < s:
                # A sender is incoming => wait for it to deposit.
                yield Spin("simplified-rcv-wait-sender")
                continue
            if state is BUFFERED:
                self.el -= 1
                self.eb += 1
                self.check_invariant()
                yield from self.expand_buffer()
                return True
            if state is INTERRUPTED_SEND:
                return False  # restart with a fresh cell
            if isinstance(state, SenderWaiter):
                # The sender suspended before the cell joined the buffer;
                # wait for expandBuffer to resume it.
                yield Spin("simplified-rcv-wait-eb")
                continue
            if state is None:
                yield Spin("simplified-rcv-wait-empty")
                continue
            raise AssertionError(f"simplified receive: impossible state {state!r} at cell {r}")

    # ------------------------------------------------------------------
    # expandBuffer (Listing 7, lines 18-92)
    # ------------------------------------------------------------------

    def expand_buffer(self) -> Generator[Any, Any, None]:
        while True:
            b = yield Faa(self.B, 1)
            if (yield from self._upd_cell_eb(b)):
                return

    def _upd_cell_eb(self, b: int) -> Generator[Any, Any, bool]:
        state_cell = self.A.state_cell(b)
        while True:
            state = yield Read(state_cell)
            if state is None:
                ok = yield Cas(state_cell, None, IN_BUFFER)
                if ok:
                    self.bc += 1
                    self.eb -= 1
                    self.check_invariant()
                    return True
                continue
            if isinstance(state, SenderWaiter):
                resumed = yield from state.try_unpark()
                if resumed:
                    yield Write(state_cell, BUFFERED)
                    self.el += 1
                    self.eb -= 1
                    self.check_invariant()
                    return True
                yield Write(state_cell, INTERRUPTED_SEND)
                return False  # restart: the cell cannot expand the buffer
            if state is INTERRUPTED_SEND:
                return False
            raise AssertionError(f"simplified expandBuffer: impossible state {state!r} at cell {b}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def ghost_counters(self) -> tuple[int, int, int]:
        """Current ``(bc, el, eb)`` ghost values."""

        return (self.bc, self.el, self.eb)
