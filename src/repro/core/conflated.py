"""Buffer-overflow policies: DROP_OLDEST and the conflated channel.

Kotlin's ``Channel(capacity, onBufferOverflow = DROP_OLDEST)`` and
``Channel(CONFLATED)`` are thin behaviours over the buffered algorithm:
a send that would suspend instead evicts the oldest buffered element and
retries.  We compose them from the §5 non-blocking primitives — exactly
how ``kotlinx.coroutines`` implements ``ConflatedBufferedChannel`` — so
sends never suspend and receivers see only the freshest elements.

Evicted elements go to the channel's ``on_undelivered`` hook when set
(mirroring kotlinx's ``onUndeliveredElement``), else they are dropped and
counted in ``stats.conflated_drops``.
"""

from __future__ import annotations

from typing import Any, Generator

from .buffered import BufferedChannel
from .segments import DEFAULT_SEGMENT_SIZE

__all__ = ["DropOldestChannel", "ConflatedChannel"]


class DropOldestChannel(BufferedChannel):
    """Buffered channel whose sends never suspend: overflow evicts.

    ``send``/``try_send`` keep the *newest* ``capacity`` elements.  All
    other operations (receive, close, cancel, select receive clauses)
    behave exactly like :class:`BufferedChannel`.
    """

    def __init__(self, capacity: int, seg_size: int = DEFAULT_SEGMENT_SIZE, name: str = "drop-oldest"):
        if capacity < 1:
            raise ValueError("DROP_OLDEST requires capacity >= 1")
        super().__init__(capacity, seg_size=seg_size, name=name)
        #: Elements evicted by overflowing sends (when no hook is set).
        self.conflated_drops = 0

    def send(self, element: Any) -> Generator[Any, Any, None]:
        """Deposit ``element``, evicting the oldest element if full.

        Never suspends; raises
        :class:`~repro.errors.ChannelClosedForSend` once closed.
        """

        if element is None:
            raise ValueError("channels cannot carry None (reserved sentinel)")
        while True:
            ok = yield from super().try_send(element)
            if ok:
                return
            # Full: evict the oldest buffered element and retry.  A
            # concurrent receiver may beat us to it — the loop re-tries
            # either way, and the channel can only have gained room.
            dropped, old = yield from super().try_receive()
            if dropped:
                hook = self.on_undelivered
                if hook is not None:
                    hook(old)
                else:
                    self.conflated_drops += 1

    def try_send(self, element: Any) -> Generator[Any, Any, bool]:
        """Like :meth:`send`; always ``True`` (an eviction never fails)."""

        yield from self.send(element)
        return True


class ConflatedChannel(DropOldestChannel):
    """``Channel(CONFLATED)``: capacity one, sends overwrite.

    Receivers always observe the most recently sent element; a receive on
    an empty conflated channel suspends as usual.
    """

    def __init__(self, seg_size: int = DEFAULT_SEGMENT_SIZE, name: str = "conflated"):
        super().__init__(1, seg_size=seg_size, name=name)
