"""Public channel constructors (the library's front door).

:func:`make_channel` mirrors the ``Channel(capacity)`` factory of Kotlin
Coroutines: capacity ``0`` gives a rendezvous channel, a positive capacity
gives a buffered channel, and :data:`UNLIMITED` gives an effectively
unbounded buffer.

All channel operations are *generators* over the op protocol; drive them
with a simulated scheduler (:mod:`repro.sim`), the asyncio adapter
(:mod:`repro.aio`), or the OS-thread adapter (:mod:`repro.threads`)::

    ch = make_channel(capacity=4)

    def producer():
        for i in range(10):
            yield from ch.send(i)
        yield from ch.close()

    def consumer(out):
        while True:
            ok, v = yield from ch.receive_catching()
            if not ok:
                return
            out.append(v)
"""

from __future__ import annotations

from typing import Union

from .buffered import BufferedChannel
from .rendezvous import RendezvousChannel
from .segments import DEFAULT_SEGMENT_SIZE

__all__ = ["make_channel", "UNLIMITED", "RENDEZVOUS", "Channel"]

#: Capacity constant: an effectively unlimited buffer (sends never suspend).
UNLIMITED = 1 << 50

#: Capacity constant: a rendezvous channel (capacity zero).
RENDEZVOUS = 0

#: Union type of the channels this factory can build.
Channel = Union[RendezvousChannel, BufferedChannel]


def make_channel(
    capacity: int = RENDEZVOUS,
    seg_size: int = DEFAULT_SEGMENT_SIZE,
    name: str | None = None,
) -> Channel:
    """Create a channel with the requested buffering.

    ``capacity == 0`` returns the dedicated rendezvous algorithm (§3.1);
    ``capacity > 0`` returns the buffered algorithm (§3.2).  (Capacity 0 on
    :class:`BufferedChannel` is also legal and behaves as a rendezvous
    channel — the benchmarks compare both code paths — but the standalone
    rendezvous algorithm avoids the ``B`` counter entirely.)
    """

    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    if capacity == 0:
        return RendezvousChannel(seg_size=seg_size, name=name or "rendezvous")
    return BufferedChannel(capacity, seg_size=seg_size, name=name or f"buffered({capacity})")
