"""The buffered channel (§3.2, Listing 4, Figure 2).

A buffered channel of capacity ``C`` lets senders deposit up to ``C``
elements without suspending.  On top of the rendezvous machinery it adds a
third counter ``B`` marking the end of the *logical buffer* in the infinite
array: ``send(e)`` buffers its element whenever ``s < B`` (or a receiver is
already incoming), and every completed ``receive()`` synchronization —
element retrieval, suspension, or cell poisoning — restores the capacity by
calling :meth:`BufferedChannel.expand_buffer`, which advances ``B`` and
wakes the sender suspended in the newly covered cell, if any.

``B`` cannot be replaced by ``R + C`` because of cancellation: an
interrupted sender occupies a cell that must *not* count as buffer space
(§3.2's capacity-1 example).  ``expandBuffer()`` therefore *restarts* —
advancing ``B`` once more — whenever the covered cell turns out to hold an
interrupted sender.

Three-party races on one cell (sender, receiver, expandBuffer) are resolved
with the transient ``S_RESUMING_RCV`` / ``S_RESUMING_EB`` lock states: the
party resuming a suspended sender first claims the cell, and the other
party spin-waits for the outcome (``BUFFERED`` or ``INTERRUPTED_SEND``).
This is the algorithm's single *blocking* interaction (§4.2); the spin
iterations are tagged so tests can assert it never occurs elsewhere.

Segment-removal accounting (Appendix B): an ``INTERRUPTED_SEND`` cell is
counted toward its segment's removal **only by expandBuffer** — whichever
of (its own failed resumption, observing the state on its visit) happens —
because ``expandBuffer`` must still be able to *read* the interrupted state
to know the expansion needs a restart.  Cells that ``expandBuffer`` never
visits keep their segment alive, exactly like an uncancelled waiter would.
``INTERRUPTED_RCV`` cells count immediately: every phase that can later
reach a fully-removed segment treats the skip correctly (``send``/
``receive`` restart; ``expandBuffer`` completes, because a removed
segment can only contain cancelled receivers).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.cells import IntCell
from ..concurrent import ops as _ops
from ..concurrent.ops import (
    CURRENT_TASK,
    FRESH_KIT,
    Spin,
    UnparkTask,
    acquire_kit,
    faa_of,
    read_of,
    release_kit,
)
from ..errors import ChannelClosedForReceive, ChannelClosedForSend
from ..runtime.waiter import INIT, PARKED, PERMIT, RESUMED
from .base import (
    CLOSED,
    MARK,
    RESTART,
    SELECT_LOST,
    SUCCESS,
    WOULD_BLOCK,
    ChannelBase,
    Registered,
    SelectRegistrar,
    _Outcome,
)
from .closing import counter_of, is_flagged
from .segments import DEFAULT_SEGMENT_SIZE, Segment
from .states import (
    BROKEN,
    BUFFERED,
    CANCELLED,
    DONE_RCV,
    IN_BUFFER,
    INTERRUPTED_RCV,
    INTERRUPTED_SEND,
    S_RESUMING_EB,
    S_RESUMING_RCV,
    ReceiverWaiter,
    SenderWaiter,
)

__all__ = ["BufferedChannel"]


class BufferedChannel(ChannelBase):
    """FAA-based buffered channel with ``expandBuffer()`` (Listing 4)."""

    ANCHORS = 3
    COUNT_SEND_INTERRUPT_IMMEDIATELY = False  # delegated to expandBuffer

    #: Compiled-tier kernel descriptor (PR 10); see
    #: ``RendezvousChannel.KERNEL_DESCRIPTOR``.  ``expand_buffer`` is
    #: deliberately absent: the kernels always run it as a Python
    #: delegate (DESIGN.md §14).
    KERNEL_DESCRIPTOR = {
        "_send_fused": "buf_send",
        "_receive_fused": "buf_recv",
    }

    def __init__(
        self,
        capacity: int,
        seg_size: int = DEFAULT_SEGMENT_SIZE,
        name: str = "buffered",
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        super().__init__(seg_size=seg_size, name=name)
        self.capacity = capacity
        #: End of the logical buffer; initialized to the capacity.
        self.B = IntCell(capacity, name=f"{name}.B")
        self._segm_b = self._list.make_anchor("B")

    # ------------------------------------------------------------------
    # Fused fast paths (DESIGN.md §10)
    # ------------------------------------------------------------------
    #
    # Same shape as :class:`~repro.core.rendezvous.RendezvousChannel`'s
    # fused paths: the PARK-mode send()/receive() inline the attempt
    # loop and the updCell state machine into the public generator (two
    # frames per op instead of four), dropping the select/MARK branches
    # that cannot fire in PARK mode.  Op-for-op identical to the general
    # code, which try-ops, select clauses, and subclasses keep using.

    def send(self, element: Any) -> Generator[Any, Any, None]:
        """Send ``element``, suspending while the buffer is full.

        Raises :class:`ChannelClosedForSend` once the channel is closed,
        and :class:`Interrupted` if the suspension is cancelled.

        Dispatch wrapper — when the compiled engine has installed its
        algorithm kernels (``ops.KERNELS``) and this operation is
        kernel-eligible, return the native kernel iterator instead of
        the fused generator (see ``RendezvousChannel.send``).
        """

        kernels = _ops.KERNELS
        if (
            kernels is not None
            and element is not None
            and type(self) is BufferedChannel
            and self.observer is None
        ):
            kern = kernels.buf_send(self, element)
            if kern is not None:
                return kern
        return self._send_fused(element)

    def _send_fused(self, element: Any) -> Generator[Any, Any, None]:
        if element is None:
            raise ValueError("channels cannot carry None (reserved sentinel)")
        kit = acquire_kit()
        try:
            K = self.seg_size
            stats = self.stats
            anchor = self._segm_s
            read_anchor = read_of(anchor)
            faa_s = faa_of(self.S, 1)
            read_r = read_of(self.R)
            read_b = read_of(self.B)
            while True:
                # -- _send_attempt(element, PARK, kit), inlined --------
                segm = yield read_anchor
                s_raw = yield faa_s
                stats.cells_processed += 1
                s = counter_of(s_raw)
                sid, i = divmod(s, K)
                if is_flagged(s_raw):
                    yield from self._mark_closed_send_cell(segm, sid, i)
                    raise ChannelClosedForSend()
                if segm.id >= sid:
                    value = yield read_of(segm._cnt)  # inlined is_removed(segm)
                    if value % (K + 1) == K and value // (K + 1) == 0:
                        segm = yield from self._list.find_and_move_forward(
                            anchor, segm, sid, checked_start=True
                        )
                    else:
                        cur = yield read_anchor  # inlined move_forward fast case
                        if cur.id < segm.id:
                            segm = yield from self._list.find_and_move_forward(
                                anchor, segm, sid, resume_cur=cur
                            )
                else:
                    segm = yield from self._list.find_and_move_forward(anchor, segm, sid)
                if segm.id != sid:
                    yield kit.cas(self.S, s_raw + 1, (s_raw - s) + segm.id * K)
                    stats.send_restarts += 1
                    continue
                state_cell = segm.states[i]
                elem_cell = segm.elems[i]
                yield kit.write(elem_cell, element)
                # -- _upd_cell_send(segm, i, s, PARK, kit), inlined ----
                read_state = read_of(state_cell)
                outcome = RESTART
                while True:
                    state = yield read_state
                    r_raw = yield read_r
                    r = counter_of(r_raw)
                    b = yield read_b
                    if (state is None and (s < r or s < b)) or state is IN_BUFFER:
                        # In the buffer, or a receiver is incoming:
                        # deposit without suspending.
                        ok = yield kit.cas(state_cell, state, BUFFERED)
                        if ok:
                            outcome = SUCCESS
                            break
                        continue
                    if state is None and s >= b and s >= r:
                        # EMPTY, outside the buffer, no receiver.
                        w = SenderWaiter.of((yield CURRENT_TASK))
                        ok = yield kit.cas(state_cell, None, w)
                        if ok:
                            resumed = yield from self._park_sender(w, segm, i)
                            outcome = SUCCESS if resumed else RESTART
                            break
                        continue
                    if isinstance(state, ReceiverWaiter):
                        # Waiting receiver => rendezvous.
                        wcell = state._state
                        ws = yield read_of(wcell)
                        if ws is INIT:
                            ok = yield kit.cas(wcell, INIT, PERMIT)
                            if not ok:
                                ok = yield from state.try_unpark()
                        elif ws is PARKED:
                            ok = yield kit.cas(wcell, PARKED, RESUMED)
                            if ok:
                                yield UnparkTask(state.task, interrupt=False)
                            else:
                                ok = yield from state.try_unpark()
                        else:
                            ok = False
                        if ok:
                            yield kit.write(state_cell, DONE_RCV)
                            outcome = SUCCESS
                            break
                        yield kit.write(elem_cell, None)
                        outcome = RESTART
                        break
                    if state is INTERRUPTED_RCV or state is BROKEN or state is CANCELLED:
                        yield kit.write(elem_cell, None)
                        outcome = RESTART
                        break
                    raise AssertionError(
                        f"send found impossible cell state {state!r} at {segm.id}:{i}"
                    )
                if outcome is SUCCESS:
                    if self.observer is not None:
                        self.observer.send_done(s, element)
                    yield kit.write(segm._prev, None)  # inlined clean_prev()
                    stats.sends += 1
                    return
                stats.send_restarts += 1
        finally:
            release_kit(kit)

    def receive(self) -> Generator[Any, Any, Any]:
        """Receive the next element, suspending while the channel is empty.

        Raises :class:`ChannelClosedForReceive` once the channel is both
        closed and drained (or cancelled), and :class:`Interrupted` if the
        suspension is cancelled.

        Dispatch wrapper — see :meth:`send` for the kernel contract.
        """

        kernels = _ops.KERNELS
        if (
            kernels is not None
            and type(self) is BufferedChannel
            and self.observer is None
        ):
            kern = kernels.buf_recv(self)
            if kern is not None:
                return kern
        return self._receive_fused()

    def _receive_fused(self) -> Generator[Any, Any, Any]:
        kit = acquire_kit()
        try:
            K = self.seg_size
            stats = self.stats
            anchor = self._segm_r
            read_anchor = read_of(anchor)
            faa_r = faa_of(self.R, 1)
            read_s = read_of(self.S)
            while True:
                # -- _receive_attempt(PARK, kit), inlined --------------
                segm = yield read_anchor
                r_raw = yield faa_r
                stats.cells_processed += 1
                r = counter_of(r_raw)
                rid, i = divmod(r, K)
                if is_flagged(r_raw):  # the channel was cancelled
                    yield from self._mark_cancelled_rcv_cell(segm, rid, i)
                    raise ChannelClosedForReceive()
                if segm.id >= rid:
                    value = yield read_of(segm._cnt)  # inlined is_removed(segm)
                    if value % (K + 1) == K and value // (K + 1) == 0:
                        segm = yield from self._list.find_and_move_forward(
                            anchor, segm, rid, checked_start=True
                        )
                    else:
                        cur = yield read_anchor  # inlined move_forward fast case
                        if cur.id < segm.id:
                            segm = yield from self._list.find_and_move_forward(
                                anchor, segm, rid, resume_cur=cur
                            )
                else:
                    segm = yield from self._list.find_and_move_forward(anchor, segm, rid)
                if segm.id != rid:
                    yield kit.cas(self.R, r_raw + 1, (r_raw - r) + segm.id * K)
                    stats.rcv_restarts += 1
                    continue
                state_cell = segm.states[i]
                # -- _upd_cell_rcv(segm, i, r, PARK, kit), inlined -----
                read_state = read_of(state_cell)
                outcome = RESTART
                while True:
                    state = yield read_state
                    s_raw = yield read_s
                    s = counter_of(s_raw)
                    if (state is None or state is IN_BUFFER) and r >= s:
                        # EMPTY (or pre-marked buffer cell), no sender.
                        if is_flagged(s_raw):
                            # Closed and drained.
                            ok = yield kit.cas(state_cell, state, INTERRUPTED_RCV)
                            if ok:
                                yield from segm.on_interrupted_cell()
                                yield from self.expand_buffer(kit)
                                outcome = CLOSED
                                break
                            continue
                        w = ReceiverWaiter.of((yield CURRENT_TASK))
                        ok = yield kit.cas(state_cell, state, w)
                        if ok:
                            # Restore the consumed capacity *before*
                            # suspending (Listing 4, line 33).
                            yield from self.expand_buffer(kit)
                            yield from self._close_recheck_receiver(w, r)
                            resumed = yield from self._park_receiver(w, segm, i)
                            outcome = SUCCESS if resumed else RESTART
                            break
                        continue
                    if (state is None or state is IN_BUFFER) and r < s:
                        # A sender is incoming => poison the cell; the
                        # poisoned buffer cell must be replaced.
                        ok = yield kit.cas(state_cell, state, BROKEN)
                        if ok:
                            stats.poisoned += 1
                            yield from self.expand_buffer(kit)
                            outcome = RESTART
                            break
                        continue
                    if state is BUFFERED:
                        yield from self.expand_buffer(kit)
                        outcome = SUCCESS
                        break
                    if state is INTERRUPTED_SEND:
                        outcome = RESTART  # expandBuffer owns the accounting
                        break
                    if state is CANCELLED:
                        outcome = RESTART
                        break
                    if isinstance(state, SenderWaiter):
                        # Suspended sender: help the (late) expandBuffer
                        # via the S_RESUMING_RCV lock.
                        ok = yield kit.cas(state_cell, state, S_RESUMING_RCV)
                        if ok:
                            resumed = yield from state.try_unpark()
                            if resumed:
                                yield kit.write(state_cell, BUFFERED)
                            else:
                                yield kit.write(state_cell, INTERRUPTED_SEND)
                        continue
                    if state is S_RESUMING_EB:
                        # expandBuffer is resuming the sender => wait.
                        yield Spin("rcv-wait-eb")
                        continue
                    raise AssertionError(
                        f"receive found impossible cell state {state!r} at {segm.id}:{i}"
                    )
                if outcome is SUCCESS:
                    # Claim the element atomically vs. a racing cancel().
                    value = yield kit.get_and_set(segm.elems[i], None)
                    yield kit.write(segm._prev, None)  # inlined clean_prev()
                    if value is None:
                        raise ChannelClosedForReceive()  # lost to cancel()
                    if self.observer is not None:
                        self.observer.receive_done(r, value)
                    stats.receives += 1
                    return value
                if outcome is CLOSED:
                    raise ChannelClosedForReceive()
                stats.rcv_restarts += 1
        finally:
            release_kit(kit)

    # ------------------------------------------------------------------
    # updCellSend (Listing 4, lines 1-25)
    # ------------------------------------------------------------------

    def _upd_cell_send(
        self, segm: Segment, i: int, s: int, mode: Any, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, Any]:
        state_cell = segm.states[i]
        elem_cell = segm.elems[i]
        read_state = read_of(state_cell)
        read_r = read_of(self.R)
        read_b = read_of(self.B)
        registrar = mode if isinstance(mode, SelectRegistrar) else None
        while True:
            state = yield read_state
            r_raw = yield read_r
            r = counter_of(r_raw)
            b = yield read_b
            if (state is None and (s < r or s < b)) or state is IN_BUFFER:
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Another clause won.  Leaving the cell EMPTY or
                        # IN_BUFFER is safe: the covering receive poisons
                        # it and retries, like any abandoned send cell.
                        yield kit.write(elem_cell, None)
                        return SELECT_LOST
                # The cell is in the buffer, or a receiver is incoming:
                # deposit the element without suspending.
                ok = yield kit.cas(state_cell, state, BUFFERED)
                if ok:
                    return SUCCESS
                continue
            if state is None and s >= b and s >= r:
                # EMPTY, outside the buffer, no receiver => suspend.
                if mode is MARK:
                    ok = yield kit.cas(state_cell, None, INTERRUPTED_SEND)
                    if ok:
                        yield kit.write(elem_cell, None)
                        # Accounting delegated to expandBuffer (see module
                        # docstring); nothing more to do here.
                        return WOULD_BLOCK
                    continue
                if registrar is not None and not registrar.claimed:
                    w = registrar.linked(SenderWaiter)
                    ok = yield kit.cas(state_cell, None, w)
                    if ok:
                        return Registered(segm, i, w)
                    continue
                w = SenderWaiter.of((yield CURRENT_TASK))  # inlined make()
                ok = yield kit.cas(state_cell, None, w)
                if ok:
                    resumed = yield from self._park_sender(w, segm, i)
                    return SUCCESS if resumed else RESTART
                continue
            if isinstance(state, ReceiverWaiter):
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Free the waiting receiver to retry elsewhere.
                        if (yield from state.try_unpark_retry()):
                            yield kit.write(state_cell, BROKEN)
                        yield kit.write(elem_cell, None)
                        return SELECT_LOST
                # Waiting receiver => rendezvous.  Inlined try_unpark()
                # fast path; the CAS-failure retry delegates back to the
                # readable helper.
                wcell = state._state
                ws = yield read_of(wcell)
                if ws is INIT:
                    ok = yield kit.cas(wcell, INIT, PERMIT)
                    if not ok:
                        ok = yield from state.try_unpark()
                elif ws is PARKED:
                    ok = yield kit.cas(wcell, PARKED, RESUMED)
                    if ok:
                        yield UnparkTask(state.task, interrupt=False)
                    else:
                        ok = yield from state.try_unpark()
                else:
                    ok = False
                if ok:
                    yield kit.write(state_cell, DONE_RCV)
                    return SUCCESS
                yield kit.write(elem_cell, None)
                return RESTART
            if state is INTERRUPTED_RCV or state is BROKEN or state is CANCELLED:
                yield kit.write(elem_cell, None)
                return RESTART
            raise AssertionError(f"send found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # updCellRcv (Listing 4, lines 26-53)
    # ------------------------------------------------------------------

    def _upd_cell_rcv(
        self, segm: Segment, i: int, r: int, mode: Any, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, Any]:
        state_cell = segm.states[i]
        read_state = read_of(state_cell)
        read_s = read_of(self.S)
        registrar = mode if isinstance(mode, SelectRegistrar) else None
        while True:
            state = yield read_state
            s_raw = yield read_s
            s = counter_of(s_raw)
            if (state is None or state is IN_BUFFER) and r >= s:
                # EMPTY (or pre-marked buffer cell) and no sender coming.
                if is_flagged(s_raw):
                    # Closed and drained.
                    ok = yield kit.cas(state_cell, state, INTERRUPTED_RCV)
                    if ok:
                        yield from segm.on_interrupted_cell()
                        yield from self.expand_buffer(kit)
                        return CLOSED
                    continue
                if mode is MARK:
                    ok = yield kit.cas(state_cell, state, INTERRUPTED_RCV)
                    if ok:
                        yield from segm.on_interrupted_cell()
                        yield from self.expand_buffer(kit)
                        return WOULD_BLOCK
                    continue
                if registrar is not None and not registrar.claimed:
                    w = registrar.linked(ReceiverWaiter)
                    ok = yield kit.cas(state_cell, state, w)
                    if ok:
                        yield from self.expand_buffer(kit)
                        yield from self._close_recheck_receiver(w, r)
                        return Registered(segm, i, w)
                    continue
                w = ReceiverWaiter.of((yield CURRENT_TASK))  # inlined make()
                ok = yield kit.cas(state_cell, state, w)
                if ok:
                    # Restore the buffer capacity this reservation consumed
                    # *before* suspending (Listing 4, line 33).
                    yield from self.expand_buffer(kit)
                    yield from self._close_recheck_receiver(w, r)
                    resumed = yield from self._park_receiver(w, segm, i)
                    return SUCCESS if resumed else RESTART
                continue
            if (state is None or state is IN_BUFFER) and r < s:
                # A sender is incoming => poison the cell and retry; the
                # poisoned buffer cell must be replaced (line 38).
                ok = yield kit.cas(state_cell, state, BROKEN)
                if ok:
                    self.stats.poisoned += 1
                    yield from self.expand_buffer(kit)
                    return RESTART
                continue
            if state is BUFFERED:
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Another clause won, but only this reservation may
                        # consume the buffered element: hand it to the
                        # on_undelivered hook and restore the capacity.
                        value = yield kit.get_and_set(segm.elems[i], None)
                        if value is not None:
                            self._select_dispose_element(value)
                        yield from self.expand_buffer(kit)
                        return SELECT_LOST
                yield from self.expand_buffer(kit)
                return SUCCESS
            if state is INTERRUPTED_SEND:
                return RESTART  # expandBuffer owns the accounting
            if state is CANCELLED:
                return RESTART
            if isinstance(state, SenderWaiter):
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Free the waiting sender to retry elsewhere; the
                        # poisoned buffer cell must be compensated, like a
                        # normal BROKEN cell (Listing 4, line 38).
                        if (yield from state.try_unpark_retry()):
                            yield kit.write(state_cell, BROKEN)
                            yield kit.get_and_set(segm.elems[i], None)
                            yield from self.expand_buffer(kit)
                        return SELECT_LOST
                # Suspended sender: help the (late) expandBuffer by
                # resuming it ourselves, via the S_RESUMING_RCV lock.
                ok = yield kit.cas(state_cell, state, S_RESUMING_RCV)
                if ok:
                    resumed = yield from state.try_unpark()
                    if resumed:
                        yield kit.write(state_cell, BUFFERED)
                    else:
                        yield kit.write(state_cell, INTERRUPTED_SEND)
                    # Loop: the next iteration dispatches on the new state.
                continue
            if state is S_RESUMING_EB:
                # expandBuffer is resuming the sender => wait (line 52).
                yield Spin("rcv-wait-eb")
                continue
            raise AssertionError(f"receive found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # expandBuffer (Listing 4, lines 54-88)
    # ------------------------------------------------------------------

    def expand_buffer(self, kit: Any = FRESH_KIT) -> Generator[Any, Any, None]:
        """Advance the logical end of the buffer by one effective cell."""

        K = self.seg_size
        anchor = self._segm_b
        read_anchor = read_of(anchor)
        faa_b = faa_of(self.B, 1)
        read_s = read_of(self.S)
        while True:
            self.stats.expansions += 1
            segm = yield read_anchor
            b = yield faa_b
            s_raw = yield read_s
            if b >= counter_of(s_raw):
                return  # not covered by any send => nothing to resume
            bid, i = divmod(b, K)
            if segm.id >= bid:
                value = yield read_of(segm._cnt)  # inlined is_removed(segm)
                if value % (K + 1) == K and value // (K + 1) == 0:
                    segm = yield from self._list.find_and_move_forward(
                        anchor, segm, bid, checked_start=True
                    )
                else:
                    cur = yield read_anchor  # inlined move_forward fast case
                    if cur.id < segm.id:
                        segm = yield from self._list.find_and_move_forward(
                            anchor, segm, bid, resume_cur=cur
                        )
            else:
                segm = yield from self._list.find_and_move_forward(anchor, segm, bid)
            if segm.id != bid:
                # The covered cell's segment was fully interrupted and
                # removed.  Such a segment can only contain cancelled
                # receivers (module docstring), for which an expansion
                # completes; help B skip the removed range wholesale.
                yield kit.cas(self.B, b + 1, segm.id * K)
                return
            done = yield from self._upd_cell_eb(segm, i, b, kit)
            if done:
                return
            self.stats.expansion_restarts += 1

    def _upd_cell_eb(
        self, segm: Segment, i: int, b: int, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, bool]:
        """updCellEB (Listing 4, lines 61-88): True = expansion finished."""

        state_cell = segm.states[i]
        read_state = read_of(state_cell)
        while True:
            state = yield read_state
            if isinstance(state, SenderWaiter):
                # A suspended sender: move its element into the buffer by
                # resuming it, via the S_RESUMING_EB lock.
                ok = yield kit.cas(state_cell, state, S_RESUMING_EB)
                if ok:
                    resumed = yield from state.try_unpark()
                    if resumed:
                        yield kit.write(state_cell, BUFFERED)
                        return True
                    yield kit.write(state_cell, INTERRUPTED_SEND)
                    yield from segm.on_interrupted_cell()  # EB owns this
                    return False
                continue
            if state is BUFFERED:
                return True  # the element is already in the buffer
            if state is INTERRUPTED_SEND:
                # The sender was cancelled: account the cell (delegated to
                # us) and restart the expansion.
                yield from segm.on_interrupted_cell()
                return False
            if state is None:
                # The sender is still coming: pre-mark the cell so it
                # will buffer without suspending.
                ok = yield kit.cas(state_cell, None, IN_BUFFER)
                if ok:
                    return True
                continue
            if (
                isinstance(state, ReceiverWaiter)
                or state is INTERRUPTED_RCV
                or state is DONE_RCV
            ):
                return True  # a receiver processed the cell; nothing to add
            if state is BROKEN:
                return True  # the poisoning receiver already re-expanded
            if state is CANCELLED:
                return True  # channel cancelled; expansion is moot
            if state is S_RESUMING_RCV:
                # A receiver is resuming the sender => wait (line 86).
                yield Spin("eb-wait-rcv")
                continue
            raise AssertionError(f"expandBuffer found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # trySend / tryReceive fast paths
    # ------------------------------------------------------------------

    def _try_send_would_block(self) -> Generator[Any, Any, bool]:
        s_raw = yield read_of(self.S)
        if is_flagged(s_raw):
            return False  # let the slow path raise ChannelClosedForSend
        r_raw = yield read_of(self.R)
        b = yield read_of(self.B)
        s = counter_of(s_raw)
        return s >= b and s >= counter_of(r_raw)

    def _try_receive_would_block(self) -> Generator[Any, Any, bool]:
        r_raw = yield read_of(self.R)
        s_raw = yield read_of(self.S)
        if is_flagged(s_raw) or is_flagged(r_raw):
            return False  # let the slow path report the closed state
        return counter_of(r_raw) >= counter_of(s_raw)

    # ------------------------------------------------------------------
    # Introspection (non-simulated)
    # ------------------------------------------------------------------

    @property
    def buffer_end_counter(self) -> int:
        return self.B.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BufferedChannel {self.name!r} C={self.capacity} S={self.sender_counter} "
            f"R={self.receiver_counter} B={self.B.value} closed={self.closed_now}>"
        )
