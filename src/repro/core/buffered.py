"""The buffered channel (§3.2, Listing 4, Figure 2).

A buffered channel of capacity ``C`` lets senders deposit up to ``C``
elements without suspending.  On top of the rendezvous machinery it adds a
third counter ``B`` marking the end of the *logical buffer* in the infinite
array: ``send(e)`` buffers its element whenever ``s < B`` (or a receiver is
already incoming), and every completed ``receive()`` synchronization —
element retrieval, suspension, or cell poisoning — restores the capacity by
calling :meth:`BufferedChannel.expand_buffer`, which advances ``B`` and
wakes the sender suspended in the newly covered cell, if any.

``B`` cannot be replaced by ``R + C`` because of cancellation: an
interrupted sender occupies a cell that must *not* count as buffer space
(§3.2's capacity-1 example).  ``expandBuffer()`` therefore *restarts* —
advancing ``B`` once more — whenever the covered cell turns out to hold an
interrupted sender.

Three-party races on one cell (sender, receiver, expandBuffer) are resolved
with the transient ``S_RESUMING_RCV`` / ``S_RESUMING_EB`` lock states: the
party resuming a suspended sender first claims the cell, and the other
party spin-waits for the outcome (``BUFFERED`` or ``INTERRUPTED_SEND``).
This is the algorithm's single *blocking* interaction (§4.2); the spin
iterations are tagged so tests can assert it never occurs elsewhere.

Segment-removal accounting (Appendix B): an ``INTERRUPTED_SEND`` cell is
counted toward its segment's removal **only by expandBuffer** — whichever
of (its own failed resumption, observing the state on its visit) happens —
because ``expandBuffer`` must still be able to *read* the interrupted state
to know the expansion needs a restart.  Cells that ``expandBuffer`` never
visits keep their segment alive, exactly like an uncancelled waiter would.
``INTERRUPTED_RCV`` cells count immediately: every phase that can later
reach a fully-removed segment treats the skip correctly (``send``/
``receive`` restart; ``expandBuffer`` completes, because a removed
segment can only contain cancelled receivers).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.cells import IntCell
from ..concurrent.ops import Cas, Faa, GetAndSet, Read, Spin, Write
from ..errors import ChannelClosedForReceive
from ..runtime.waiter import Waiter
from .base import (
    CLOSED,
    MARK,
    RESTART,
    SELECT_LOST,
    SUCCESS,
    WOULD_BLOCK,
    ChannelBase,
    Registered,
    SelectRegistrar,
    _Outcome,
)
from .closing import counter_of, is_flagged
from .segments import DEFAULT_SEGMENT_SIZE, Segment
from .states import (
    BROKEN,
    BUFFERED,
    CANCELLED,
    DONE_RCV,
    IN_BUFFER,
    INTERRUPTED_RCV,
    INTERRUPTED_SEND,
    S_RESUMING_EB,
    S_RESUMING_RCV,
    ReceiverWaiter,
    SenderWaiter,
)

__all__ = ["BufferedChannel"]


class BufferedChannel(ChannelBase):
    """FAA-based buffered channel with ``expandBuffer()`` (Listing 4)."""

    ANCHORS = 3
    COUNT_SEND_INTERRUPT_IMMEDIATELY = False  # delegated to expandBuffer

    def __init__(
        self,
        capacity: int,
        seg_size: int = DEFAULT_SEGMENT_SIZE,
        name: str = "buffered",
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        super().__init__(seg_size=seg_size, name=name)
        self.capacity = capacity
        #: End of the logical buffer; initialized to the capacity.
        self.B = IntCell(capacity, name=f"{name}.B")
        self._segm_b = self._list.make_anchor("B")

    # ------------------------------------------------------------------
    # updCellSend (Listing 4, lines 1-25)
    # ------------------------------------------------------------------

    def _upd_cell_send(
        self, segm: Segment, i: int, s: int, mode: Any
    ) -> Generator[Any, Any, Any]:
        state_cell = segm.state_cell(i)
        elem_cell = segm.elem_cell(i)
        registrar = mode if isinstance(mode, SelectRegistrar) else None
        while True:
            state = yield Read(state_cell)
            r_raw = yield Read(self.R)
            r = counter_of(r_raw)
            b = yield Read(self.B)
            if (state is None and (s < r or s < b)) or state is IN_BUFFER:
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Another clause won.  Leaving the cell EMPTY or
                        # IN_BUFFER is safe: the covering receive poisons
                        # it and retries, like any abandoned send cell.
                        yield Write(elem_cell, None)
                        return SELECT_LOST
                # The cell is in the buffer, or a receiver is incoming:
                # deposit the element without suspending.
                ok = yield Cas(state_cell, state, BUFFERED)
                if ok:
                    return SUCCESS
                continue
            if state is None and s >= b and s >= r:
                # EMPTY, outside the buffer, no receiver => suspend.
                if mode is MARK:
                    ok = yield Cas(state_cell, None, INTERRUPTED_SEND)
                    if ok:
                        yield Write(elem_cell, None)
                        # Accounting delegated to expandBuffer (see module
                        # docstring); nothing more to do here.
                        return WOULD_BLOCK
                    continue
                if registrar is not None and not registrar.claimed:
                    w = registrar.linked(SenderWaiter)
                    ok = yield Cas(state_cell, None, w)
                    if ok:
                        return Registered(segm, i, w)
                    continue
                w = yield from SenderWaiter.make()
                ok = yield Cas(state_cell, None, w)
                if ok:
                    resumed = yield from self._park_sender(w, segm, i)
                    return SUCCESS if resumed else RESTART
                continue
            if isinstance(state, ReceiverWaiter):
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Free the waiting receiver to retry elsewhere.
                        if (yield from state.try_unpark_retry()):
                            yield Write(state_cell, BROKEN)
                        yield Write(elem_cell, None)
                        return SELECT_LOST
                # Waiting receiver => rendezvous.
                ok = yield from state.try_unpark()
                if ok:
                    yield Write(state_cell, DONE_RCV)
                    return SUCCESS
                yield Write(elem_cell, None)
                return RESTART
            if state is INTERRUPTED_RCV or state is BROKEN or state is CANCELLED:
                yield Write(elem_cell, None)
                return RESTART
            raise AssertionError(f"send found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # updCellRcv (Listing 4, lines 26-53)
    # ------------------------------------------------------------------

    def _upd_cell_rcv(
        self, segm: Segment, i: int, r: int, mode: Any
    ) -> Generator[Any, Any, Any]:
        state_cell = segm.state_cell(i)
        registrar = mode if isinstance(mode, SelectRegistrar) else None
        while True:
            state = yield Read(state_cell)
            s_raw = yield Read(self.S)
            s = counter_of(s_raw)
            if (state is None or state is IN_BUFFER) and r >= s:
                # EMPTY (or pre-marked buffer cell) and no sender coming.
                if is_flagged(s_raw):
                    # Closed and drained.
                    ok = yield Cas(state_cell, state, INTERRUPTED_RCV)
                    if ok:
                        yield from segm.on_interrupted_cell()
                        yield from self.expand_buffer()
                        return CLOSED
                    continue
                if mode is MARK:
                    ok = yield Cas(state_cell, state, INTERRUPTED_RCV)
                    if ok:
                        yield from segm.on_interrupted_cell()
                        yield from self.expand_buffer()
                        return WOULD_BLOCK
                    continue
                if registrar is not None and not registrar.claimed:
                    w = registrar.linked(ReceiverWaiter)
                    ok = yield Cas(state_cell, state, w)
                    if ok:
                        yield from self.expand_buffer()
                        yield from self._close_recheck_receiver(w, r)
                        return Registered(segm, i, w)
                    continue
                w = yield from ReceiverWaiter.make()
                ok = yield Cas(state_cell, state, w)
                if ok:
                    # Restore the buffer capacity this reservation consumed
                    # *before* suspending (Listing 4, line 33).
                    yield from self.expand_buffer()
                    yield from self._close_recheck_receiver(w, r)
                    resumed = yield from self._park_receiver(w, segm, i)
                    return SUCCESS if resumed else RESTART
                continue
            if (state is None or state is IN_BUFFER) and r < s:
                # A sender is incoming => poison the cell and retry; the
                # poisoned buffer cell must be replaced (line 38).
                ok = yield Cas(state_cell, state, BROKEN)
                if ok:
                    self.stats.poisoned += 1
                    yield from self.expand_buffer()
                    return RESTART
                continue
            if state is BUFFERED:
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Another clause won, but only this reservation may
                        # consume the buffered element: hand it to the
                        # on_undelivered hook and restore the capacity.
                        value = yield GetAndSet(segm.elem_cell(i), None)
                        if value is not None:
                            self._select_dispose_element(value)
                        yield from self.expand_buffer()
                        return SELECT_LOST
                yield from self.expand_buffer()
                return SUCCESS
            if state is INTERRUPTED_SEND:
                return RESTART  # expandBuffer owns the accounting
            if state is CANCELLED:
                return RESTART
            if isinstance(state, SenderWaiter):
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Free the waiting sender to retry elsewhere; the
                        # poisoned buffer cell must be compensated, like a
                        # normal BROKEN cell (Listing 4, line 38).
                        if (yield from state.try_unpark_retry()):
                            yield Write(state_cell, BROKEN)
                            yield GetAndSet(segm.elem_cell(i), None)
                            yield from self.expand_buffer()
                        return SELECT_LOST
                # Suspended sender: help the (late) expandBuffer by
                # resuming it ourselves, via the S_RESUMING_RCV lock.
                ok = yield Cas(state_cell, state, S_RESUMING_RCV)
                if ok:
                    resumed = yield from state.try_unpark()
                    if resumed:
                        yield Write(state_cell, BUFFERED)
                    else:
                        yield Write(state_cell, INTERRUPTED_SEND)
                    # Loop: the next iteration dispatches on the new state.
                continue
            if state is S_RESUMING_EB:
                # expandBuffer is resuming the sender => wait (line 52).
                yield Spin("rcv-wait-eb")
                continue
            raise AssertionError(f"receive found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # expandBuffer (Listing 4, lines 54-88)
    # ------------------------------------------------------------------

    def expand_buffer(self) -> Generator[Any, Any, None]:
        """Advance the logical end of the buffer by one effective cell."""

        while True:
            self.stats.expansions += 1
            segm = yield Read(self._segm_b)
            b = yield Faa(self.B, 1)
            s_raw = yield Read(self.S)
            if b >= counter_of(s_raw):
                return  # not covered by any send => nothing to resume
            bid, i = divmod(b, self.seg_size)
            segm = yield from self._list.find_and_move_forward(self._segm_b, segm, bid)
            if segm.id != bid:
                # The covered cell's segment was fully interrupted and
                # removed.  Such a segment can only contain cancelled
                # receivers (module docstring), for which an expansion
                # completes; help B skip the removed range wholesale.
                yield Cas(self.B, b + 1, segm.id * self.seg_size)
                return
            done = yield from self._upd_cell_eb(segm, i, b)
            if done:
                return
            self.stats.expansion_restarts += 1

    def _upd_cell_eb(self, segm: Segment, i: int, b: int) -> Generator[Any, Any, bool]:
        """updCellEB (Listing 4, lines 61-88): True = expansion finished."""

        state_cell = segm.state_cell(i)
        while True:
            state = yield Read(state_cell)
            if isinstance(state, SenderWaiter):
                # A suspended sender: move its element into the buffer by
                # resuming it, via the S_RESUMING_EB lock.
                ok = yield Cas(state_cell, state, S_RESUMING_EB)
                if ok:
                    resumed = yield from state.try_unpark()
                    if resumed:
                        yield Write(state_cell, BUFFERED)
                        return True
                    yield Write(state_cell, INTERRUPTED_SEND)
                    yield from segm.on_interrupted_cell()  # EB owns this
                    return False
                continue
            if state is BUFFERED:
                return True  # the element is already in the buffer
            if state is INTERRUPTED_SEND:
                # The sender was cancelled: account the cell (delegated to
                # us) and restart the expansion.
                yield from segm.on_interrupted_cell()
                return False
            if state is None:
                # The sender is still coming: pre-mark the cell so it
                # will buffer without suspending.
                ok = yield Cas(state_cell, None, IN_BUFFER)
                if ok:
                    return True
                continue
            if (
                isinstance(state, ReceiverWaiter)
                or state is INTERRUPTED_RCV
                or state is DONE_RCV
            ):
                return True  # a receiver processed the cell; nothing to add
            if state is BROKEN:
                return True  # the poisoning receiver already re-expanded
            if state is CANCELLED:
                return True  # channel cancelled; expansion is moot
            if state is S_RESUMING_RCV:
                # A receiver is resuming the sender => wait (line 86).
                yield Spin("eb-wait-rcv")
                continue
            raise AssertionError(f"expandBuffer found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # trySend / tryReceive fast paths
    # ------------------------------------------------------------------

    def _try_send_would_block(self) -> Generator[Any, Any, bool]:
        s_raw = yield Read(self.S)
        if is_flagged(s_raw):
            return False  # let the slow path raise ChannelClosedForSend
        r_raw = yield Read(self.R)
        b = yield Read(self.B)
        s = counter_of(s_raw)
        return s >= b and s >= counter_of(r_raw)

    def _try_receive_would_block(self) -> Generator[Any, Any, bool]:
        r_raw = yield Read(self.R)
        s_raw = yield Read(self.S)
        if is_flagged(s_raw) or is_flagged(r_raw):
            return False  # let the slow path report the closed state
        return counter_of(r_raw) >= counter_of(s_raw)

    # ------------------------------------------------------------------
    # Introspection (non-simulated)
    # ------------------------------------------------------------------

    @property
    def buffer_end_counter(self) -> int:
        return self.B.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BufferedChannel {self.name!r} C={self.capacity} S={self.sender_counter} "
            f"R={self.receiver_counter} B={self.B.value} closed={self.closed_now}>"
        )
