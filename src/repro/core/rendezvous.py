"""The rendezvous channel (§3.1, Listing 3, Figure 1).

A rendezvous channel is a blocking queue of capacity zero: ``send(e)`` and
``receive()`` wait for each other and transfer the element directly.  The
algorithm reserves cells of the infinite array by FAA on the ``S``/``R``
counters; each cell is processed by exactly one sender and one receiver,
which synchronize on the cell's ``state`` field:

* the slower party installs its waiter and parks;
* the faster party resumes it (``DONE``) — or, in the two races where the
  counters already prove the partner is incoming but the cell is still
  EMPTY, a **sender** eliminates (``EMPTY -> BUFFERED``: the element is
  published for the incoming receiver) while a **receiver** poisons
  (``EMPTY -> BROKEN``: both parties abandon the cell and retry), the LCRQ
  trick that keeps receivers from suspending when an element is due.

Cancellation moves the cell to ``INTERRUPTED_SEND``/``INTERRUPTED_RCV`` and
counts it toward its segment's removal immediately: no later phase of a
rendezvous channel needs to re-read an interrupted cell, so a fully
interrupted segment can be physically unlinked at once (Appendix B).
"""

from __future__ import annotations

from typing import Any, Generator

from ..concurrent import ops as _ops
from ..concurrent.ops import (
    CURRENT_TASK,
    FRESH_KIT,
    UnparkTask,
    acquire_kit,
    faa_of,
    read_of,
    release_kit,
)
from ..errors import ChannelClosedForReceive, ChannelClosedForSend
from ..runtime.waiter import INIT, PARKED, PERMIT, RESUMED
from .base import (
    CLOSED,
    MARK,
    RESTART,
    SELECT_LOST,
    SUCCESS,
    WOULD_BLOCK,
    ChannelBase,
    Registered,
    SelectRegistrar,
    _Outcome,
)
from .closing import counter_of, is_flagged
from .segments import DEFAULT_SEGMENT_SIZE, Segment
from .states import (
    BROKEN,
    BUFFERED,
    CANCELLED,
    DONE,
    INTERRUPTED_RCV,
    INTERRUPTED_SEND,
    ReceiverWaiter,
    SenderWaiter,
)

__all__ = ["RendezvousChannel"]


class RendezvousChannel(ChannelBase):
    """FAA-based rendezvous channel with cancellation and closing."""

    ANCHORS = 2
    COUNT_SEND_INTERRUPT_IMMEDIATELY = True

    #: Compiled-tier kernel descriptor (PR 10): maps each fused fast-path
    #: frame to its native kernel factory in ``repro._engine``.  The
    #: dispatch wrappers consult ``ops.KERNELS`` with these names; the
    #: descriptor itself exists so tests and DESIGN.md §14 can introspect
    #: exactly which frames have a native transcription.  Eligibility
    #: beyond the frame: exact type, no observer, fast-ops on.
    KERNEL_DESCRIPTOR = {
        "_send_fused": "rz_send",
        "_receive_fused": "rz_recv",
    }

    def __init__(self, seg_size: int = DEFAULT_SEGMENT_SIZE, name: str = "rendezvous"):
        super().__init__(seg_size=seg_size, name=name)

    @property
    def capacity(self) -> int:
        return 0

    # ------------------------------------------------------------------
    # Fused fast paths (DESIGN.md §10)
    # ------------------------------------------------------------------
    #
    # The base class routes every operation through the `attempt` and
    # `updCell` sub-generators, so each suspension bubbles through four
    # generator frames.  Plain PARK-mode send()/receive() dominate every
    # workload; they are specialized here with the attempt loop and the
    # updCell state machine inlined into the public generator itself
    # (two frames end to end), with the select/MARK branches — which
    # never fire in PARK mode — dropped.  Op-for-op identical to the
    # general code, which try-ops and select clauses keep using.

    def send(self, element: Any) -> Generator[Any, Any, None]:
        """Send ``element``, suspending until buffered or received.

        Raises :class:`ChannelClosedForSend` once the channel is closed,
        and :class:`Interrupted` if the suspension is cancelled.

        Dispatch wrapper: when the compiled engine has installed its
        algorithm kernels (``ops.KERNELS``) and this operation is
        kernel-eligible, return the native kernel iterator instead of the
        fused generator — the stint loop recognizes and executes it in C,
        charging the identical op stream.  Everything else (subclasses,
        observers, the ``None`` sentinel's first-resume ``ValueError``)
        falls through to the fused generator unchanged.
        """

        kernels = _ops.KERNELS
        if (
            kernels is not None
            and element is not None
            and type(self) is RendezvousChannel
            and self.observer is None
        ):
            kern = kernels.rz_send(self, element)
            if kern is not None:
                return kern
        return self._send_fused(element)

    def _send_fused(self, element: Any) -> Generator[Any, Any, None]:
        if element is None:
            raise ValueError("channels cannot carry None (reserved sentinel)")
        kit = acquire_kit()
        try:
            K = self.seg_size
            stats = self.stats
            anchor = self._segm_s
            read_anchor = read_of(anchor)
            faa_s = faa_of(self.S, 1)
            read_r = read_of(self.R)
            while True:
                # -- _send_attempt(element, PARK, kit), inlined --------
                segm = yield read_anchor
                s_raw = yield faa_s
                stats.cells_processed += 1
                s = counter_of(s_raw)
                sid, i = divmod(s, K)
                if is_flagged(s_raw):
                    yield from self._mark_closed_send_cell(segm, sid, i)
                    raise ChannelClosedForSend()
                if segm.id >= sid:
                    value = yield read_of(segm._cnt)  # inlined is_removed(segm)
                    if value % (K + 1) == K and value // (K + 1) == 0:
                        segm = yield from self._list.find_and_move_forward(
                            anchor, segm, sid, checked_start=True
                        )
                    else:
                        cur = yield read_anchor  # inlined move_forward fast case
                        if cur.id < segm.id:
                            segm = yield from self._list.find_and_move_forward(
                                anchor, segm, sid, resume_cur=cur
                            )
                else:
                    segm = yield from self._list.find_and_move_forward(anchor, segm, sid)
                if segm.id != sid:
                    yield kit.cas(self.S, s_raw + 1, (s_raw - s) + segm.id * K)
                    stats.send_restarts += 1
                    continue
                state_cell = segm.states[i]
                elem_cell = segm.elems[i]
                yield kit.write(elem_cell, element)
                # -- _upd_cell_send(segm, i, s, PARK, kit), inlined ----
                read_state = read_of(state_cell)
                outcome = RESTART
                while True:
                    state = yield read_state
                    r_raw = yield read_r
                    r = counter_of(r_raw)
                    if state is None and s >= r:
                        # EMPTY and no receiver is coming => suspend.
                        w = SenderWaiter.of((yield CURRENT_TASK))
                        ok = yield kit.cas(state_cell, None, w)
                        if ok:
                            resumed = yield from self._park_sender(w, segm, i)
                            outcome = SUCCESS if resumed else RESTART
                            break
                        continue
                    if isinstance(state, ReceiverWaiter):
                        # Waiting receiver => try to resume it.
                        wcell = state._state
                        ws = yield read_of(wcell)
                        if ws is INIT:
                            ok = yield kit.cas(wcell, INIT, PERMIT)
                            if not ok:
                                ok = yield from state.try_unpark()
                        elif ws is PARKED:
                            ok = yield kit.cas(wcell, PARKED, RESUMED)
                            if ok:
                                yield UnparkTask(state.task, interrupt=False)
                            else:
                                ok = yield from state.try_unpark()
                        else:
                            ok = False
                        if ok:
                            yield kit.write(state_cell, DONE)
                            outcome = SUCCESS
                            break
                        # Interrupted receiver: clean our element, retry.
                        yield kit.write(elem_cell, None)
                        outcome = RESTART
                        break
                    if state is None and s < r:
                        # EMPTY but a receiver is incoming => eliminate.
                        ok = yield kit.cas(state_cell, None, BUFFERED)
                        if ok:
                            stats.eliminations += 1
                            outcome = SUCCESS
                            break
                        continue
                    if state is INTERRUPTED_RCV or state is BROKEN or state is CANCELLED:
                        yield kit.write(elem_cell, None)
                        outcome = RESTART
                        break
                    raise AssertionError(
                        f"send found impossible cell state {state!r} at {segm.id}:{i}"
                    )
                if outcome is SUCCESS:
                    if self.observer is not None:
                        self.observer.send_done(s, element)
                    yield kit.write(segm._prev, None)  # inlined clean_prev()
                    stats.sends += 1
                    return
                stats.send_restarts += 1
        finally:
            release_kit(kit)

    def receive(self) -> Generator[Any, Any, Any]:
        """Receive the next element, suspending while the channel is empty.

        Raises :class:`ChannelClosedForReceive` once the channel is both
        closed and drained (or cancelled), and :class:`Interrupted` if the
        suspension is cancelled.

        Dispatch wrapper — see :meth:`send` for the kernel contract.
        """

        kernels = _ops.KERNELS
        if (
            kernels is not None
            and type(self) is RendezvousChannel
            and self.observer is None
        ):
            kern = kernels.rz_recv(self)
            if kern is not None:
                return kern
        return self._receive_fused()

    def _receive_fused(self) -> Generator[Any, Any, Any]:
        kit = acquire_kit()
        try:
            K = self.seg_size
            stats = self.stats
            anchor = self._segm_r
            read_anchor = read_of(anchor)
            faa_r = faa_of(self.R, 1)
            read_s = read_of(self.S)
            while True:
                # -- _receive_attempt(PARK, kit), inlined --------------
                segm = yield read_anchor
                r_raw = yield faa_r
                stats.cells_processed += 1
                r = counter_of(r_raw)
                rid, i = divmod(r, K)
                if is_flagged(r_raw):  # the channel was cancelled
                    yield from self._mark_cancelled_rcv_cell(segm, rid, i)
                    raise ChannelClosedForReceive()
                if segm.id >= rid:
                    value = yield read_of(segm._cnt)  # inlined is_removed(segm)
                    if value % (K + 1) == K and value // (K + 1) == 0:
                        segm = yield from self._list.find_and_move_forward(
                            anchor, segm, rid, checked_start=True
                        )
                    else:
                        cur = yield read_anchor  # inlined move_forward fast case
                        if cur.id < segm.id:
                            segm = yield from self._list.find_and_move_forward(
                                anchor, segm, rid, resume_cur=cur
                            )
                else:
                    segm = yield from self._list.find_and_move_forward(anchor, segm, rid)
                if segm.id != rid:
                    yield kit.cas(self.R, r_raw + 1, (r_raw - r) + segm.id * K)
                    stats.rcv_restarts += 1
                    continue
                state_cell = segm.states[i]
                # -- _upd_cell_rcv(segm, i, r, PARK, kit), inlined -----
                read_state = read_of(state_cell)
                outcome = RESTART
                while True:
                    state = yield read_state
                    s_raw = yield read_s
                    s = counter_of(s_raw)
                    if state is None and r >= s:
                        # EMPTY and no sender is coming => suspend.
                        if is_flagged(s_raw):
                            # Closed and drained: S can never cover r.
                            ok = yield kit.cas(state_cell, None, INTERRUPTED_RCV)
                            if ok:
                                yield from segm.on_interrupted_cell()
                                outcome = CLOSED
                                break
                            continue
                        w = ReceiverWaiter.of((yield CURRENT_TASK))
                        ok = yield kit.cas(state_cell, None, w)
                        if ok:
                            yield from self._close_recheck_receiver(w, r)
                            resumed = yield from self._park_receiver(w, segm, i)
                            outcome = SUCCESS if resumed else RESTART
                            break
                        continue
                    if isinstance(state, SenderWaiter):
                        # Waiting sender => try to resume it.
                        wcell = state._state
                        ws = yield read_of(wcell)
                        if ws is INIT:
                            ok = yield kit.cas(wcell, INIT, PERMIT)
                            if not ok:
                                ok = yield from state.try_unpark()
                        elif ws is PARKED:
                            ok = yield kit.cas(wcell, PARKED, RESUMED)
                            if ok:
                                yield UnparkTask(state.task, interrupt=False)
                            else:
                                ok = yield from state.try_unpark()
                        else:
                            ok = False
                        if ok:
                            yield kit.write(state_cell, DONE)
                            outcome = SUCCESS
                            break
                        outcome = RESTART  # its handler cleans the cell
                        break
                    if state is None and r < s:
                        # A sender is incoming => poison the cell.
                        ok = yield kit.cas(state_cell, None, BROKEN)
                        if ok:
                            stats.poisoned += 1
                            outcome = RESTART
                            break
                        continue
                    if state is BUFFERED:
                        outcome = SUCCESS  # the sender eliminated
                        break
                    if state is INTERRUPTED_SEND or state is CANCELLED:
                        outcome = RESTART
                        break
                    raise AssertionError(
                        f"receive found impossible cell state {state!r} at {segm.id}:{i}"
                    )
                if outcome is SUCCESS:
                    # Claim the element atomically vs. a racing cancel().
                    value = yield kit.get_and_set(segm.elems[i], None)
                    yield kit.write(segm._prev, None)  # inlined clean_prev()
                    if value is None:
                        raise ChannelClosedForReceive()  # lost to cancel()
                    if self.observer is not None:
                        self.observer.receive_done(r, value)
                    stats.receives += 1
                    return value
                if outcome is CLOSED:
                    raise ChannelClosedForReceive()
                stats.rcv_restarts += 1
        finally:
            release_kit(kit)

    # ------------------------------------------------------------------
    # updCellSend (Listing 3, lines 7-32)
    # ------------------------------------------------------------------

    def _upd_cell_send(
        self, segm: Segment, i: int, s: int, mode: Any, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, Any]:
        state_cell = segm.states[i]
        elem_cell = segm.elems[i]
        read_state = read_of(state_cell)
        read_r = read_of(self.R)
        registrar = mode if isinstance(mode, SelectRegistrar) else None
        while True:
            state = yield read_state
            r_raw = yield read_r
            r = counter_of(r_raw)
            if state is None and s >= r:
                # EMPTY and no receiver is coming => suspend.
                if mode is MARK:
                    ok = yield kit.cas(state_cell, None, INTERRUPTED_SEND)
                    if ok:
                        yield kit.write(elem_cell, None)
                        yield from segm.on_interrupted_cell()
                        return WOULD_BLOCK
                    continue
                if registrar is not None and not registrar.claimed:
                    w = registrar.linked(SenderWaiter)
                    ok = yield kit.cas(state_cell, None, w)
                    if ok:
                        return Registered(segm, i, w)
                    continue
                w = SenderWaiter.of((yield CURRENT_TASK))  # inlined make()
                ok = yield kit.cas(state_cell, None, w)
                if ok:
                    resumed = yield from self._park_sender(w, segm, i)
                    return SUCCESS if resumed else RESTART
                continue
            if isinstance(state, ReceiverWaiter):
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # The select already chose another clause: free
                        # the waiting receiver to retry at a fresh cell
                        # rather than orphaning it in ours.
                        if (yield from state.try_unpark_retry()):
                            yield kit.write(state_cell, BROKEN)
                        yield kit.write(elem_cell, None)
                        return SELECT_LOST
                # Waiting receiver => try to resume it (rendezvous).
                # Inlined try_unpark() fast path; the CAS-failure retry
                # delegates back to the readable helper.
                wcell = state._state
                ws = yield read_of(wcell)
                if ws is INIT:
                    ok = yield kit.cas(wcell, INIT, PERMIT)
                    if not ok:
                        ok = yield from state.try_unpark()
                elif ws is PARKED:
                    ok = yield kit.cas(wcell, PARKED, RESUMED)
                    if ok:
                        yield UnparkTask(state.task, interrupt=False)
                    else:
                        ok = yield from state.try_unpark()
                else:
                    ok = False
                if ok:
                    yield kit.write(state_cell, DONE)
                    return SUCCESS
                # Interrupted receiver: clean our element and retry
                # elsewhere (its handler owns the cell transition).
                yield kit.write(elem_cell, None)
                return RESTART
            if state is None and s < r:
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # The incoming receiver will poison and retry.
                        yield kit.write(elem_cell, None)
                        return SELECT_LOST
                # EMPTY but a receiver is already incoming => eliminate:
                # publish the element for it (yellow path of Figure 1).
                ok = yield kit.cas(state_cell, None, BUFFERED)
                if ok:
                    self.stats.eliminations += 1
                    return SUCCESS
                continue
            if state is INTERRUPTED_RCV or state is BROKEN or state is CANCELLED:
                yield kit.write(elem_cell, None)
                return RESTART
            raise AssertionError(f"send found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # updCellRcv (Listing 3, lines 39-64)
    # ------------------------------------------------------------------

    def _upd_cell_rcv(
        self, segm: Segment, i: int, r: int, mode: Any, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, Any]:
        state_cell = segm.states[i]
        read_state = read_of(state_cell)
        read_s = read_of(self.S)
        registrar = mode if isinstance(mode, SelectRegistrar) else None
        while True:
            state = yield read_state
            s_raw = yield read_s
            s = counter_of(s_raw)
            if state is None and r >= s:
                # EMPTY and no sender is coming => suspend (or give up).
                if is_flagged(s_raw):
                    # Closed and drained: the frozen S can never cover r.
                    ok = yield kit.cas(state_cell, None, INTERRUPTED_RCV)
                    if ok:
                        yield from segm.on_interrupted_cell()
                        return CLOSED
                    continue
                if mode is MARK:
                    ok = yield kit.cas(state_cell, None, INTERRUPTED_RCV)
                    if ok:
                        yield from segm.on_interrupted_cell()
                        return WOULD_BLOCK
                    continue
                if registrar is not None and not registrar.claimed:
                    w = registrar.linked(ReceiverWaiter)
                    ok = yield kit.cas(state_cell, None, w)
                    if ok:
                        yield from self._close_recheck_receiver(w, r)
                        return Registered(segm, i, w)
                    continue
                w = ReceiverWaiter.of((yield CURRENT_TASK))  # inlined make()
                ok = yield kit.cas(state_cell, None, w)
                if ok:
                    yield from self._close_recheck_receiver(w, r)
                    resumed = yield from self._park_receiver(w, segm, i)
                    return SUCCESS if resumed else RESTART
                continue
            if isinstance(state, SenderWaiter):
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Another clause won: free the waiting sender to
                        # retry (its element travels with it).
                        if (yield from state.try_unpark_retry()):
                            yield kit.write(state_cell, BROKEN)
                            yield kit.get_and_set(segm.elems[i], None)
                        return SELECT_LOST
                # Waiting sender => try to resume it (rendezvous).
                # Inlined try_unpark() fast path; the CAS-failure retry
                # delegates back to the readable helper.
                wcell = state._state
                ws = yield read_of(wcell)
                if ws is INIT:
                    ok = yield kit.cas(wcell, INIT, PERMIT)
                    if not ok:
                        ok = yield from state.try_unpark()
                elif ws is PARKED:
                    ok = yield kit.cas(wcell, PARKED, RESUMED)
                    if ok:
                        yield UnparkTask(state.task, interrupt=False)
                    else:
                        ok = yield from state.try_unpark()
                else:
                    ok = False
                if ok:
                    yield kit.write(state_cell, DONE)
                    return SUCCESS
                return RESTART  # its handler cleans the cell and element
            if state is None and r < s:
                # EMPTY but a sender is incoming => poison the cell so
                # both parties retry (red path of Figure 1).
                ok = yield kit.cas(state_cell, None, BROKEN)
                if ok:
                    self.stats.poisoned += 1
                    return RESTART
                continue
            if state is BUFFERED:
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Another clause won, but only this reservation
                        # may consume the eliminated element: route it to
                        # the on_undelivered hook (kotlinx semantics).
                        value = yield kit.get_and_set(segm.elems[i], None)
                        if value is not None:
                            self._select_dispose_element(value)
                        return SELECT_LOST
                return SUCCESS  # the sender eliminated; take the element
            if state is INTERRUPTED_SEND or state is CANCELLED:
                return RESTART
            raise AssertionError(f"receive found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # trySend / tryReceive fast paths
    # ------------------------------------------------------------------

    def _try_send_would_block(self) -> Generator[Any, Any, bool]:
        s_raw = yield read_of(self.S)
        r_raw = yield read_of(self.R)
        if is_flagged(s_raw):
            return False  # let the slow path raise ChannelClosedForSend
        # A rendezvous trySend can only succeed against a waiting receiver.
        return counter_of(s_raw) >= counter_of(r_raw)

    def _try_receive_would_block(self) -> Generator[Any, Any, bool]:
        r_raw = yield read_of(self.R)
        s_raw = yield read_of(self.S)
        if is_flagged(s_raw) or is_flagged(r_raw):
            return False  # let the slow path report the closed state
        return counter_of(r_raw) >= counter_of(s_raw)
