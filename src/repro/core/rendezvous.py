"""The rendezvous channel (§3.1, Listing 3, Figure 1).

A rendezvous channel is a blocking queue of capacity zero: ``send(e)`` and
``receive()`` wait for each other and transfer the element directly.  The
algorithm reserves cells of the infinite array by FAA on the ``S``/``R``
counters; each cell is processed by exactly one sender and one receiver,
which synchronize on the cell's ``state`` field:

* the slower party installs its waiter and parks;
* the faster party resumes it (``DONE``) — or, in the two races where the
  counters already prove the partner is incoming but the cell is still
  EMPTY, a **sender** eliminates (``EMPTY -> BUFFERED``: the element is
  published for the incoming receiver) while a **receiver** poisons
  (``EMPTY -> BROKEN``: both parties abandon the cell and retry), the LCRQ
  trick that keeps receivers from suspending when an element is due.

Cancellation moves the cell to ``INTERRUPTED_SEND``/``INTERRUPTED_RCV`` and
counts it toward its segment's removal immediately: no later phase of a
rendezvous channel needs to re-read an interrupted cell, so a fully
interrupted segment can be physically unlinked at once (Appendix B).
"""

from __future__ import annotations

from typing import Any, Generator

from ..concurrent.ops import Cas, GetAndSet, Read, Write
from ..errors import ChannelClosedForReceive
from .base import (
    CLOSED,
    MARK,
    RESTART,
    SELECT_LOST,
    SUCCESS,
    WOULD_BLOCK,
    ChannelBase,
    Registered,
    SelectRegistrar,
    _Outcome,
)
from .closing import counter_of, is_flagged
from .segments import DEFAULT_SEGMENT_SIZE, Segment
from .states import (
    BROKEN,
    BUFFERED,
    CANCELLED,
    DONE,
    INTERRUPTED_RCV,
    INTERRUPTED_SEND,
    ReceiverWaiter,
    SenderWaiter,
)

__all__ = ["RendezvousChannel"]


class RendezvousChannel(ChannelBase):
    """FAA-based rendezvous channel with cancellation and closing."""

    ANCHORS = 2
    COUNT_SEND_INTERRUPT_IMMEDIATELY = True

    def __init__(self, seg_size: int = DEFAULT_SEGMENT_SIZE, name: str = "rendezvous"):
        super().__init__(seg_size=seg_size, name=name)

    @property
    def capacity(self) -> int:
        return 0

    # ------------------------------------------------------------------
    # updCellSend (Listing 3, lines 7-32)
    # ------------------------------------------------------------------

    def _upd_cell_send(
        self, segm: Segment, i: int, s: int, mode: Any
    ) -> Generator[Any, Any, Any]:
        state_cell = segm.state_cell(i)
        elem_cell = segm.elem_cell(i)
        registrar = mode if isinstance(mode, SelectRegistrar) else None
        while True:
            state = yield Read(state_cell)
            r_raw = yield Read(self.R)
            r = counter_of(r_raw)
            if state is None and s >= r:
                # EMPTY and no receiver is coming => suspend.
                if mode is MARK:
                    ok = yield Cas(state_cell, None, INTERRUPTED_SEND)
                    if ok:
                        yield Write(elem_cell, None)
                        yield from segm.on_interrupted_cell()
                        return WOULD_BLOCK
                    continue
                if registrar is not None and not registrar.claimed:
                    w = registrar.linked(SenderWaiter)
                    ok = yield Cas(state_cell, None, w)
                    if ok:
                        return Registered(segm, i, w)
                    continue
                w = yield from SenderWaiter.make()
                ok = yield Cas(state_cell, None, w)
                if ok:
                    resumed = yield from self._park_sender(w, segm, i)
                    return SUCCESS if resumed else RESTART
                continue
            if isinstance(state, ReceiverWaiter):
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # The select already chose another clause: free
                        # the waiting receiver to retry at a fresh cell
                        # rather than orphaning it in ours.
                        if (yield from state.try_unpark_retry()):
                            yield Write(state_cell, BROKEN)
                        yield Write(elem_cell, None)
                        return SELECT_LOST
                # Waiting receiver => try to resume it (rendezvous).
                ok = yield from state.try_unpark()
                if ok:
                    yield Write(state_cell, DONE)
                    return SUCCESS
                # Interrupted receiver: clean our element and retry
                # elsewhere (its handler owns the cell transition).
                yield Write(elem_cell, None)
                return RESTART
            if state is None and s < r:
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # The incoming receiver will poison and retry.
                        yield Write(elem_cell, None)
                        return SELECT_LOST
                # EMPTY but a receiver is already incoming => eliminate:
                # publish the element for it (yellow path of Figure 1).
                ok = yield Cas(state_cell, None, BUFFERED)
                if ok:
                    self.stats.eliminations += 1
                    return SUCCESS
                continue
            if state is INTERRUPTED_RCV or state is BROKEN or state is CANCELLED:
                yield Write(elem_cell, None)
                return RESTART
            raise AssertionError(f"send found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # updCellRcv (Listing 3, lines 39-64)
    # ------------------------------------------------------------------

    def _upd_cell_rcv(
        self, segm: Segment, i: int, r: int, mode: Any
    ) -> Generator[Any, Any, Any]:
        state_cell = segm.state_cell(i)
        registrar = mode if isinstance(mode, SelectRegistrar) else None
        while True:
            state = yield Read(state_cell)
            s_raw = yield Read(self.S)
            s = counter_of(s_raw)
            if state is None and r >= s:
                # EMPTY and no sender is coming => suspend (or give up).
                if is_flagged(s_raw):
                    # Closed and drained: the frozen S can never cover r.
                    ok = yield Cas(state_cell, None, INTERRUPTED_RCV)
                    if ok:
                        yield from segm.on_interrupted_cell()
                        return CLOSED
                    continue
                if mode is MARK:
                    ok = yield Cas(state_cell, None, INTERRUPTED_RCV)
                    if ok:
                        yield from segm.on_interrupted_cell()
                        return WOULD_BLOCK
                    continue
                if registrar is not None and not registrar.claimed:
                    w = registrar.linked(ReceiverWaiter)
                    ok = yield Cas(state_cell, None, w)
                    if ok:
                        yield from self._close_recheck_receiver(w, r)
                        return Registered(segm, i, w)
                    continue
                w = yield from ReceiverWaiter.make()
                ok = yield Cas(state_cell, None, w)
                if ok:
                    yield from self._close_recheck_receiver(w, r)
                    resumed = yield from self._park_receiver(w, segm, i)
                    return SUCCESS if resumed else RESTART
                continue
            if isinstance(state, SenderWaiter):
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Another clause won: free the waiting sender to
                        # retry (its element travels with it).
                        if (yield from state.try_unpark_retry()):
                            yield Write(state_cell, BROKEN)
                            yield GetAndSet(segm.elem_cell(i), None)
                        return SELECT_LOST
                # Waiting sender => try to resume it (rendezvous).
                ok = yield from state.try_unpark()
                if ok:
                    yield Write(state_cell, DONE)
                    return SUCCESS
                return RESTART  # its handler cleans the cell and element
            if state is None and r < s:
                # EMPTY but a sender is incoming => poison the cell so
                # both parties retry (red path of Figure 1).
                ok = yield Cas(state_cell, None, BROKEN)
                if ok:
                    self.stats.poisoned += 1
                    return RESTART
                continue
            if state is BUFFERED:
                if registrar is not None and not registrar.claimed:
                    if not (yield from registrar.claim()):
                        # Another clause won, but only this reservation
                        # may consume the eliminated element: route it to
                        # the on_undelivered hook (kotlinx semantics).
                        value = yield GetAndSet(segm.elem_cell(i), None)
                        if value is not None:
                            self._select_dispose_element(value)
                        return SELECT_LOST
                return SUCCESS  # the sender eliminated; take the element
            if state is INTERRUPTED_SEND or state is CANCELLED:
                return RESTART
            raise AssertionError(f"receive found impossible cell state {state!r} at {segm.id}:{i}")

    # ------------------------------------------------------------------
    # trySend / tryReceive fast paths
    # ------------------------------------------------------------------

    def _try_send_would_block(self) -> Generator[Any, Any, bool]:
        s_raw = yield Read(self.S)
        r_raw = yield Read(self.R)
        if is_flagged(s_raw):
            return False  # let the slow path raise ChannelClosedForSend
        # A rendezvous trySend can only succeed against a waiting receiver.
        return counter_of(s_raw) >= counter_of(r_raw)

    def _try_receive_would_block(self) -> Generator[Any, Any, bool]:
        r_raw = yield Read(self.R)
        s_raw = yield Read(self.S)
        if is_flagged(s_raw) or is_flagged(r_raw):
            return False  # let the slow path report the closed state
        return counter_of(r_raw) >= counter_of(s_raw)
