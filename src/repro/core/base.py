"""Shared machinery of the rendezvous and buffered channel algorithms.

Both channels share the outer operation structure of Listing 5 —

1. read the operation's segment anchor, then ``FAA`` the counter to reserve
   a cell (the linearization point when the following cell update succeeds);
2. fail fast if the counter's close/cancel flag is set (after marking the
   reserved cell so its life-cycle stays sound);
3. locate the cell's segment with ``findAndMoveForward``; if the segment was
   physically removed, skip the whole interrupted range by CASing the
   counter forward and restart;
4. run the algorithm-specific cell update (``updCellSend``/``updCellRcv``,
   supplied by the subclass per Listings 3 and 4), restarting the operation
   when the cell turned out to be unusable —

plus the full-semantics extension the paper's production version adds
(§5): ``close()``, ``cancel()``, ``trySend``/``tryReceive``.  Non-blocking
attempts that *would* suspend instead mark their reserved cell
``INTERRUPTED_SEND``/``INTERRUPTED_RCV`` — exactly as if they had suspended
and been cancelled instantly — which is how the Kotlin implementation keeps
try-operations linearizable without a counter rollback.

Elements must not be ``None``: the cancellation protocol uses an atomic
``GetAndSet(elem, None)`` to resolve the receive-vs-cancel race, so ``None``
is reserved as "already taken" (mirrors Kotlin channels boxing ``null``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.cells import IntCell, RefCell
from ..concurrent.ops import (
    FRESH_KIT,
    Cas,
    Faa,
    GetAndSet,
    Read,
    Write,
    acquire_kit,
    faa_of,
    read_of,
    release_kit,
)
from ..errors import ChannelClosedForReceive, ChannelClosedForSend, Interrupted, RetryWakeup
from ..runtime.waiter import Waiter
from .closing import CLOSE_BIT, counter_of, is_flagged
from .segments import DEFAULT_SEGMENT_SIZE, Segment, SegmentList
from .states import (
    BROKEN,
    BUFFERED,
    CANCELLED,
    CellState,
    INTERRUPTED_RCV,
    INTERRUPTED_SEND,
    ReceiverWaiter,
    SenderWaiter,
)
from .stats import ChannelStats

__all__ = ["ChannelBase", "SUCCESS", "RESTART", "WOULD_BLOCK", "CLOSED"]


class _Outcome:
    """Named outcome of one cell update (internal protocol)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


#: The operation finished in this cell.
SUCCESS = _Outcome("SUCCESS")
#: The cell is unusable; reserve a fresh one and retry.
RESTART = _Outcome("RESTART")
#: A non-blocking attempt would have to suspend (cell already marked).
WOULD_BLOCK = _Outcome("WOULD_BLOCK")
#: The channel is closed and drained (receive side).
CLOSED = _Outcome("CLOSED")
#: A select registration lost: another clause of the same select won.
SELECT_LOST = _Outcome("SELECT_LOST")


class _Mode:
    """Suspension mode of one attempt (internal protocol)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


#: Normal blocking operation: install a fresh waiter and park.
PARK = _Mode("PARK")
#: Non-blocking try-op: mark the cell INTERRUPTED instead of suspending.
MARK = _Mode("MARK")


class Registered:
    """Outcome of a select-mode attempt that installed a clause waiter."""

    __slots__ = ("segm", "index", "waiter")

    def __init__(self, segm: Segment, index: int, waiter: Waiter):
        self.segm = segm
        self.index = index
        self.waiter = waiter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registered({self.segm.id}:{self.index})"


class SelectRegistrar:
    """Shared decision state of one ``select`` (§5 family extension).

    All clause waiters are *linked*: they share the primary waiter's
    state cell, so the first resumption/interruption anywhere decides the
    whole select atomically (the ``tryUnpark`` CAS is the commit point).

    ``claim()`` is the kotlinx ``trySelect`` analogue: an attempt that can
    complete a clause *immediately* must first claim the shared state
    (INIT → PERMIT); losing the claim means another clause already won.
    Once claimed, the select is committed to the current clause — if that
    clause subsequently has to retry into a suspension, it degrades into
    a plain blocking operation on that clause (``claimed`` switches the
    attempt to PARK behaviour), which is a legal linearization of select.
    """

    __slots__ = ("primary", "claimed")

    def __init__(self, primary: Waiter):
        self.primary = primary
        self.claimed = False

    def linked(self, kind_cls: type) -> Waiter:
        """A clause waiter of the given kind sharing the primary's state."""

        waiter = kind_cls.__new__(kind_cls)
        waiter.task = self.primary.task
        waiter._state = self.primary._state  # the shared decision cell
        waiter.handler = None
        waiter.wid = self.primary.wid
        waiter.interrupt_cause = None
        return waiter

    def claim(self) -> Generator[Any, Any, bool]:
        """Commit the select to the calling clause; False if already lost."""

        from ..runtime.waiter import INIT, PERMIT

        if self.claimed:
            return True
        ok = yield Cas(self.primary._state, INIT, PERMIT)
        if ok:
            self.claimed = True
        return ok


class ChannelBase:
    """Common state and operation drivers; subclasses define cell updates."""

    #: Number of segment anchors (2 = S,R for rendezvous; 3 adds B).
    ANCHORS = 2
    #: Whether an interrupted *sender* cell counts toward segment removal
    #: immediately (rendezvous) or is delegated to ``expandBuffer()``
    #: (buffered; the Appendix B rule — EB must still be able to read the
    #: cell's interrupted state, so its segment must stay alive until EB
    #: passes).
    COUNT_SEND_INTERRUPT_IMMEDIATELY = True

    def __init__(self, seg_size: int = DEFAULT_SEGMENT_SIZE, name: str = "chan"):
        self.name = name
        self._list = SegmentList(seg_size, anchors=self.ANCHORS, name=name)
        self.seg_size = seg_size
        self._segm_s = self._list.make_anchor("S")
        self._segm_r = self._list.make_anchor("R")
        #: Total send / receive reservations ever made (packed counters).
        self.S = IntCell(0, name=f"{name}.S")
        self.R = IntCell(0, name=f"{name}.R")
        self.stats = ChannelStats()
        self._cancelled = False
        #: Optional verification observer with ``send_done(cell, elem)`` /
        #: ``receive_done(cell, value)`` callbacks.  Plain Python calls in
        #: the completing task's atomic window — no simulated ops, so
        #: attaching an observer cannot perturb the algorithm.
        self.observer: Any = None
        #: Optional hook receiving elements a losing select clause had to
        #: consume (kotlinx's ``onUndeliveredElement``); see
        #: :meth:`_select_dispose_element`.
        self.on_undelivered: Any = None

    # ------------------------------------------------------------------
    # Subclass protocol
    # ------------------------------------------------------------------

    def _upd_cell_send(
        self, segm: Segment, i: int, s: int, mode: Any, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, Any]:
        raise NotImplementedError

    def _upd_cell_rcv(
        self, segm: Segment, i: int, r: int, mode: Any, kit: Any = FRESH_KIT
    ) -> Generator[Any, Any, Any]:
        raise NotImplementedError

    def _try_send_would_block(self) -> Generator[Any, Any, bool]:
        """Cheap snapshot check used to avoid burning cells in trySend."""
        raise NotImplementedError

    def _try_receive_would_block(self) -> Generator[Any, Any, bool]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Public operations (generator API; drive with a scheduler/adapter)
    # ------------------------------------------------------------------

    def send(self, element: Any) -> Generator[Any, Any, None]:
        """Send ``element``, suspending until buffered or received.

        Raises :class:`ChannelClosedForSend` once the channel is closed,
        and :class:`Interrupted` if the suspension is cancelled.
        """

        if element is None:
            raise ValueError("channels cannot carry None (reserved sentinel)")
        kit = acquire_kit()
        try:
            while True:
                outcome = yield from self._send_attempt(element, PARK, kit)
                if outcome is SUCCESS:
                    self.stats.sends += 1
                    return
                self.stats.send_restarts += 1
        finally:
            release_kit(kit)

    def try_send(self, element: Any) -> Generator[Any, Any, bool]:
        """Non-blocking send; ``False`` when it would have to suspend.

        Raises :class:`ChannelClosedForSend` on a closed channel.
        """

        if element is None:
            raise ValueError("channels cannot carry None (reserved sentinel)")
        kit = acquire_kit()
        try:
            while True:
                if (yield from self._try_send_would_block()):
                    self.stats.try_send_failures += 1
                    return False
                outcome = yield from self._send_attempt(element, MARK, kit)
                if outcome is SUCCESS:
                    self.stats.sends += 1
                    return True
                if outcome is WOULD_BLOCK:
                    self.stats.try_send_failures += 1
                    return False
                self.stats.send_restarts += 1
        finally:
            release_kit(kit)

    def receive(self) -> Generator[Any, Any, Any]:
        """Receive the next element, suspending while the channel is empty.

        Raises :class:`ChannelClosedForReceive` once the channel is both
        closed and drained (or cancelled), and :class:`Interrupted` if the
        suspension is cancelled.
        """

        kit = acquire_kit()
        try:
            while True:
                outcome, value = yield from self._receive_attempt(PARK, kit)
                if outcome is SUCCESS:
                    self.stats.receives += 1
                    return value
                if outcome is CLOSED:
                    raise ChannelClosedForReceive()
                self.stats.rcv_restarts += 1
        finally:
            release_kit(kit)

    def try_receive(self) -> Generator[Any, Any, tuple[bool, Any]]:
        """Non-blocking receive; returns ``(ok, element_or_None)``.

        Raises :class:`ChannelClosedForReceive` when closed and drained.
        """

        kit = acquire_kit()
        try:
            while True:
                if (yield from self._try_receive_would_block()):
                    self.stats.try_receive_failures += 1
                    return (False, None)
                outcome, value = yield from self._receive_attempt(MARK, kit)
                if outcome is SUCCESS:
                    self.stats.receives += 1
                    return (True, value)
                if outcome is WOULD_BLOCK:
                    self.stats.try_receive_failures += 1
                    return (False, None)
                if outcome is CLOSED:
                    raise ChannelClosedForReceive()
                self.stats.rcv_restarts += 1
        finally:
            release_kit(kit)

    def receive_catching(self) -> Generator[Any, Any, tuple[bool, Any]]:
        """Like :meth:`receive` but returns ``(False, None)`` when closed."""

        try:
            value = yield from self.receive()
        except ChannelClosedForReceive:
            return (False, None)
        return (True, value)

    # ------------------------------------------------------------------
    # Select support (driven by repro.core.select)
    # ------------------------------------------------------------------

    def select_send(self, registrar: "SelectRegistrar", element: Any) -> Generator[Any, Any, tuple[str, Any]]:
        """One send clause of a select: complete, register, or report loss.

        Returns ``("done", None)`` (immediate win — the registrar is
        claimed), ``("registered", Registered)``, or ``("lost", None)``.
        Raises :class:`ChannelClosedForSend` like :meth:`send`.
        """

        if element is None:
            raise ValueError("channels cannot carry None (reserved sentinel)")
        kit = acquire_kit()
        try:
            while True:
                outcome = yield from self._send_attempt(element, registrar, kit)
                if outcome is SUCCESS:
                    self.stats.sends += 1
                    return ("done", None)
                if isinstance(outcome, Registered):
                    return ("registered", outcome)
                if outcome is SELECT_LOST:
                    return ("lost", None)
                self.stats.send_restarts += 1
        finally:
            release_kit(kit)

    def select_receive(self, registrar: "SelectRegistrar") -> Generator[Any, Any, tuple[str, Any]]:
        """One receive clause of a select (see :meth:`select_send`).

        Additionally returns ``("closed", None)`` when the channel is
        closed and drained.
        """

        kit = acquire_kit()
        try:
            while True:
                outcome, value = yield from self._receive_attempt(registrar, kit)
                if outcome is SUCCESS:
                    self.stats.receives += 1
                    return ("done", value)
                if isinstance(outcome, Registered):
                    return ("registered", outcome)
                if outcome is SELECT_LOST:
                    return ("lost", None)
                if outcome is CLOSED:
                    return ("closed", None)
                self.stats.rcv_restarts += 1
        finally:
            release_kit(kit)

    def select_cleanup(self, reg: Registered, is_sender: bool) -> Generator[Any, Any, None]:
        """Neutralize a losing registration's cell (INTERRUPTED_*).

        Idempotent: if a racing resumer already transitioned the cell
        (its failed ``tryUnpark`` wrote ``INTERRUPTED_SEND``), only the
        element cleanup remains.
        """

        state_cell = reg.segm.state_cell(reg.index)
        yield GetAndSet(reg.segm.elem_cell(reg.index), None)
        target = INTERRUPTED_SEND if is_sender else INTERRUPTED_RCV
        ok = yield Cas(state_cell, reg.waiter, target)
        if ok:
            if is_sender:
                if self.COUNT_SEND_INTERRUPT_IMMEDIATELY:
                    yield from reg.segm.on_interrupted_cell()
            else:
                yield from reg.segm.on_interrupted_cell()

    def _select_dispose_element(self, element: Any) -> None:
        """Route an element a losing receive clause had to consume.

        Mirrors kotlinx's ``onUndeliveredElement``: set ``on_undelivered``
        on the channel to reclaim such elements; otherwise they are
        counted and dropped.
        """

        hook = self.on_undelivered
        if hook is not None:
            hook(element)
        else:
            self.stats.select_undelivered += 1

    # ------------------------------------------------------------------
    # One reservation attempt (the Listing 5 skeleton)
    # ------------------------------------------------------------------

    # The attempt drivers inline the uncontended ``findAndMoveForward``
    # case (DESIGN.md §10): when the anchor's segment already covers the
    # reserved cell and is alive, the whole locate-and-advance step is
    # two reads emitted from *this* frame; every other case hands the
    # already-emitted prefix to the flat
    # :meth:`SegmentList.find_and_move_forward` via its resume-state
    # parameters, so no op is ever re-emitted.

    def _send_attempt(self, element: Any, mode: Any, kit: Any = FRESH_KIT) -> Generator[Any, Any, Any]:
        K = self.seg_size
        anchor = self._segm_s
        segm = yield read_of(anchor)
        s_raw = yield faa_of(self.S, 1)
        self.stats.cells_processed += 1
        s = counter_of(s_raw)
        sid, i = divmod(s, K)
        if is_flagged(s_raw):
            yield from self._mark_closed_send_cell(segm, sid, i)
            raise ChannelClosedForSend()
        if segm.id >= sid:
            value = yield read_of(segm._cnt)  # inlined is_removed(segm)
            if value % (K + 1) == K and value // (K + 1) == 0:
                segm = yield from self._list.find_and_move_forward(
                    anchor, segm, sid, checked_start=True
                )
            else:
                cur = yield read_of(anchor)  # inlined move_forward fast case
                if cur.id < segm.id:
                    segm = yield from self._list.find_and_move_forward(
                        anchor, segm, sid, resume_cur=cur
                    )
        else:
            segm = yield from self._list.find_and_move_forward(anchor, segm, sid)
        if segm.id != sid:
            # The whole range up to segm.id*K was interrupted and removed;
            # help the counter skip it (Listing 5, line 6).
            yield kit.cas(self.S, s_raw + 1, (s_raw - s) + segm.id * K)
            return RESTART
        yield kit.write(segm.elems[i], element)
        outcome = yield from self._upd_cell_send(segm, i, s, mode, kit)
        if outcome is SUCCESS:
            if self.observer is not None:
                self.observer.send_done(s, element)
            yield kit.write(segm._prev, None)  # inlined clean_prev()
        return outcome

    def _receive_attempt(self, mode: Any, kit: Any = FRESH_KIT) -> Generator[Any, Any, tuple[Any, Any]]:
        K = self.seg_size
        anchor = self._segm_r
        segm = yield read_of(anchor)
        r_raw = yield faa_of(self.R, 1)
        self.stats.cells_processed += 1
        r = counter_of(r_raw)
        rid, i = divmod(r, K)
        if is_flagged(r_raw):  # the channel was cancelled
            yield from self._mark_cancelled_rcv_cell(segm, rid, i)
            return (CLOSED, None)
        if segm.id >= rid:
            value = yield read_of(segm._cnt)  # inlined is_removed(segm)
            if value % (K + 1) == K and value // (K + 1) == 0:
                segm = yield from self._list.find_and_move_forward(
                    anchor, segm, rid, checked_start=True
                )
            else:
                cur = yield read_of(anchor)  # inlined move_forward fast case
                if cur.id < segm.id:
                    segm = yield from self._list.find_and_move_forward(
                        anchor, segm, rid, resume_cur=cur
                    )
        else:
            segm = yield from self._list.find_and_move_forward(anchor, segm, rid)
        if segm.id != rid:
            yield kit.cas(self.R, r_raw + 1, (r_raw - r) + segm.id * K)
            return (RESTART, None)
        outcome = yield from self._upd_cell_rcv(segm, i, r, mode, kit)
        if outcome is not SUCCESS:
            return (outcome, None)
        # Claim the element atomically: a concurrent cancel() discards
        # buffered elements, and the GetAndSet decides who got this one.
        value = yield kit.get_and_set(segm.elems[i], None)
        yield kit.write(segm._prev, None)  # inlined clean_prev()
        if value is None:
            return (CLOSED, None)  # lost the race against cancel()
        if self.observer is not None:
            self.observer.receive_done(r, value)
        return (SUCCESS, value)

    # ------------------------------------------------------------------
    # Suspension helpers
    # ------------------------------------------------------------------

    def _send_abort_handler(self, w: SenderWaiter, segm: Segment, i: int) -> Any:
        """Build the sender's cancellation handler for ``segm[i]``.

        A separate factory (rather than a closure inline in
        :meth:`_park_sender`) so the compiled kernel tier can install the
        *same* handler object on the waiter it parks natively — external
        cancellers call ``w.handler()`` and must get this generator.
        """

        state_cell = segm.state_cell(i)
        elem_cell = segm.elem_cell(i)
        count_now = self.COUNT_SEND_INTERRUPT_IMMEDIATELY

        def on_interrupt() -> Generator[Any, Any, None]:
            # Clean the element first (Listing 4, lines 90-92), then move
            # the cell to INTERRUPTED_SEND -- with a CAS, because a
            # concurrent resumer may have locked the cell in S_RESUMING_*;
            # in that case the resumer's failed tryUnpark performs the
            # transition (and, in the buffered channel, the accounting).
            yield Write(elem_cell, None)
            ok = yield Cas(state_cell, w, INTERRUPTED_SEND)
            if ok and count_now:
                yield from segm.on_interrupted_cell()

        return on_interrupt

    def _rcv_abort_handler(self, w: ReceiverWaiter, segm: Segment, i: int) -> Any:
        """Build the receiver's cancellation handler for ``segm[i]``."""

        state_cell = segm.state_cell(i)
        elem_cell = segm.elem_cell(i)

        def on_interrupt() -> Generator[Any, Any, None]:
            yield Write(elem_cell, None)
            ok = yield Cas(state_cell, w, INTERRUPTED_RCV)
            if ok:
                # Interrupted receivers always count immediately: every
                # phase that may later read this cell treats a removed
                # segment as "all cancelled receivers" correctly.
                yield from segm.on_interrupted_cell()

        return on_interrupt

    def _park_sender(self, w: SenderWaiter, segm: Segment, i: int) -> Generator[Any, Any, bool]:
        """Park a sender installed in ``segm[i]``; clean the cell on cancel.

        Returns ``True`` on a normal resumption; ``False`` when woken with
        the retry signal (a losing select clause neutralized our cell —
        the caller restarts at a fresh one).
        """

        on_interrupt = self._send_abort_handler(w, segm, i)
        self.stats.send_suspends += 1
        try:
            yield from w.park(on_interrupt)
            return True
        except RetryWakeup:
            return False
        except Interrupted:
            self.stats.send_interrupts += 1
            if w.interrupt_cause is not None:
                raise w.interrupt_cause from None
            raise

    def _park_receiver(self, w: ReceiverWaiter, segm: Segment, i: int) -> Generator[Any, Any, bool]:
        """Park a receiver installed in ``segm[i]``; clean the cell on cancel.

        Return protocol as for :meth:`_park_sender`.
        """

        on_interrupt = self._rcv_abort_handler(w, segm, i)
        self.stats.rcv_suspends += 1
        try:
            yield from w.park(on_interrupt)
            return True
        except RetryWakeup:
            return False
        except Interrupted:
            self.stats.rcv_interrupts += 1
            if w.interrupt_cause is not None:
                raise w.interrupt_cause from None
            raise

    def _close_recheck_receiver(self, w: ReceiverWaiter, r: int) -> Generator[Any, Any, None]:
        """Post-install close re-check (the receiver side of the handshake).

        ``close()`` first publishes the flag on ``S`` and then cancels the
        receivers it can see; a receiver that installed concurrently might
        be missed by that walk, so after installing it re-reads ``S`` and
        cancels itself if the channel can no longer deliver to its cell.
        Self-interruption loses gracefully to a concurrent resumption.
        """

        s_raw = yield Read(self.S)
        if is_flagged(s_raw) and r >= counter_of(s_raw):
            yield from w.interrupt(cause=ChannelClosedForReceive())

    # ------------------------------------------------------------------
    # Failed-reservation cell marking
    # ------------------------------------------------------------------

    def _mark_closed_send_cell(self, start: Segment, sid: int, i: int) -> Generator[Any, Any, None]:
        """A send observed the close flag: neutralize its reserved cell.

        The cell is moved to ``INTERRUPTED_SEND`` (as an instantly
        cancelled sender) so receivers and ``expandBuffer()`` skip it.

        If a *receiver* already waits there, it can only ever be matched
        by this very send (one sender per cell) — and this send is
        aborting, its FAA having inflated the counter past the receiver's
        index so neither the closer's walk nor the receiver's own
        re-check can see it anymore.  The failing send must therefore
        cancel it with the close cause itself (kotlinx does the same).
        """

        segm = yield from self._list.find_segment(start, sid)
        if segm.id != sid:
            return  # the whole segment is gone already
        state_cell = segm.state_cell(i)
        while True:
            state = yield Read(state_cell)
            if state is None:
                ok = yield Cas(state_cell, None, INTERRUPTED_SEND)
                if ok:
                    if self.COUNT_SEND_INTERRUPT_IMMEDIATELY:
                        yield from segm.on_interrupted_cell()
                    return
                continue
            waiter = self._extract_receiver_waiter(state)
            if waiter is not None:
                yield from waiter.interrupt(cause=ChannelClosedForReceive())
            return  # its handler (or a racing resumer) owns the cell now

    def _mark_cancelled_rcv_cell(self, start: Segment, rid: int, i: int) -> Generator[Any, Any, None]:
        """A receive observed the cancel flag: neutralize its reserved cell."""

        segm = yield from self._list.find_segment(start, rid)
        if segm.id != rid:
            return
        state_cell = segm.state_cell(i)
        while True:
            state = yield Read(state_cell)
            if state is None:
                ok = yield Cas(state_cell, None, INTERRUPTED_RCV)
                if ok:
                    yield from segm.on_interrupted_cell()
                    return
                continue
            return

    # ------------------------------------------------------------------
    # Close / cancel (§5 "full channel semantics")
    # ------------------------------------------------------------------

    def close(self) -> Generator[Any, Any, bool]:
        """Close the channel for sending; ``True`` iff this call closed it.

        Buffered elements (and already-suspended senders) remain
        receivable; waiting receivers beyond the frozen send counter are
        cancelled with :class:`ChannelClosedForReceive`.
        """

        while True:
            s_raw = yield Read(self.S)
            if is_flagged(s_raw):
                return False
            ok = yield Cas(self.S, s_raw, s_raw | CLOSE_BIT)
            if ok:
                yield from self._cancel_suspended_receivers(counter_of(s_raw))
                return True

    def cancel(self) -> Generator[Any, Any, bool]:
        """Close *and* discard: buffered elements are dropped, all waiters
        (both directions) are cancelled, receivers fail immediately."""

        newly = yield from self.close()
        self._cancelled = True
        while True:
            r_raw = yield Read(self.R)
            if is_flagged(r_raw):
                break
            ok = yield Cas(self.R, r_raw, r_raw | CLOSE_BIT)
            if ok:
                break
        yield from self._discard_everything()
        return newly

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def is_closed_for_send(self) -> Generator[Any, Any, bool]:
        raw = yield Read(self.S)
        return is_flagged(raw)

    def _cancel_suspended_receivers(self, s_close: int) -> Generator[Any, Any, None]:
        """Cancel receivers waiting in cells the frozen S will never cover.

        Walks the segment list; receivers that install concurrently with
        the walk observe the close flag in their own post-install
        re-check, so no waiter is missed (a Dekker-style handshake).
        """

        K = self.seg_size
        cause_factory = ChannelClosedForReceive
        segm: Optional[Segment] = self._list.first
        while segm is not None:
            if (segm.id + 1) * K > s_close:
                first_i = max(0, s_close - segm.id * K)
                for i in range(first_i, K):
                    state = yield Read(segm.state_cell(i))
                    waiter = self._extract_receiver_waiter(state)
                    if waiter is not None:
                        yield from waiter.interrupt(cause=cause_factory())
            segm = yield Read(segm._next)

    def _extract_receiver_waiter(self, state: Any) -> Optional[Waiter]:
        """The receiver waiter inside a cell state, if any (hookable)."""

        if isinstance(state, ReceiverWaiter):
            return state
        return None

    def _discard_everything(self) -> Generator[Any, Any, None]:
        """Cancel all waiters and drop all buffered elements (cancel())."""

        segm: Optional[Segment] = self._list.first
        while segm is not None:
            for i in range(self.seg_size):
                state_cell = segm.state_cell(i)
                while True:
                    state = yield Read(state_cell)
                    if isinstance(state, SenderWaiter):
                        yield from state.interrupt(cause=ChannelClosedForSend())
                        break
                    if isinstance(state, ReceiverWaiter):
                        yield from state.interrupt(cause=ChannelClosedForReceive())
                        break
                    if state is BUFFERED:
                        ok = yield Cas(state_cell, BUFFERED, CANCELLED)
                        if ok:
                            yield GetAndSet(segm.elem_cell(i), None)
                            break
                        continue
                    other = yield from self._discard_other_state(segm, i, state)
                    if other:
                        break
            segm = yield Read(segm._next)

    def _discard_other_state(self, segm: Segment, i: int, state: Any) -> Generator[Any, Any, bool]:
        """Cancel-walk hook for subclass-specific states; True = done."""

        return True
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Introspection (non-simulated; for tests between scheduler steps)
    # ------------------------------------------------------------------

    @property
    def sender_counter(self) -> int:
        return counter_of(self.S.value)

    @property
    def receiver_counter(self) -> int:
        return counter_of(self.R.value)

    @property
    def closed_now(self) -> bool:
        return is_flagged(self.S.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} S={self.sender_counter} "
            f"R={self.receiver_counter} closed={self.closed_now}>"
        )
