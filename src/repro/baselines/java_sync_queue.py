"""The fair synchronous queue of Scherer, Lea & Scott [21] (Java 6+).

``java.util.concurrent.SynchronousQueue`` in fair mode: a *dual*
Michael–Scott queue whose nodes are either **data** (waiting senders) or
**requests** (waiting receivers).  An arriving operation either enqueues
itself at the tail — when the queue is empty or holds its own mode — or
*fulfills* the node at the head, resuming its waiter and advancing ``head``.

This is the paper's "Java" baseline: every element costs one node
allocation, and both enqueuing and fulfilling revolve around CAS retry
loops on the two hot ``head``/``tail`` pointers, which is exactly why it
degrades under contention in Figure 5.

One deliberate deviation from the Java original, documented for fidelity:
Java linearizes fulfilment/cancellation on a CAS of the node's ``item``
field; we linearize on the waiter's own resume/interrupt CAS (the
:class:`~repro.runtime.waiter.Waiter` state machine), which is the same
one-CAS decision point and keeps cancellation identical across all
implementations in this repository.  The operation and allocation counts
per transfer are unchanged.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.cells import RefCell
from ..concurrent.ops import Alloc, Cas, Read, Write
from ..errors import Interrupted
from ..runtime.waiter import Waiter

__all__ = ["ScherersSyncQueue"]


class _DualNode:
    """One dual-queue node: a waiting sender (data) or receiver (request)."""

    __slots__ = ("is_data", "item", "waiter", "next")

    def __init__(self, is_data: bool, item: Any):
        self.is_data = is_data
        #: The element being transferred: the sender's value for data
        #: nodes; filled in by the fulfilling sender for request nodes.
        self.item = RefCell(item, name="slsq.item")
        self.waiter: Optional[Waiter] = None
        self.next = RefCell(None, name="slsq.next")


class ScherersSyncQueue:
    """Fair synchronous queue (rendezvous semantics only, as published)."""

    def __init__(self, name: str = "java-sq"):
        self.name = name
        dummy = _DualNode(True, None)
        self.head = RefCell(dummy, name=f"{name}.head")
        self.tail = RefCell(dummy, name=f"{name}.tail")
        self.nodes_allocated = 0

    # The public API matches the channels' so benchmarks are uniform.

    def send(self, element: Any) -> Generator[Any, Any, None]:
        if element is None:
            raise ValueError("SynchronousQueue cannot carry None")
        yield from self._transfer(True, element)

    def receive(self) -> Generator[Any, Any, Any]:
        return (yield from self._transfer(False, None))

    # ------------------------------------------------------------------

    def _transfer(self, is_data: bool, element: Any) -> Generator[Any, Any, Any]:
        node: Optional[_DualNode] = None
        while True:
            head: _DualNode = yield Read(self.head)
            tail: _DualNode = yield Read(self.tail)
            if head is tail or tail.is_data == is_data:
                # Empty, or the queue holds our own mode: enqueue and wait.
                nxt = yield Read(tail.next)
                if nxt is not None:
                    yield Cas(self.tail, tail, nxt)  # help lagging tail
                    continue
                if node is None:
                    node = _DualNode(is_data, element)
                    yield Alloc("dual-node")
                    self.nodes_allocated += 1
                    w = yield from Waiter.make()
                    node.waiter = w
                ok = yield Cas(tail.next, None, node)
                if not ok:
                    continue
                yield Cas(self.tail, tail, node)
                yield from self._await_fulfilment(node, tail)
                if is_data:
                    return None
                return (yield Read(node.item))
            # Opposite mode at the head: fulfill the oldest waiter.
            nxt = yield Read(head.next)
            if nxt is None or head is not (yield Read(self.head)):
                continue  # inconsistent snapshot
            assert nxt.waiter is not None
            if is_data:
                # Sender fulfilling a request node: publish the element
                # with a CAS so racing fulfillers cannot clobber each
                # other, *then* resume the receiver.
                ok = yield Cas(nxt.item, None, element)
                if not ok:
                    yield Cas(self.head, head, nxt)  # node already taken
                    continue
                resumed = yield from nxt.waiter.try_unpark()
                if resumed:
                    yield Cas(self.head, head, nxt)  # nxt becomes the dummy
                    return None
                yield Write(nxt.item, None)  # cancelled: take it back
                yield Cas(self.head, head, nxt)
                continue
            # Receiver fulfilling a data node: the element is only read,
            # so the waiter CAS alone arbitrates racing receivers.
            value_back = yield Read(nxt.item)
            resumed = yield from nxt.waiter.try_unpark()
            if resumed:
                yield Write(nxt.item, None)  # avoid retention
                yield Cas(self.head, head, nxt)
                return value_back
            yield Cas(self.head, head, nxt)  # cancelled: skip the node

    def _await_fulfilment(self, node: _DualNode, pred: _DualNode) -> Generator[Any, Any, None]:
        """Park on the node's waiter; on cancellation the node stays in the
        list and is lazily skipped by fulfillers (as in Java)."""

        def on_interrupt() -> Generator[Any, Any, None]:
            # Java CASes item -> this-node; the waiter CAS already decided
            # for us, so only the element reference needs clearing.
            yield Write(node.item, None)

        assert node.waiter is not None
        try:
            yield from node.waiter.park(on_interrupt)
        except Interrupted:
            if node.waiter.interrupt_cause is not None:
                raise node.waiter.interrupt_cause from None
            raise
