"""The MPDQ synchronous queue of Izraelevitz & Scott [14] (modelled).

MPDQ reserves cells with per-mode FAA counters like the paper's channel,
but — and this is the behaviour Appendix D isolates — an operation that
finds its reserved cell EMPTY **always suspends**, without comparing the
``S``/``R`` counters.  There is no cell poisoning: the party that arrives
second performs the rendezvous, whichever mode it has.

This is a *behavioural model* focused on the suspension policy: the real
MPDQ is a circular-buffer LCRQ derivative needing double-width CAS
(unavailable in most managed languages, §6); we keep the paper's infinite
array so the two designs differ in exactly the property under test.

The consequence (Appendix D): an operation can suspend even though a
matching operation of the opposite kind has already *completed its
registration* and is parked in a later cell — the forbidden execution that
motivates the channel's BROKEN state.  ``tests/test_appendix_d.py`` drives
the paper's three-thread interleaving against both implementations.
"""

from __future__ import annotations

from typing import Any, Generator

from ..concurrent.cells import IntCell
from ..concurrent.ops import Cas, Faa, Read, Write
from ..core.plain_array import PlainInfiniteArray
from ..core.states import DONE, ReceiverWaiter, SenderWaiter
from ..errors import Interrupted

__all__ = ["MPDQSyncQueue"]


class MPDQSyncQueue:
    """Rendezvous queue that always suspends on an EMPTY cell."""

    def __init__(self, name: str = "mpdq"):
        self.name = name
        self.S = IntCell(0, name=f"{name}.S")
        self.R = IntCell(0, name=f"{name}.R")
        self.A = PlainInfiniteArray(f"{name}.A")

    @property
    def capacity(self) -> int:
        return 0

    def send(self, element: Any) -> Generator[Any, Any, None]:
        if element is None:
            raise ValueError("queue cannot carry None")
        while True:
            s = yield Faa(self.S, 1)
            state_cell = self.A.state_cell(s)
            elem_cell = self.A.elem_cell(s)
            yield Write(elem_cell, element)
            while True:
                state = yield Read(state_cell)
                if state is None:
                    # MPDQ policy: suspend unconditionally — no check of
                    # the R counter, no elimination, no poisoning.
                    w = yield from SenderWaiter.make()
                    ok = yield Cas(state_cell, None, w)
                    if ok:
                        yield from self._park(w, state_cell, elem_cell)
                        return
                    continue
                if isinstance(state, ReceiverWaiter):
                    ok = yield from state.try_unpark()
                    if ok:
                        yield Write(state_cell, DONE)
                        return
                    yield Write(elem_cell, None)
                    break  # cancelled receiver; take a fresh cell
                yield Write(elem_cell, None)
                break  # INTERRUPTED-like leftover; take a fresh cell

    def receive(self) -> Generator[Any, Any, Any]:
        while True:
            r = yield Faa(self.R, 1)
            state_cell = self.A.state_cell(r)
            elem_cell = self.A.elem_cell(r)
            while True:
                state = yield Read(state_cell)
                if state is None:
                    w = yield from ReceiverWaiter.make()
                    ok = yield Cas(state_cell, None, w)
                    if ok:
                        yield from self._park(w, state_cell, elem_cell)
                        value = yield Read(elem_cell)
                        yield Write(elem_cell, None)
                        return value
                    continue
                if isinstance(state, SenderWaiter):
                    ok = yield from state.try_unpark()
                    if ok:
                        yield Write(state_cell, DONE)
                        value = yield Read(elem_cell)
                        yield Write(elem_cell, None)
                        return value
                    break  # cancelled sender; take a fresh cell
                break

    def _park(self, w: Any, state_cell: Any, elem_cell: Any) -> Generator[Any, Any, None]:
        def on_interrupt() -> Generator[Any, Any, None]:
            yield Write(elem_cell, None)
            yield Cas(state_cell, w, None)  # leave the cell reusable-ish

        try:
            yield from w.park(on_interrupt)
        except Interrupted:
            if w.interrupt_cause is not None:
                raise w.interrupt_cause from None
            raise
