"""A Go-style channel: coarse-grained lock + ring buffer + waiter queues [5].

Go's ``hchan`` guards *all* channel state — the circular element buffer and
the ``sendq``/``recvq`` waiting-goroutine lists — with one runtime mutex.
Every operation takes the lock, so the channel's critical section is the
serialization bottleneck the paper's lock-free design removes; under the
simulator's cost model this is what makes the Go baseline plateau in the
Figure 5 sweeps.

Faithful structural details reproduced here:

* a receiver waiting in ``recvq`` is handed its element *directly* (the
  sender writes into the receiver's stack slot — our per-waiter box);
* when the buffer is full and a receiver frees a slot, it also moves the
  oldest waiting sender's element into the buffer before unlocking;
* waiters cancelled while queued are lazily skipped (Go unlinks the
  ``sudog``; we drop it at pop time when its ``tryUnpark`` fails).

State under the mutex uses plain Python structures — every access happens
inside the critical section, exactly as in ``runtime/chan.go``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from ..concurrent.cells import RefCell
from ..concurrent.ops import Read, Write
from ..errors import ChannelClosedForReceive, ChannelClosedForSend, Interrupted
from ..runtime.waiter import INTERRUPTED as _W_INTERRUPTED
from ..runtime.waiter import Waiter
from ..sim.sync import SimMutex

__all__ = ["GoChannel"]


class _Sudog:
    """Go's ``sudog``: one waiting goroutine plus its element slot."""

    __slots__ = ("waiter", "box")

    def __init__(self, waiter: Waiter, element: Any):
        self.waiter = waiter
        #: The element being sent, or the slot a sender will fill for a
        #: waiting receiver.  A per-waiter cell, like a goroutine's stack
        #: slot — written only by the resuming party before the unpark.
        self.box = RefCell(element, name="go.sudog.box")


class GoChannel:
    """``make(chan T, capacity)`` with close semantics."""

    def __init__(self, capacity: int = 0, name: str = "go-chan"):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.name = name
        self._lock = SimMutex(f"{name}.lock")
        # All fields below are protected by _lock.
        self._buf: Deque[Any] = deque()
        self._sendq: Deque[_Sudog] = deque()
        self._recvq: Deque[_Sudog] = deque()
        self._closed = False

    # ------------------------------------------------------------------

    def send(self, element: Any) -> Generator[Any, Any, None]:
        if element is None:
            raise ValueError("channel cannot carry None")
        while True:
            yield from self._lock.acquire()
            if self._closed:
                yield from self._lock.release()
                raise ChannelClosedForSend()
            # 1. A receiver is waiting: hand the element over directly.
            handed = False
            while True:
                sg = yield from self._pop_live(self._recvq)
                if sg is None:
                    break
                yield Write(sg.box, element)
                resumed = yield from sg.waiter.try_unpark()
                if resumed:
                    handed = True
                    break
                # Lost to a concurrent cancellation; try the next waiter.
            if handed:
                yield from self._lock.release()
                return
            # 2. Buffer space available: deposit and go.
            if len(self._buf) < self.capacity:
                self._buf.append(element)
                yield from self._lock.release()
                return
            # 3. Full (or rendezvous): enqueue ourselves and park.
            w = yield from Waiter.make()
            sg = _Sudog(w, element)
            self._sendq.append(sg)
            yield from self._lock.release()
            if (yield from self._park(sg, self._sendq)):
                return
            # Woken by close(): fail like Go's "send on closed channel".
            raise ChannelClosedForSend()

    def receive(self) -> Generator[Any, Any, Any]:
        while True:
            yield from self._lock.acquire()
            # 1. Buffered element available (drains even when closed).
            if self._buf:
                value = self._buf.popleft()
                # Refill from the oldest waiting sender, if any.
                while True:
                    sg = yield from self._pop_live(self._sendq)
                    if sg is None:
                        break
                    moved = yield Read(sg.box)
                    resumed = yield from sg.waiter.try_unpark()
                    if resumed:
                        self._buf.append(moved)
                        break
                yield from self._lock.release()
                return value
            # 2. Rendezvous with a waiting sender.
            while True:
                sg = yield from self._pop_live(self._sendq)
                if sg is None:
                    break
                value = yield Read(sg.box)
                resumed = yield from sg.waiter.try_unpark()
                if resumed:
                    yield from self._lock.release()
                    return value
            if self._closed:
                yield from self._lock.release()
                raise ChannelClosedForReceive()
            # 3. Nothing available: enqueue ourselves and park.
            w = yield from Waiter.make()
            sg = _Sudog(w, None)
            self._recvq.append(sg)
            yield from self._lock.release()
            if (yield from self._park(sg, self._recvq)):
                value = yield Read(sg.box)
                if value is None:
                    raise ChannelClosedForReceive()  # woken by close()
                return value
            raise ChannelClosedForReceive()

    def try_send(self, element: Any) -> Generator[Any, Any, bool]:
        """Non-blocking send (Go's ``select { case ch <- v: default: }``)."""

        if element is None:
            raise ValueError("channel cannot carry None")
        yield from self._lock.acquire()
        if self._closed:
            yield from self._lock.release()
            raise ChannelClosedForSend()
        while True:
            sg = yield from self._pop_live(self._recvq)
            if sg is None:
                break
            yield Write(sg.box, element)
            resumed = yield from sg.waiter.try_unpark()
            if resumed:
                yield from self._lock.release()
                return True
        if len(self._buf) < self.capacity:
            self._buf.append(element)
            yield from self._lock.release()
            return True
        yield from self._lock.release()
        return False

    def try_receive(self) -> Generator[Any, Any, tuple[bool, Any]]:
        """Non-blocking receive (Go's ``select { case v := <-ch: default: }``)."""

        yield from self._lock.acquire()
        if self._buf:
            value = self._buf.popleft()
            while True:
                sg = yield from self._pop_live(self._sendq)
                if sg is None:
                    break
                moved = yield Read(sg.box)
                resumed = yield from sg.waiter.try_unpark()
                if resumed:
                    self._buf.append(moved)
                    break
            yield from self._lock.release()
            return (True, value)
        while True:
            sg = yield from self._pop_live(self._sendq)
            if sg is None:
                break
            value = yield Read(sg.box)
            resumed = yield from sg.waiter.try_unpark()
            if resumed:
                yield from self._lock.release()
                return (True, value)
        if self._closed:
            yield from self._lock.release()
            raise ChannelClosedForReceive()
        yield from self._lock.release()
        return (False, None)

    def receive_catching(self) -> Generator[Any, Any, tuple[bool, Any]]:
        """Like :meth:`receive`, but ``(False, None)`` once closed."""

        try:
            value = yield from self.receive()
        except ChannelClosedForReceive:
            return (False, None)
        return (True, value)

    def close(self) -> Generator[Any, Any, bool]:
        """Close the channel, waking every queued waiter (as Go does)."""

        yield from self._lock.acquire()
        if self._closed:
            yield from self._lock.release()
            return False
        self._closed = True
        senders = list(self._sendq)
        receivers = list(self._recvq)
        self._sendq.clear()
        self._recvq.clear()
        yield from self._lock.release()
        for sg in senders:
            yield from sg.waiter.interrupt(cause=ChannelClosedForSend())
        for sg in receivers:
            yield from sg.waiter.interrupt(cause=ChannelClosedForReceive())
        return True

    # ------------------------------------------------------------------

    def _pop_live(self, queue: Deque[_Sudog]) -> Generator[Any, Any, Optional[_Sudog]]:
        """Pop the oldest waiter that can still be resumed.

        Must run under the lock.  Rather than popping and unparking here
        (which would lose the waiter if the unpark then failed), this
        peeks, drops cancelled entries, and returns a sudog whose waiter
        the caller resumes — the caller's unpark can still lose to a
        concurrent cancel, but only for *parked* entries whose interrupt
        handler removes them, so the assert in the callers holds.
        """

        while queue:
            sg = queue[0]
            # A waiter is resumable unless already interrupted; peeking
            # its state is a simulated read on the waiter's cell.
            state = yield Read(sg.waiter._state)
            if state is _W_INTERRUPTED:
                queue.popleft()  # lazily drop the cancelled sudog
                continue
            queue.popleft()
            return sg
        return None

    def _park(self, sg: _Sudog, queue: Deque[_Sudog]) -> Generator[Any, Any, bool]:
        """Park on the sudog; ``False`` when woken by close()."""

        def on_interrupt() -> Generator[Any, Any, None]:
            # Unlink ourselves (Go removes the sudog from the wait list);
            # requires the lock since the deque is shared state.
            yield from self._lock.acquire()
            try:
                queue.remove(sg)
            except ValueError:
                pass  # already popped by a resuming peer or close()
            yield from self._lock.release()

        try:
            yield from sg.waiter.park(on_interrupt)
            return True
        except Interrupted:
            cause = sg.waiter.interrupt_cause
            if isinstance(cause, (ChannelClosedForSend, ChannelClosedForReceive)):
                return False
            if cause is not None:
                raise cause from None
            raise
