"""Michael–Scott non-blocking queue [18] (building block for baselines).

The classic two-lock-free queue: a singly linked list with ``head``/``tail``
pointers advanced by CAS, one node allocated per element, helping on the
lagging tail.  The Java synchronous queue of Scherer–Lea–Scott builds
directly on this structure, and the paper positions its own infinite-array
design as the modern replacement for it — so the cost profile here (a CAS
*retry loop* on a single hot tail pointer plus one allocation per element)
is the contrast class for the FAA channel's unconditional counters.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.cells import RefCell
from ..concurrent.ops import Alloc, Cas, Read, Write

__all__ = ["MSQueue", "MSNode"]


class MSNode:
    """One linked-list node; ``value is None`` marks the dummy."""

    __slots__ = ("value", "next")

    def __init__(self, value: Any):
        self.value: RefCell = RefCell(value, name="ms.value")
        self.next: RefCell = RefCell(None, name="ms.next")


class MSQueue:
    """Michael–Scott queue over the op protocol.

    ``dequeue`` returns ``None`` on an empty queue (elements must not be
    ``None``, as everywhere in this library).
    """

    def __init__(self, name: str = "msq"):
        self.name = name
        dummy = MSNode(None)
        self.head = RefCell(dummy, name=f"{name}.head")
        self.tail = RefCell(dummy, name=f"{name}.tail")
        #: Allocation statistic (nodes ever created, dummy excluded).
        self.nodes_allocated = 0

    def enqueue(self, value: Any) -> Generator[Any, Any, None]:
        """Append ``value``; lock-free."""

        if value is None:
            raise ValueError("MSQueue cannot carry None")
        node = MSNode(value)
        yield Alloc("ms-node")
        self.nodes_allocated += 1
        while True:
            tail: MSNode = yield Read(self.tail)
            nxt = yield Read(tail.next)
            if nxt is not None:
                # Help the lagging tail forward and retry.
                yield Cas(self.tail, tail, nxt)
                continue
            ok = yield Cas(tail.next, None, node)
            if ok:
                yield Cas(self.tail, tail, node)
                return

    def dequeue(self) -> Generator[Any, Any, Optional[Any]]:
        """Pop the oldest element, or ``None`` when empty; lock-free."""

        while True:
            head: MSNode = yield Read(self.head)
            tail: MSNode = yield Read(self.tail)
            nxt: Optional[MSNode] = yield Read(head.next)
            if nxt is None:
                return None  # empty
            if head is tail:
                yield Cas(self.tail, tail, nxt)  # help
                continue
            value = yield Read(nxt.value)
            ok = yield Cas(self.head, head, nxt)
            if ok:
                # The old dummy is garbage; the new head keeps its value
                # slot only until overwritten (mirror the Java idiom of
                # nulling it to avoid retention).
                yield Write(nxt.value, value)
                return value

    def is_empty(self) -> Generator[Any, Any, bool]:
        head: MSNode = yield Read(self.head)
        nxt = yield Read(head.next)
        return nxt is None

    def peek_py(self) -> Optional[Any]:
        """Non-simulated snapshot of the front element (tests only)."""

        nxt = self.head.value.next.value
        return None if nxt is None else nxt.value.value
