"""Behavioural model of the legacy Kotlin Coroutines channel [3].

The channel implementation the paper *replaced* in ``kotlinx.coroutines``
(≤ 1.6): the waiting queue is a lock-free doubly-linked list in the style
of Sundell & Tsigas [24], made atomic with operation *descriptors* [10] —
"exceptionally complex and shows significant overheads" (§6) — while the
buffered variant additionally protects its pre-allocated ring buffer with
a **coarse-grained lock**.

We model the performance-relevant structure rather than the full
descriptor machinery (documented substitution; see EXPERIMENTS.md):

* every waiting-queue operation allocates a node *and* a descriptor and
  performs extra CAS work (the ``AddLastDesc``/``RemoveFirstDesc`` helping
  protocol costs ~3 CASes per queue update against the MS queue's 2);
* the buffered fast path takes a global lock around the ring buffer, with
  the waiter queue manipulated under that same lock (as the legacy
  ``ArrayChannel`` did);
* the rendezvous fast path is lock-free, like the original
  ``RendezvousChannel`` built on the doubly-linked list.

The allocation counts reproduce the paper's memory-usage observation: the
legacy Kotlin *rendezvous* channel allocates the most per operation
(node + descriptor), while the legacy *buffered* channel allocates the
least (the ring buffer is pre-allocated; waiters appear only when the
buffer is empty/full).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from ..concurrent.cells import RefCell
from ..concurrent.ops import Alloc, Cas, Read, Write
from ..errors import ChannelClosedForReceive, ChannelClosedForSend, Interrupted
from ..runtime.waiter import INTERRUPTED as _W_INTERRUPTED
from ..runtime.waiter import Waiter
from ..sim.sync import SimMutex

__all__ = ["KotlinLegacyChannel"]


class _LLNode:
    """Doubly-linked-list node holding one waiter (prev kept lazily)."""

    __slots__ = ("waiter", "box", "is_sender", "next", "prev")

    def __init__(self, waiter: Waiter, element: Any, is_sender: bool):
        self.waiter = waiter
        self.box = RefCell(element, name="klc.box")
        self.is_sender = is_sender
        self.next = RefCell(None, name="klc.next")
        self.prev = RefCell(None, name="klc.prev")


class _SundellTsigasModel:
    """Cost model of the descriptor-based doubly-linked waiter deque.

    Structurally an MS queue (correctness is carried by the simple
    head/tail CAS protocol); each mutation additionally allocates a
    descriptor and performs one extra helping CAS on the ``prev``
    pointer, reproducing the legacy implementation's overhead profile.
    """

    def __init__(self, name: str):
        dummy = _LLNode(None, None, True)  # type: ignore[arg-type]
        self.head = RefCell(dummy, name=f"{name}.head")
        self.tail = RefCell(dummy, name=f"{name}.tail")
        self.nodes_allocated = 0

    def add_last(self, node: _LLNode) -> Generator[Any, Any, None]:
        yield Alloc("ll-node")
        yield Alloc("descriptor")
        self.nodes_allocated += 1
        while True:
            tail: _LLNode = yield Read(self.tail)
            nxt = yield Read(tail.next)
            if nxt is not None:
                yield Cas(self.tail, tail, nxt)
                continue
            ok = yield Cas(tail.next, None, node)
            if ok:
                yield Cas(self.tail, tail, node)
                # The lazy prev maintenance of Sundell–Tsigas.
                yield Cas(node.prev, None, tail)
                return

    def remove_first(self) -> Generator[Any, Any, Optional[_LLNode]]:
        yield Alloc("descriptor")
        while True:
            head: _LLNode = yield Read(self.head)
            tail: _LLNode = yield Read(self.tail)
            nxt: Optional[_LLNode] = yield Read(head.next)
            if nxt is None:
                return None
            if head is tail:
                yield Cas(self.tail, tail, nxt)
                continue
            ok = yield Cas(self.head, head, nxt)
            if ok:
                yield Cas(nxt.prev, head, None)  # helping CAS on prev
                return nxt

    def first_is_sender(self) -> Generator[Any, Any, Optional[bool]]:
        head: _LLNode = yield Read(self.head)
        nxt: Optional[_LLNode] = yield Read(head.next)
        if nxt is None:
            return None
        return nxt.is_sender


class KotlinLegacyChannel:
    """Legacy ``kotlinx.coroutines`` channel model (rendezvous or buffered)."""

    def __init__(self, capacity: int = 0, name: str = "kotlin-legacy"):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.name = name
        self._queue = _SundellTsigasModel(f"{name}.q")
        self._closed = RefCell(False, name=f"{name}.closed")
        if capacity > 0:
            # The pre-allocated ring buffer and its coarse lock.
            self._lock: Optional[SimMutex] = SimMutex(f"{name}.lock")
            self._buf: Deque[Any] = deque()
        else:
            self._lock = None
            self._buf = deque()

    # ------------------------------------------------------------------
    # Rendezvous fast path (lock-free waiter deque)
    # ------------------------------------------------------------------

    def send(self, element: Any) -> Generator[Any, Any, None]:
        if element is None:
            raise ValueError("channel cannot carry None")
        if self._lock is not None:
            yield from self._send_buffered(element)
            return
        yield from self._transfer_rendezvous(True, element)

    def receive(self) -> Generator[Any, Any, Any]:
        if self._lock is not None:
            return (yield from self._receive_buffered())
        return (yield from self._transfer_rendezvous(False, None))

    def _transfer_rendezvous(self, is_sender: bool, element: Any) -> Generator[Any, Any, Any]:
        """Dual-queue transfer over the waiter deque.

        The "enqueue myself" vs. "fulfill the oldest opposite waiter"
        decision is validated by the tail-append CAS (a dual queue never
        mixes modes), as in the legacy implementation's descriptor-based
        ``sendOrEnqueue``.  Each queue mutation pays the descriptor
        allocation and the lazy ``prev`` helping CAS on top of the base
        MS-queue work.
        """

        q = self._queue
        node: Optional[_LLNode] = None
        while True:
            closed = yield Read(self._closed)
            if closed:
                if is_sender:
                    raise ChannelClosedForSend()
                first = yield from q.first_is_sender()
                if first is not True:
                    raise ChannelClosedForReceive()
                # fall through: drain the remaining suspended senders
            head: _LLNode = yield Read(q.head)
            tail: _LLNode = yield Read(q.tail)
            if head is tail or tail.is_sender == is_sender:
                # Empty, or our own mode queued: append ourselves.  The
                # CAS on tail.next re-validates the decision.
                nxt = yield Read(tail.next)
                if nxt is not None:
                    yield Cas(q.tail, tail, nxt)
                    continue
                if node is None:
                    w = yield from Waiter.make()
                    node = _LLNode(w, element, is_sender=is_sender)
                    yield Alloc("ll-node")
                    yield Alloc("descriptor")
                    q.nodes_allocated += 1
                ok = yield Cas(tail.next, None, node)
                if not ok:
                    continue
                yield Cas(q.tail, tail, node)
                yield Cas(node.prev, None, tail)  # lazy prev maintenance
                yield from self._park(node)
                if is_sender:
                    return None
                return (yield Read(node.box))
            # Opposite mode at the head: fulfill the oldest waiter.
            nxt = yield Read(head.next)
            if nxt is None or head is not (yield Read(q.head)):
                continue
            yield Alloc("descriptor")  # RemoveFirstDesc
            if is_sender:
                ok = yield Cas(nxt.box, None, element)
                if not ok:
                    yield Cas(q.head, head, nxt)
                    continue
                resumed = yield from nxt.waiter.try_unpark()
                if resumed:
                    yield Cas(q.head, head, nxt)
                    yield Cas(nxt.prev, head, None)
                    return None
                yield Write(nxt.box, None)
                yield Cas(q.head, head, nxt)
                continue
            value = yield Read(nxt.box)
            resumed = yield from nxt.waiter.try_unpark()
            if resumed:
                yield Write(nxt.box, None)
                yield Cas(q.head, head, nxt)
                yield Cas(nxt.prev, head, None)
                return value
            yield Cas(q.head, head, nxt)

    # ------------------------------------------------------------------
    # Buffered path (coarse lock, as in the legacy ArrayChannel)
    # ------------------------------------------------------------------

    def _send_buffered(self, element: Any) -> Generator[Any, Any, None]:
        assert self._lock is not None
        while True:
            yield from self._lock.acquire()
            closed = yield Read(self._closed)
            if closed:
                yield from self._lock.release()
                raise ChannelClosedForSend()
            # Resume a waiting receiver directly, if any.
            first = yield from self._queue.first_is_sender()
            if first is False:
                node = yield from self._queue.remove_first()
                if node is not None and not node.is_sender:
                    yield Write(node.box, element)
                    resumed = yield from node.waiter.try_unpark()
                    if resumed:
                        yield from self._lock.release()
                        return
                yield from self._lock.release()
                continue
            if len(self._buf) < self.capacity:
                self._buf.append(element)
                yield from self._lock.release()
                return
            w = yield from Waiter.make()
            node = _LLNode(w, element, is_sender=True)
            yield from self._queue.add_last(node)
            yield from self._lock.release()
            yield from self._park(node)
            return

    def _receive_buffered(self) -> Generator[Any, Any, Any]:
        assert self._lock is not None
        while True:
            yield from self._lock.acquire()
            if self._buf:
                value = self._buf.popleft()
                # Refill from the oldest waiting sender.
                while True:
                    first = yield from self._queue.first_is_sender()
                    if first is not True:
                        break
                    node = yield from self._queue.remove_first()
                    if node is None or not node.is_sender:
                        continue
                    moved = yield Read(node.box)
                    resumed = yield from node.waiter.try_unpark()
                    if resumed:
                        self._buf.append(moved)
                        break
                yield from self._lock.release()
                return value
            first = yield from self._queue.first_is_sender()
            if first is True:
                node = yield from self._queue.remove_first()
                if node is not None and node.is_sender:
                    value = yield Read(node.box)
                    resumed = yield from node.waiter.try_unpark()
                    if resumed:
                        yield from self._lock.release()
                        return value
                yield from self._lock.release()
                continue
            closed = yield Read(self._closed)
            if closed:
                yield from self._lock.release()
                raise ChannelClosedForReceive()
            w = yield from Waiter.make()
            node = _LLNode(w, None, is_sender=False)
            yield from self._queue.add_last(node)
            yield from self._lock.release()
            yield from self._park(node)
            return (yield Read(node.box))

    # ------------------------------------------------------------------

    def try_send(self, element: Any) -> Generator[Any, Any, bool]:
        """Non-blocking send (the legacy ``offer``)."""

        if element is None:
            raise ValueError("channel cannot carry None")
        closed = yield Read(self._closed)
        if closed:
            raise ChannelClosedForSend()
        if self._lock is not None:
            yield from self._lock.acquire()
            closed = yield Read(self._closed)
            if closed:
                yield from self._lock.release()
                raise ChannelClosedForSend()
            ok = False
            first = yield from self._queue.first_is_sender()
            if first is False:
                node = yield from self._queue.remove_first()
                if node is not None and not node.is_sender:
                    yield Write(node.box, element)
                    ok = yield from node.waiter.try_unpark()
            elif len(self._buf) < self.capacity:
                self._buf.append(element)
                ok = True
            yield from self._lock.release()
            return ok
        # Rendezvous: succeeds only against a waiting receiver.
        q = self._queue
        while True:
            head: _LLNode = yield Read(q.head)
            tail: _LLNode = yield Read(q.tail)
            if head is tail or tail.is_sender:
                return False
            nxt = yield Read(head.next)
            if nxt is None:
                continue
            ok = yield Cas(nxt.box, None, element)
            if not ok:
                yield Cas(q.head, head, nxt)
                continue
            resumed = yield from nxt.waiter.try_unpark()
            if resumed:
                yield Cas(q.head, head, nxt)
                return True
            yield Write(nxt.box, None)
            yield Cas(q.head, head, nxt)

    def try_receive(self) -> Generator[Any, Any, tuple[bool, Any]]:
        """Non-blocking receive (the legacy ``poll``)."""

        if self._lock is not None:
            yield from self._lock.acquire()
            if self._buf:
                value = self._buf.popleft()
                while True:
                    first = yield from self._queue.first_is_sender()
                    if first is not True:
                        break
                    node = yield from self._queue.remove_first()
                    if node is None or not node.is_sender:
                        continue
                    moved = yield Read(node.box)
                    resumed = yield from node.waiter.try_unpark()
                    if resumed:
                        self._buf.append(moved)
                        break
                yield from self._lock.release()
                return (True, value)
            closed = yield Read(self._closed)
            yield from self._lock.release()
            if closed:
                raise ChannelClosedForReceive()
            return (False, None)
        q = self._queue
        while True:
            head: _LLNode = yield Read(q.head)
            tail: _LLNode = yield Read(q.tail)
            if head is tail or not tail.is_sender:
                closed = yield Read(self._closed)
                if closed:
                    raise ChannelClosedForReceive()
                return (False, None)
            nxt = yield Read(head.next)
            if nxt is None:
                continue
            value = yield Read(nxt.box)
            resumed = yield from nxt.waiter.try_unpark()
            if resumed:
                yield Write(nxt.box, None)
                yield Cas(q.head, head, nxt)
                return (True, value)
            yield Cas(q.head, head, nxt)

    def receive_catching(self) -> Generator[Any, Any, tuple[bool, Any]]:
        """Like :meth:`receive`, but ``(False, None)`` once closed."""

        try:
            value = yield from self.receive()
        except ChannelClosedForReceive:
            return (False, None)
        return (True, value)

    def close(self) -> Generator[Any, Any, bool]:
        """Close the channel, failing queued waiters of both kinds.

        (The legacy implementation enqueued a ``Closed`` token; waking
        everyone is observationally equivalent for our workloads.)
        """

        ok = yield Cas(self._closed, False, True)
        if not ok:
            return False
        while True:
            node = yield from self._queue.remove_first()
            if node is None:
                return True
            cause: Exception
            cause = ChannelClosedForSend() if node.is_sender else ChannelClosedForReceive()
            yield from node.waiter.interrupt(cause=cause)

    def _park(self, node: _LLNode) -> Generator[Any, Any, None]:
        def on_interrupt() -> Generator[Any, Any, None]:
            # The legacy impl unlinks the node in O(1) via prev; we let
            # the poppers skip it lazily but still clear the box.
            yield Write(node.box, None)

        try:
            yield from node.waiter.park(on_interrupt)
        except Interrupted:
            if node.waiter.interrupt_cause is not None:
                raise node.waiter.interrupt_cause from None
            raise
