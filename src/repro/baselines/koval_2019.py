"""The rendezvous channel of Koval, Alistarh & Elizarov (EuroPar 2019) [16].

The predecessor design the paper improves upon: a single waiting queue that,
at any time, holds suspended operations of one kind (all senders or all
receivers), stored in linked segments to amortize allocation.  The crucial
structural difference from the 2023 algorithm is the *decision point*: an
arriving operation must atomically decide "enqueue myself" vs. "resume the
oldest opposite waiter", which requires a **CAS retry loop on one hot
balance word** rather than an unconditional FAA — under contention, failed
CASes burn cache-line transfers and the design degrades, which is exactly
the separation Figure 5 shows.

We model the design as a signed *balance* counter (+k ⇒ k waiting senders,
−k ⇒ k waiting receivers) updated by CAS, with two segment-based FAA queues
holding the actual waiters.  The balance CAS is the linearization point;
the waiter queues are only ever popped by operations that won a matching
balance update, so each waiter is resumed exactly once.

Cancellation of suspended operations is *not* supported (the published
algorithm's cancellation story differs substantially; the paper's
benchmarks do not exercise cancellation on baselines).  ``send``/``receive``
here never observe interrupts.
"""

from __future__ import annotations

from typing import Any, Generator

from ..concurrent.cells import IntCell, RefCell
from ..concurrent.ops import Alloc, Cas, Faa, Read, Spin, Write
from ..runtime.waiter import Waiter

__all__ = ["KovalChannel2019"]

_SEG = 32


class _WSegment:
    __slots__ = ("id", "cells", "next")

    def __init__(self, seg_id: int):
        self.id = seg_id
        self.cells = [RefCell(None, name=f"k19.seg{seg_id}[{i}]") for i in range(_SEG)]
        self.next = RefCell(None, name=f"k19.seg{seg_id}.next")


class _WaiterQueue:
    """FIFO of (waiter, elem-box) pairs in linked segments.

    Enqueue/dequeue slots are reserved by FAA; the *right* to dequeue is
    granted externally by the channel's balance CAS, so ``pop`` always has
    a corresponding ``push`` (it spins briefly if the pusher has reserved
    its slot but not yet installed the waiter).
    """

    def __init__(self, name: str):
        self.name = name
        first = _WSegment(0)
        self._first = first  # segments are never removed; walks can restart here
        self._head = RefCell(first, name=f"{name}.head")
        self._tail = RefCell(first, name=f"{name}.tail")
        self.enq = IntCell(0, name=f"{name}.enq")
        self.deq = IntCell(0, name=f"{name}.deq")
        self.segments_allocated = 1

    def _find(self, anchor: RefCell, seg_id: int) -> Generator[Any, Any, _WSegment]:
        cur: _WSegment = yield Read(anchor)
        if cur.id > seg_id:
            # A faster peer advanced the anchor past our segment; restart
            # from the permanent first segment (never removed here).
            cur = self._first
        while cur.id < seg_id:
            nxt = yield Read(cur.next)
            if nxt is None:
                new = _WSegment(cur.id + 1)
                yield Alloc("segment", _SEG)
                ok = yield Cas(cur.next, None, new)
                if ok:
                    self.segments_allocated += 1
                continue
            cur = nxt
        cur2 = yield Read(anchor)
        if cur2.id < cur.id:
            yield Cas(anchor, cur2, cur)  # best-effort advance
        return cur

    def push(self, entry: Any) -> Generator[Any, Any, None]:
        i = yield Faa(self.enq, 1)
        seg = yield from self._find(self._tail, i // _SEG)
        yield Write(seg.cells[i % _SEG], entry)

    def pop(self) -> Generator[Any, Any, Any]:
        i = yield Faa(self.deq, 1)
        seg = yield from self._find(self._head, i // _SEG)
        cell = seg.cells[i % _SEG]
        while True:
            entry = yield Read(cell)
            if entry is not None:
                yield Write(cell, None)  # release for GC
                return entry
            yield Spin("k19-pop-wait")  # pusher reserved but not installed


class KovalChannel2019:
    """Rendezvous channel with a CAS-balanced dual waiter queue."""

    def __init__(self, name: str = "koval-2019"):
        self.name = name
        #: +k ⇒ k waiting senders; −k ⇒ k waiting receivers.
        self.balance = IntCell(0, name=f"{name}.balance")
        self._senders = _WaiterQueue(f"{name}.sq")
        self._receivers = _WaiterQueue(f"{name}.rq")

    @property
    def capacity(self) -> int:
        return 0

    def send(self, element: Any) -> Generator[Any, Any, None]:
        if element is None:
            raise ValueError("channel cannot carry None")
        while True:
            b = yield Read(self.balance)
            if b >= 0:
                # No waiting receiver: suspend.
                ok = yield Cas(self.balance, b, b + 1)
                if not ok:
                    continue
                w = yield from Waiter.make()
                box = RefCell(element, name="k19.box")
                yield from self._senders.push((w, box))
                yield from w.park()
                return
            # Waiting receivers exist: claim one.
            ok = yield Cas(self.balance, b, b + 1)
            if not ok:
                continue
            w, box = yield from self._receivers.pop()
            yield Write(box, element)
            resumed = yield from w.try_unpark()
            assert resumed, "cancellation is unsupported in this baseline"
            return

    def receive(self) -> Generator[Any, Any, Any]:
        while True:
            b = yield Read(self.balance)
            if b <= 0:
                ok = yield Cas(self.balance, b, b - 1)
                if not ok:
                    continue
                w = yield from Waiter.make()
                box = RefCell(None, name="k19.box")
                yield from self._receivers.push((w, box))
                yield from w.park()
                return (yield Read(box))
            ok = yield Cas(self.balance, b, b - 1)
            if not ok:
                continue
            w, box = yield from self._senders.pop()
            value = yield Read(box)
            resumed = yield from w.try_unpark()
            assert resumed, "cancellation is unsupported in this baseline"
            return value
