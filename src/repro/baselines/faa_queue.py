"""A segment-based Fetch-And-Add queue (LCRQ-flavoured [19, 25]).

The plain-queue ancestor of the paper's channel: enqueuers and dequeuers
reserve cells of an infinite array with unconditional FAA on ``enqIdx`` /
``deqIdx`` and synchronize within the cell.  A dequeuer that arrives
before its enqueuer *poisons* the cell (the LCRQ trick the channel's
BROKEN state descends from).  Used as a micro-benchmark reference and by
tests as a simpler exemplar of the infinite-array pattern.

Unlike the channel, this queue never blocks: ``dequeue`` on an empty queue
returns ``None`` immediately.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.cells import IntCell, RefCell
from ..concurrent.ops import Alloc, Cas, Faa, GetAndSet, Read

__all__ = ["FAAQueue"]

#: Cell poisoned by a too-early dequeuer.
_BROKEN = object()
#: Segment size for the queue's infinite array.
_SEG = 16


class _QSegment:
    __slots__ = ("id", "cells", "next")

    def __init__(self, seg_id: int):
        self.id = seg_id
        self.cells = [RefCell(None, name=f"faaq.seg{seg_id}[{i}]") for i in range(_SEG)]
        self.next = RefCell(None, name=f"faaq.seg{seg_id}.next")


class FAAQueue:
    """MPMC FIFO queue: FAA-reserved cells in linked segments."""

    def __init__(self, name: str = "faaq"):
        self.name = name
        first = _QSegment(0)
        self._first = first  # segments are never removed; walks can restart here
        self._head = RefCell(first, name=f"{name}.head")  # dequeuers' segment
        self._tail = RefCell(first, name=f"{name}.tail")  # enqueuers' segment
        self.enq_idx = IntCell(0, name=f"{name}.enqIdx")
        self.deq_idx = IntCell(0, name=f"{name}.deqIdx")
        self.segments_allocated = 1

    def _find_segment(self, anchor: RefCell, seg_id: int) -> Generator[Any, Any, _QSegment]:
        cur: _QSegment = yield Read(anchor)
        if cur.id > seg_id:
            # A faster peer advanced the anchor past our segment; restart
            # from the permanent first segment (never removed here).
            cur = self._first
        while cur.id < seg_id:
            nxt = yield Read(cur.next)
            if nxt is None:
                new = _QSegment(cur.id + 1)
                yield Alloc("segment", _SEG)
                ok = yield Cas(cur.next, None, new)
                if ok:
                    self.segments_allocated += 1
                continue
            cur = nxt
        seen = yield Read(anchor)
        if seen.id < cur.id:
            yield Cas(anchor, seen, cur)  # best-effort advance, never backward
        return cur

    def enqueue(self, value: Any) -> Generator[Any, Any, None]:
        """Append ``value``; retries only past poisoned cells."""

        if value is None:
            raise ValueError("FAAQueue cannot carry None")
        while True:
            i = yield Faa(self.enq_idx, 1)
            seg = yield from self._find_segment(self._tail, i // _SEG)
            cell = seg.cells[i % _SEG]
            ok = yield Cas(cell, None, value)
            if ok:
                return
            # The cell was poisoned by a hasty dequeuer; take the next one.

    def dequeue(self) -> Generator[Any, Any, Optional[Any]]:
        """Pop the oldest element, or ``None`` when empty."""

        while True:
            deq = yield Read(self.deq_idx)
            enq = yield Read(self.enq_idx)
            if deq >= enq:
                return None  # observed empty
            i = yield Faa(self.deq_idx, 1)
            seg = yield from self._find_segment(self._head, i // _SEG)
            cell = seg.cells[i % _SEG]
            value = yield GetAndSet(cell, _BROKEN)
            if value is not None:
                return value
            # Poisoned an empty cell; its enqueuer will skip it.
