"""A segment-based Fetch-And-Add queue (LCRQ-flavoured [19, 25]).

The plain-queue ancestor of the paper's channel: enqueuers and dequeuers
reserve cells of an infinite array with unconditional FAA on ``enqIdx`` /
``deqIdx`` and synchronize within the cell.  A dequeuer that arrives
before its enqueuer *poisons* the cell (the LCRQ trick the channel's
BROKEN state descends from).  Used as a micro-benchmark reference and by
tests as a simpler exemplar of the infinite-array pattern.

Unlike the channel, this queue never blocks: ``dequeue`` on an empty queue
returns ``None`` immediately.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..concurrent.cells import IntCell, RefCell
from ..concurrent import ops as _ops
from ..concurrent.ops import Alloc, Cas, GetAndSet, faa_of, read_of

__all__ = ["FAAQueue"]

#: Cell poisoned by a too-early dequeuer.
_BROKEN = object()
#: Segment size for the queue's infinite array.
_SEG = 16


class _QSegment:
    __slots__ = ("id", "cells", "next")

    def __init__(self, seg_id: int):
        self.id = seg_id
        # Lazy name tuples (see Cell.name): segment creation is hot.
        self.cells = [RefCell(None, name=("faaq.seg%d[%d]", seg_id, i)) for i in range(_SEG)]
        self.next = RefCell(None, name=("faaq.seg%d.next", seg_id))


class FAAQueue:
    """MPMC FIFO queue: FAA-reserved cells in linked segments."""

    #: Compiled-tier kernel descriptor (PR 10); see
    #: ``RendezvousChannel.KERNEL_DESCRIPTOR``.  The ``_find_segment``
    #: slow path is always a Python delegate.
    KERNEL_DESCRIPTOR = {
        "_enqueue_fused": "faaq_enq",
        "_dequeue_fused": "faaq_deq",
    }

    def __init__(self, name: str = "faaq"):
        self.name = name
        first = _QSegment(0)
        self._first = first  # segments are never removed; walks can restart here
        self._head = RefCell(first, name=f"{name}.head")  # dequeuers' segment
        self._tail = RefCell(first, name=f"{name}.tail")  # enqueuers' segment
        self.enq_idx = IntCell(0, name=f"{name}.enqIdx")
        self.deq_idx = IntCell(0, name=f"{name}.deqIdx")
        self.segments_allocated = 1

    def _find_segment(
        self, anchor: RefCell, seg_id: int, cur: Optional[_QSegment] = None
    ) -> Generator[Any, Any, _QSegment]:
        # ``cur`` carries an anchor read the caller already emitted (the
        # inlined fast case of enqueue/dequeue), so no op is re-issued.
        if cur is None:
            cur = yield read_of(anchor)
        if cur.id > seg_id:
            # A faster peer advanced the anchor past our segment; restart
            # from the permanent first segment (never removed here).
            cur = self._first
        while cur.id < seg_id:
            nxt = yield read_of(cur.next)
            if nxt is None:
                new = _QSegment(cur.id + 1)
                yield Alloc("segment", _SEG)
                ok = yield Cas(cur.next, None, new)
                if ok:
                    self.segments_allocated += 1
                continue
            cur = nxt
        seen = yield read_of(anchor)
        if seen.id < cur.id:
            yield Cas(anchor, seen, cur)  # best-effort advance, never backward
        return cur

    def enqueue(self, value: Any) -> Generator[Any, Any, None]:
        """Append ``value``; retries only past poisoned cells.

        Dispatch wrapper: under the compiled engine's algorithm kernels
        (``ops.KERNELS``) this returns a native kernel iterator the stint
        loop executes in C; otherwise the fused generator, unchanged.
        """

        kernels = _ops.KERNELS
        if kernels is not None and value is not None and type(self) is FAAQueue:
            kern = kernels.faaq_enq(self, value)
            if kern is not None:
                return kern
        return self._enqueue_fused(value)

    def _enqueue_fused(self, value: Any) -> Generator[Any, Any, None]:
        if value is None:
            raise ValueError("FAAQueue cannot carry None")
        tail = self._tail
        faa_enq = faa_of(self.enq_idx, 1)
        read_tail = read_of(tail)
        while True:
            i = yield faa_enq
            sid, ci = divmod(i, _SEG)
            # Inlined _find_segment fast case: the tail already covers
            # our cell (two anchor reads, no sub-generator frame).
            cur = yield read_tail
            if cur.id == sid:
                seen = yield read_tail
                if seen.id < cur.id:
                    yield Cas(tail, seen, cur)
                seg = cur
            else:
                seg = yield from self._find_segment(tail, sid, cur=cur)
            ok = yield Cas(seg.cells[ci], None, value)
            if ok:
                return
            # The cell was poisoned by a hasty dequeuer; take the next one.

    def dequeue(self) -> Generator[Any, Any, Optional[Any]]:
        """Pop the oldest element, or ``None`` when empty.

        Dispatch wrapper — see :meth:`enqueue` for the kernel contract.
        """

        kernels = _ops.KERNELS
        if kernels is not None and type(self) is FAAQueue:
            kern = kernels.faaq_deq(self)
            if kern is not None:
                return kern
        return self._dequeue_fused()

    def _dequeue_fused(self) -> Generator[Any, Any, Optional[Any]]:
        head = self._head
        read_deq = read_of(self.deq_idx)
        read_enq = read_of(self.enq_idx)
        faa_deq = faa_of(self.deq_idx, 1)
        read_head = read_of(head)
        while True:
            deq = yield read_deq
            enq = yield read_enq
            if deq >= enq:
                return None  # observed empty
            i = yield faa_deq
            sid, ci = divmod(i, _SEG)
            # Inlined _find_segment fast case (see enqueue).
            cur = yield read_head
            if cur.id == sid:
                seen = yield read_head
                if seen.id < cur.id:
                    yield Cas(head, seen, cur)
                seg = cur
            else:
                seg = yield from self._find_segment(head, sid, cur=cur)
            value = yield GetAndSet(seg.cells[ci], _BROKEN)
            if value is not None:
                return value
            # Poisoned an empty cell; its enqueuer will skip it.
