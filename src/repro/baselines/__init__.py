"""Baselines the paper evaluates against, plus their queue substrates."""

from .faa_queue import FAAQueue
from .go_channel import GoChannel
from .java_sync_queue import ScherersSyncQueue
from .kotlin_legacy import KotlinLegacyChannel
from .koval_2019 import KovalChannel2019
from .mpdq import MPDQSyncQueue
from .ms_queue import MSNode, MSQueue

__all__ = [
    "MSQueue",
    "MSNode",
    "FAAQueue",
    "ScherersSyncQueue",
    "KovalChannel2019",
    "GoChannel",
    "KotlinLegacyChannel",
    "MPDQSyncQueue",
]
