"""``python -m repro.net`` — serve named channels over TCP.

Prints the bound port on the first stdout line (``--port 0`` picks an
ephemeral port), which is what scripted harnesses capture::

    PYTHONPATH=src python -m repro.net --port 0 > port.txt &
    PORT=$(head -1 port.txt)

``python -m repro.net.server`` is the same entry point.
"""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
