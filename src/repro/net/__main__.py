"""``python -m repro.net`` — serve named channels over TCP.

Prints the bound port on the first stdout line (``--port 0`` picks an
ephemeral port), which is what scripted harnesses capture::

    PYTHONPATH=src python -m repro.net --port 0 > port.txt &
    PORT=$(head -1 port.txt)

``--protocol {1,2}`` caps the negotiated wire protocol (``1`` pins the
server to the JSON protocol for compatibility measurements).
``python -m repro.net.server`` is the same entry point.
"""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
