"""Load generator for the networked channel service.

Drives N producer clients and M consumer clients — each on its **own
TCP connection** — through one named channel on a server, measuring
end-to-end op latency client-side into a
:class:`~repro.obs.metrics.MetricsRegistry` histogram (the same exact
nearest-rank p50/p99 machinery the simulator benchmarks use).

Measurement hygiene (changed with protocol v2, and reflected in the
report schema):

* **Warmup before the measured window.**  Every connection is opened,
  version-negotiated, and exercised with ``warmup`` no-op round trips
  (try-receives against an empty side channel) *before* the clock
  starts — previously the first op of each connection paid TCP setup
  and codec warmup inside the latency percentiles.  The report carries
  ``warmup_ops_per_conn`` so rows are self-describing.
* **Pipelining window.**  Each producer/consumer keeps up to ``window``
  ops in flight on its connection (``window=1`` reproduces the old
  serial behavior).  Pipelined submission is what op batching (BATCH
  frames) feeds on, so the same window must be used when A/B-ing
  protocol arms.
* **Bytes payloads.**  Elements are ``bytes`` (an 8-byte producer/seq
  header plus padding to ``payload_bytes``): protocol v2 ships them
  struct-packed, v1 ships them base64-inside-JSON — both arms carry
  the same logical payload.

The workload is loss-accounted: every producer tags messages with
``(producer, seq)``, consumers check off what arrives, and the report
carries ``ops_submitted`` / ``ops_completed`` so a harness can assert
nothing was dropped.  Producers close the channel once all sends are
acked; consumers drain until the close propagates — so a correct run
always terminates, and a lossy one fails the count, never hangs.

Used by ``python -m repro.bench net`` (see
:func:`repro.bench.__main__.cmd_net`) and the CI ``net-smoke`` /
``net-perf-smoke`` steps.
"""

from __future__ import annotations

import asyncio
import struct
import time
from typing import Any, Optional

from ..obs.metrics import MetricsRegistry
from .client import connect
from .protocol import PROTOCOL_V2

__all__ = ["run_load", "format_report"]

_SEQ_HEADER = struct.Struct("!II")


async def run_load(
    host: str,
    port: int,
    *,
    producers: int = 4,
    consumers: int = 4,
    ops: int = 2000,
    capacity: int = 64,
    payload_bytes: int = 64,
    channel: str = "bench",
    channels: int = 1,
    deadline: Optional[float] = 30.0,
    protocol: int = PROTOCOL_V2,
    batch: bool = True,
    window: int = 16,
    warmup: int = 16,
    metrics: Optional[MetricsRegistry] = None,
    producer_base: int = 0,
    start_gate=None,
    include_samples: bool = False,
) -> dict[str, Any]:
    """Run the N-producer/M-consumer workload; returns the report row.

    ``ops`` is the total number of messages pushed through the channel
    (split evenly across producers).  ``protocol``/``batch`` select the
    wire arm (v1 JSON, v2 binary, v2 batched); ``window`` bounds each
    connection's in-flight ops; ``warmup`` no-op round trips run per
    connection before the measured window.  Latency histograms land in
    ``metrics`` under ``net_op_latency_us{op=send|receive}``.

    Cluster-aware knobs: ``channels > 1`` spreads the workload over
    ``{channel}.{k}`` names (producer/consumer ``i`` drives channel ``i
    % channels``), so a sharded server spreads the load over workers
    instead of serializing everything on one owner.  ``producer_base``
    offsets producer ids so multi-process drivers keep ``(producer,
    seq)`` tags globally unique; ``start_gate`` (a blocking callable,
    e.g. ``multiprocessing.Barrier.wait``) runs between connection
    setup and the measured window so process spawn/warmup cost never
    lands inside the clock; ``include_samples`` attaches the raw
    latency samples to the row for exact cross-process percentile
    merges.
    """

    if channels < 1:
        raise ValueError("channels must be positive")
    if producers < channels or consumers < channels:
        raise ValueError("need at least one producer and one consumer per channel")
    if ops < 1:
        raise ValueError("ops must be positive")
    if window < 1:
        raise ValueError("window must be positive")
    registry = metrics if metrics is not None else MetricsRegistry()
    send_hist = registry.histogram("net_op_latency_us", op="send")
    recv_hist = registry.histogram("net_op_latency_us", op="receive")
    pad = b"x" * max(0, payload_bytes - _SEQ_HEADER.size)
    per_producer = [ops // producers] * producers
    for i in range(ops % producers):
        per_producer[i] += 1

    names = [channel] if channels == 1 else [f"{channel}.{k}" for k in range(channels)]
    #: Producers still sending per channel; the last one out closes it.
    producers_left = [sum(1 for i in range(producers) if i % channels == k)
                      for k in range(channels)]

    received: set[tuple[int, int]] = set()
    sent_acked = 0
    negotiated = 0
    warmup_channel = f"{channel}.warmup"

    async def setup(name: str):
        """Connect, open both channels, and run the warmup round trips.

        Everything here happens before the measured window: TCP setup,
        HELLO negotiation, and ``warmup`` try-receives against the empty
        warmup channel (no side effects on the bench channel) that prime
        the codec and registry paths on both ends.
        """

        nonlocal negotiated
        # Per-op deadlines would put an asyncio timer on every measured
        # op (~15% of wall in profiles); the run is guarded by one
        # whole-workload watchdog below instead.
        client = await connect(host, port, deadline=None, protocol=protocol, batch=batch)
        negotiated = max(negotiated, client.version)
        ch = await client.channel(name, capacity=capacity)
        warm = await client.channel(warmup_channel, capacity=1)
        for _ in range(warmup):
            await warm.try_receive()
        return client, ch

    async def producer(idx: int, count: int, conn) -> None:
        nonlocal sent_acked
        client, ch = conn
        pid = producer_base + idx
        chan_idx = idx % channels

        async def worker(lo: int, hi: int) -> None:
            nonlocal sent_acked
            for seq in range(lo, hi):
                value = _SEQ_HEADER.pack(pid, seq) + pad
                t0 = time.perf_counter()
                await ch.send(value)
                send_hist.observe((time.perf_counter() - t0) * 1e6)
                sent_acked += 1

        try:
            # ``window`` workers share the connection, keeping up to
            # ``window`` sends pipelined (and batchable) at once.
            lanes = min(window, count) or 1
            bounds = [count * i // lanes for i in range(lanes + 1)]
            await asyncio.gather(
                *(worker(bounds[i], bounds[i + 1]) for i in range(lanes))
            )
            producers_left[chan_idx] -= 1
            if producers_left[chan_idx] == 0:
                # Last producer out closes the channel: consumers see the
                # close only after every buffered element drains.
                await ch.close()
        finally:
            await client.close()

    async def consumer(cid: int, conn) -> None:
        client, ch = conn

        async def worker() -> None:
            while True:
                t0 = time.perf_counter()
                ok, value = await ch.receive_catching()
                if not ok:
                    return
                recv_hist.observe((time.perf_counter() - t0) * 1e6)
                received.add(_SEQ_HEADER.unpack_from(value))

        try:
            await asyncio.gather(*(worker() for _ in range(window)))
        finally:
            await client.close()

    # Warm every connection before the clock starts: the measured window
    # contains steady-state channel ops only.
    conns = await asyncio.gather(
        *(setup(names[i % channels]) for i in range(producers)),
        *(setup(names[i % channels]) for i in range(consumers)),
    )

    if start_gate is not None:
        # Rendezvous with sibling driver processes (and the parent's
        # clock) only after every connection is warmed: process spawn
        # and TCP setup stay out of the measured window.
        await asyncio.get_running_loop().run_in_executor(None, start_gate)

    wall_start = time.perf_counter()
    work = asyncio.gather(
        *(producer(i, n, conns[i]) for i, n in enumerate(per_producer)),
        *(consumer(i, conns[producers + i]) for i in range(consumers)),
    )
    # One watchdog for the whole run: a lossy or wedged run fails loudly
    # instead of hanging, without per-op timer overhead.
    if deadline is None:
        await work
    else:
        await asyncio.wait_for(work, timeout=deadline)
    wall = time.perf_counter() - wall_start

    row = {
        "channel": channel,
        "channels": channels,
        "capacity": capacity,
        "producers": producers,
        "consumers": consumers,
        "payload_bytes": payload_bytes,
        "protocol": negotiated,
        "batch": bool(batch) and negotiated >= PROTOCOL_V2,
        "window": window,
        "warmup_ops_per_conn": warmup,
        "ops_submitted": ops,
        "ops_acked": sent_acked,
        "ops_completed": len(received),
        "wall_s": round(wall, 6),
        "throughput_ops_s": round(ops / wall, 1) if wall > 0 else float("inf"),
        "send_p50_us": send_hist.p50,
        "send_p99_us": send_hist.p99,
        "recv_p50_us": recv_hist.p50,
        "recv_p99_us": recv_hist.p99,
    }
    if include_samples:
        row["send_samples"] = list(send_hist.samples)
        row["recv_samples"] = list(recv_hist.samples)
    return row


def format_report(row: dict[str, Any]) -> str:
    """Human-readable summary of one :func:`run_load` report row."""

    arm = f"v{row.get('protocol', 1)}" + ("+batch" if row.get("batch") else "")
    lines = [
        f"net load — {row['producers']}p/{row['consumers']}c over channel "
        f"{row['channel']!r} (capacity {row['capacity']}, {row['payload_bytes']}B payloads, "
        f"{arm}, window {row.get('window', 1)}, {row.get('warmup_ops_per_conn', 0)} warmup ops/conn)",
        f"  ops: {row['ops_completed']}/{row['ops_submitted']} completed "
        f"({row['ops_acked']} send-acked) in {row['wall_s']:.3f}s",
        f"  throughput: {row['throughput_ops_s']:,.1f} ops/s",
        f"  send latency: p50 {row['send_p50_us']:.0f}us  p99 {row['send_p99_us']:.0f}us",
        f"  recv latency: p50 {row['recv_p50_us']:.0f}us  p99 {row['recv_p99_us']:.0f}us",
    ]
    return "\n".join(lines)
