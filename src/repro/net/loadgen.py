"""Load generator for the networked channel service.

Drives N producer clients and M consumer clients — each on its **own
TCP connection** — through one named channel on a server, measuring
end-to-end op latency client-side into a
:class:`~repro.obs.metrics.MetricsRegistry` histogram (the same exact
nearest-rank p50/p99 machinery the simulator benchmarks use).

The workload is loss-accounted: every producer tags messages with
``(producer, seq)``, consumers check off what arrives, and the report
carries ``ops_submitted`` / ``ops_completed`` so a harness can assert
nothing was dropped.  Producers close the channel once all sends are
acked; consumers drain until the close propagates — so a correct run
always terminates, and a lossy one fails the count, never hangs.

Used by ``python -m repro.bench net`` (see
:func:`repro.bench.__main__.cmd_net`) and the CI ``net-smoke`` step.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Optional

from ..obs.metrics import MetricsRegistry
from .client import connect

__all__ = ["run_load", "format_report"]


async def run_load(
    host: str,
    port: int,
    *,
    producers: int = 4,
    consumers: int = 4,
    ops: int = 2000,
    capacity: int = 64,
    payload_bytes: int = 64,
    channel: str = "bench",
    deadline: Optional[float] = 30.0,
    metrics: Optional[MetricsRegistry] = None,
) -> dict[str, Any]:
    """Run the N-producer/M-consumer workload; returns the report row.

    ``ops`` is the total number of messages pushed through the channel
    (split evenly across producers).  Latency histograms land in
    ``metrics`` under ``net_op_latency_us{op=send|receive}``.
    """

    if producers < 1 or consumers < 1:
        raise ValueError("need at least one producer and one consumer")
    if ops < 1:
        raise ValueError("ops must be positive")
    registry = metrics if metrics is not None else MetricsRegistry()
    send_hist = registry.histogram("net_op_latency_us", op="send")
    recv_hist = registry.histogram("net_op_latency_us", op="receive")
    pad = "x" * payload_bytes
    per_producer = [ops // producers] * producers
    for i in range(ops % producers):
        per_producer[i] += 1

    received: set[tuple[int, int]] = set()
    sent_acked = 0
    producers_done = 0

    async def producer(pid: int, count: int) -> None:
        nonlocal sent_acked, producers_done
        client = await connect(host, port, deadline=deadline)
        try:
            ch = await client.channel(channel, capacity=capacity)
            for seq in range(count):
                t0 = time.perf_counter()
                await ch.send({"p": pid, "seq": seq, "pad": pad})
                send_hist.observe((time.perf_counter() - t0) * 1e6)
                sent_acked += 1
            producers_done += 1
            if producers_done == producers:
                # Last producer out closes the channel: consumers see the
                # close only after every buffered element drains.
                await ch.close()
        finally:
            await client.close()

    async def consumer(cid: int) -> None:
        client = await connect(host, port, deadline=deadline)
        try:
            ch = await client.channel(channel, capacity=capacity)
            while True:
                t0 = time.perf_counter()
                ok, value = await ch.receive_catching()
                if not ok:
                    return
                recv_hist.observe((time.perf_counter() - t0) * 1e6)
                received.add((value["p"], value["seq"]))
        finally:
            await client.close()

    wall_start = time.perf_counter()
    await asyncio.gather(
        *(producer(i, n) for i, n in enumerate(per_producer)),
        *(consumer(i) for i in range(consumers)),
    )
    wall = time.perf_counter() - wall_start

    return {
        "channel": channel,
        "capacity": capacity,
        "producers": producers,
        "consumers": consumers,
        "payload_bytes": payload_bytes,
        "ops_submitted": ops,
        "ops_acked": sent_acked,
        "ops_completed": len(received),
        "wall_s": round(wall, 6),
        "throughput_ops_s": round(ops / wall, 1) if wall > 0 else float("inf"),
        "send_p50_us": send_hist.p50,
        "send_p99_us": send_hist.p99,
        "recv_p50_us": recv_hist.p50,
        "recv_p99_us": recv_hist.p99,
    }


def format_report(row: dict[str, Any]) -> str:
    """Human-readable summary of one :func:`run_load` report row."""

    lines = [
        f"net load — {row['producers']}p/{row['consumers']}c over channel "
        f"{row['channel']!r} (capacity {row['capacity']}, {row['payload_bytes']}B payloads)",
        f"  ops: {row['ops_completed']}/{row['ops_submitted']} completed "
        f"({row['ops_acked']} send-acked) in {row['wall_s']:.3f}s",
        f"  throughput: {row['throughput_ops_s']:,.1f} ops/s",
        f"  send latency: p50 {row['send_p50_us']:.0f}us  p99 {row['send_p99_us']:.0f}us",
        f"  recv latency: p50 {row['recv_p50_us']:.0f}us  p99 {row['recv_p99_us']:.0f}us",
    ]
    return "\n".join(lines)
