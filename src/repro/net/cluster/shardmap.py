"""Consistent-hash shard map: channel name -> owning worker.

Every worker (and the loadgen driver, and any diagnostic tool) must
compute the *same* owner for the same channel name, across processes
and Python invocations — so the hash is ``zlib.crc32`` (stable, no
``PYTHONHASHSEED`` dependence; the same function the registry uses for
its internal shards) over a classic consistent-hash ring with virtual
nodes.

Virtual nodes smooth the load split: with ``replicas=64`` points per
worker the max/min channel-count imbalance across workers stays within
a few percent for realistic channel counts.  Consistency matters for
the supervisor's restart path: a ring built from the same ``(worker
count, replicas)`` is byte-identical, so a restarted worker rejoins
owning exactly the shards its predecessor owned.
"""

from __future__ import annotations

import bisect
import zlib

__all__ = ["ShardMap", "DEFAULT_REPLICAS"]

#: Virtual nodes per worker on the hash ring.
DEFAULT_REPLICAS = 64


class ShardMap:
    """Immutable mapping of channel names onto ``workers`` ring slots."""

    __slots__ = ("workers", "replicas", "_ring", "_owners")

    def __init__(self, workers: int, *, replicas: int = DEFAULT_REPLICAS):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        self.workers = workers
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for worker in range(workers):
            for replica in range(replicas):
                point = zlib.crc32(f"worker-{worker}-vnode-{replica}".encode("ascii"))
                points.append((point, worker))
        points.sort()
        self._ring = [p for p, _ in points]
        self._owners = [w for _, w in points]

    def owner_of(self, name: str) -> int:
        """The worker index owning channel ``name`` (total function)."""

        if self.workers == 1:
            return 0
        point = zlib.crc32(name.encode("utf-8"))
        idx = bisect.bisect_right(self._ring, point)
        if idx == len(self._ring):  # wrap around the ring
            idx = 0
        return self._owners[idx]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardMap)
            and other.workers == self.workers
            and other.replicas == self.replicas
        )

    def __hash__(self) -> int:
        return hash((self.workers, self.replicas))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardMap(workers={self.workers}, replicas={self.replicas})"
