"""Cross-worker op routing: shard lookup plus FORWARD relays.

Each worker owns one :class:`ClusterRouter`.  It answers two questions
— *who owns this channel* (:meth:`ClusterRouter.owner_of`, pure
:class:`~repro.net.cluster.shardmap.ShardMap` math) and *is it mine*
(:meth:`ClusterRouter.is_local`) — and carries the mechanics of acting
on the answer: persistent :class:`~repro.net.client.NetClient`
connections to every peer worker (lazily opened, deduplicated, rebuilt
after a peer restart) and :meth:`ClusterRouter.forward`, which relays
one request frame inside a ``FORWARD`` container and returns the
owner's *raw* reply frame.

Retry policy is deliberately asymmetric:

* An ``OWNER`` redirect (shard-map disagreement, e.g. mid-resize) is
  retried against the named worker — the op was *not* executed, so the
  retry is safe.  One redirect is allowed; a second means the maps are
  oscillating and the op fails loudly.
* A connection lost *mid-relay* is **never** retried: a ``SEND`` may
  have executed on the owner with only its ack lost, and retrying
  would double-apply it.  The error propagates and the server reports
  the §4.3 interrupt flavor to the origin client.  The dead client is
  dropped, so the *next* op lazily reconnects — a restarted worker
  heals the mesh without coordination.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Optional

from ...errors import ConnectionLostError, RemoteOpError
from ..client import NetClient, connect
from ..protocol import PROTOCOL_V2, Frame, OP_OWNER
from .shardmap import ShardMap

__all__ = ["ClusterRouter"]


class ClusterRouter:
    """One worker's view of the cluster: shard map + peer connections."""

    def __init__(
        self,
        worker_id: int,
        shard_map: ShardMap,
        peers: Optional[dict[int, tuple[str, int]]] = None,
        *,
        deadline: Optional[float] = None,
        batch: bool = True,
    ):
        self.worker_id = worker_id
        self.shard_map = shard_map
        #: worker id -> (host, direct port); excludes (or ignores) self.
        self._peers: dict[int, tuple[str, int]] = dict(peers or {})
        self.deadline = deadline
        self.batch = batch
        self._clients: dict[int, NetClient] = {}
        self._connecting: dict[int, asyncio.Task] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # shard math

    def owner_of(self, name: str) -> int:
        return self.shard_map.owner_of(name)

    def is_local(self, name: str) -> bool:
        return self.shard_map.owner_of(name) == self.worker_id

    # ------------------------------------------------------------------
    # peer table

    def set_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        """Install a new peer table (supervisor restart broadcast).

        Existing connections to workers whose address changed are
        dropped so the next forward reconnects to the new incarnation.
        """

        stale = [
            worker
            for worker, client in self._clients.items()
            if peers.get(worker) != self._peers.get(worker)
        ]
        self._peers = dict(peers)
        for worker in stale:
            client = self._clients.pop(worker, None)
            if client is not None:
                asyncio.get_running_loop().create_task(client.close())

    # ------------------------------------------------------------------
    # relaying

    async def forward(self, frame: Frame, *, timeout: Optional[float] = None) -> Frame:
        """Relay ``frame`` to the owning worker; the raw reply frame.

        ``frame`` is the original request (op, req_id, payload) as
        decoded from the origin client; its req_id is only meaningful
        to the caller — the relay connection correlates on its own ids.
        """

        name = (frame.payload or {}).get("channel", "")
        target = self.shard_map.owner_of(name)
        reply: Optional[Frame] = None
        for redirects in range(2):
            client = await self._client_for(target)
            try:
                reply = await client.forward(frame, timeout=timeout or self.deadline)
            except ConnectionLostError:
                # Mid-relay loss: never retried (the op may have run).
                self._drop_client(target, client)
                raise
            if reply.op != OP_OWNER:
                return reply
            # Shard-map disagreement: the peer told us who really owns
            # the channel.  The op did not execute — retry once there.
            target = int(reply.payload.get("worker", target))
        raise RemoteOpError(
            f"workers disagree about the owner of channel {name!r} "
            f"(last redirect pointed at worker {target})"
        )

    async def _client_for(self, worker: int) -> NetClient:
        client = self._clients.get(worker)
        if client is not None and client.connected:
            return client
        pending = self._connecting.get(worker)
        if pending is None:
            pending = asyncio.get_running_loop().create_task(self._connect(worker))
            self._connecting[worker] = pending
            pending.add_done_callback(
                lambda _t, w=worker: self._connecting.pop(w, None)
            )
        # Shield: cancelling one forwarded op must not kill the connect
        # other forwards are waiting on.
        return await asyncio.shield(pending)

    async def _connect(self, worker: int) -> NetClient:
        addr = self._peers.get(worker)
        if addr is None:
            raise ConnectionLostError(f"no known address for worker {worker}")
        host, port = addr
        client = await connect(
            host, port, protocol=PROTOCOL_V2, batch=self.batch, deadline=self.deadline
        )
        old = self._clients.get(worker)
        self._clients[worker] = client
        if old is not None and old is not client:
            with contextlib.suppress(Exception):
                await old.close()
        return client

    def _drop_client(self, worker: int, client: NetClient) -> None:
        if self._clients.get(worker) is client:
            self._clients.pop(worker, None)

    async def close(self) -> None:
        self._closed = True
        for task in list(self._connecting.values()):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._connecting.clear()
        clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            with contextlib.suppress(Exception):
                await client.close()
