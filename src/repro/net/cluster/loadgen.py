"""Multi-process load driver: scale offered load past one client loop.

One asyncio loop maxes out around the same point on both sides of the
socket — a cluster server with a single-loop *driver* just moves the
bottleneck into the benchmark harness.  :func:`run_load_procs` spawns
``client_procs`` driver processes, each running the standard
:func:`repro.net.loadgen.run_load` workload against the server's
public port, and merges their report rows into one.

Correctness of the merge:

* **Clock.** All processes rendezvous on a :class:`multiprocessing.Barrier`
  *after* connection setup/warmup and *before* their measured windows,
  and the parent measures wall-clock from barrier release to the last
  row collected — so process spawn and interpreter startup are outside
  the window, and aggregate throughput is total ops over the union
  window, not a sum of per-process rates with disjoint windows.
* **Loss accounting.** Each child drives its own channel namespace
  (``{channel}.cp{k}``) with producer ids offset by ``producer_base``,
  so ``(producer, seq)`` tags stay globally unique and per-child
  close/drain semantics need no cross-process coordination.
* **Latency.** Children ship their raw histogram samples
  (``include_samples``) and the parent re-observes them into fresh
  histograms — exact nearest-rank percentiles over the union, not an
  average of per-process percentiles.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Optional

from ...obs.metrics import Histogram
from ..protocol import PROTOCOL_V2

__all__ = ["run_load_procs"]


def _driver_main(conn, barrier, kwargs: dict) -> None:
    """Child entry point: run one ``run_load`` and ship the row back."""

    import asyncio

    from ..loadgen import run_load

    try:
        row = asyncio.run(run_load(start_gate=barrier.wait, **kwargs))
        conn.send(("row", row))
    except BaseException as exc:  # noqa: BLE001 - parent re-raises
        try:
            barrier.abort()
        except Exception:
            pass
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def run_load_procs(
    host: str,
    port: int,
    *,
    client_procs: int = 2,
    producers: int = 4,
    consumers: int = 4,
    ops: int = 2000,
    capacity: int = 64,
    payload_bytes: int = 64,
    channel: str = "bench",
    channels: int = 1,
    deadline: Optional[float] = 60.0,
    protocol: int = PROTOCOL_V2,
    batch: bool = True,
    window: int = 16,
    warmup: int = 16,
) -> dict[str, Any]:
    """Drive the workload from ``client_procs`` processes; merged row.

    ``producers``/``consumers``/``ops`` are *per process* totals split
    exactly as :func:`run_load` splits them, so a ``client_procs=2``
    run offers twice the load of a ``client_procs=1`` run with the same
    arguments.  ``channels`` is per process too (each process has its
    own namespace).  Blocking call — run it from a non-async context.
    """

    if client_procs < 1:
        raise ValueError("client_procs must be positive")
    import time

    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    # Parties: every driver + the parent (which holds the clock).
    barrier = ctx.Barrier(client_procs + 1)
    procs = []
    conns = []
    for k in range(client_procs):
        parent_conn, child_conn = ctx.Pipe()
        kwargs = dict(
            host=host,
            port=port,
            producers=producers,
            consumers=consumers,
            ops=ops,
            capacity=capacity,
            payload_bytes=payload_bytes,
            channel=f"{channel}.cp{k}" if client_procs > 1 else channel,
            channels=channels,
            deadline=deadline,
            protocol=protocol,
            batch=batch,
            window=window,
            warmup=warmup,
            producer_base=k * producers,
            include_samples=True,
        )
        proc = ctx.Process(
            target=_driver_main,
            args=(child_conn, barrier, kwargs),
            name=f"repro-loadgen-{k}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        procs.append(proc)
        conns.append(parent_conn)

    try:
        # All children are connected and warmed when the barrier trips;
        # wall-clock starts the instant they are released.
        barrier.wait(timeout=deadline)
        wall_start = time.perf_counter()
        rows = []
        for k, conn in enumerate(conns):
            kind, payload = conn.recv()
            if kind == "error":
                raise RuntimeError(f"load driver {k} failed: {payload}")
            rows.append(payload)
        wall = time.perf_counter() - wall_start
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - wedged child
                proc.terminate()
                proc.join(timeout=1.0)

    send_hist, recv_hist = Histogram(), Histogram()
    for row in rows:
        for v in row.pop("send_samples", ()):
            send_hist.observe(v)
        for v in row.pop("recv_samples", ()):
            recv_hist.observe(v)
    total_ops = sum(r["ops_submitted"] for r in rows)
    merged = {
        "channel": channel,
        "channels": channels,
        "client_procs": client_procs,
        "capacity": capacity,
        "producers": sum(r["producers"] for r in rows),
        "consumers": sum(r["consumers"] for r in rows),
        "payload_bytes": payload_bytes,
        "protocol": max(r["protocol"] for r in rows),
        "batch": any(r["batch"] for r in rows),
        "window": window,
        "warmup_ops_per_conn": warmup,
        "ops_submitted": total_ops,
        "ops_acked": sum(r["ops_acked"] for r in rows),
        "ops_completed": sum(r["ops_completed"] for r in rows),
        "wall_s": round(wall, 6),
        "throughput_ops_s": round(total_ops / wall, 1) if wall > 0 else float("inf"),
        "send_p50_us": send_hist.p50,
        "send_p99_us": send_hist.p99,
        "recv_p50_us": recv_hist.p50,
        "recv_p99_us": recv_hist.p99,
    }
    return merged
