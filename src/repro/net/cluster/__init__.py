"""Multi-worker sharded channel service (one event loop per core).

The single-loop :class:`~repro.net.server.ChannelServer` serializes
all dispatch on one core; this package scales it out.  A cluster is N
full ChannelServers ("workers") behind one ``SO_REUSEPORT`` public
port, each owning the channels a consistent-hash
:class:`~repro.net.cluster.shardmap.ShardMap` assigns it.  Any client
can talk to any worker: ops against a channel another worker owns are
relayed over persistent inter-worker v2 connections (``FORWARD`` /
``OWNER`` frames — workers are just clients of each other), preserving
blocking, close-vs-cancel, and interrupt semantics end-to-end.

Two deployments share all of that machinery:

* :func:`serve_cluster` / :class:`ClusterServer` — every worker in the
  calling process's event loop.  Concurrency without parallelism; what
  the test suite runs against.
* :class:`ClusterSupervisor` — one OS process per worker, spawned,
  health-checked, and restarted by a supervisor
  (``python -m repro.net --workers N``).  Real multi-core dispatch.

:func:`run_load_procs` is the matching driver side: ``--client-procs``
load-generator processes so the *offered* load also scales past one
event loop.  See DESIGN.md §12.
"""

from .loadgen import run_load_procs
from .router import ClusterRouter
from .server import ClusterServer, serve_cluster
from .shardmap import DEFAULT_REPLICAS, ShardMap
from .supervisor import ClusterSupervisor, WorkerSpec

__all__ = [
    "ClusterServer",
    "serve_cluster",
    "ClusterRouter",
    "ClusterSupervisor",
    "WorkerSpec",
    "ShardMap",
    "DEFAULT_REPLICAS",
    "run_load_procs",
]
