"""Process supervisor: one worker process per core, restarted on death.

The supervisor owns the cluster's *public port* — it binds a
placeholder ``SO_REUSEPORT`` socket that never listens, which reserves
the port (and the reuseport group) even while every worker is dead —
then spawns one child process per worker.  Each child runs exactly one
event loop with one :class:`~repro.net.server.ChannelServer` (public
``SO_REUSEPORT`` socket + private direct socket) — the same worker the
in-process :class:`~repro.net.cluster.server.ClusterServer` builds,
just with the GIL out of the picture.

Control protocol (one :func:`multiprocessing.Pipe` per worker, tuples
of ``(kind, worker_id, payload)`` from the child / ``(kind, payload)``
from the supervisor):

1. child binds its sockets → ``("ready", id, direct_port)``
2. supervisor collects every direct port → ``("peers", {id: port})``
3. child builds its router, starts serving → ``("serving", id, port)``
4. steady state: ``("stats", None)`` ⇄ ``("stats", id, {...})``;
   ``("peers", table)`` re-broadcasts after a restart;
   ``("stop", None)`` → graceful drain → ``("stopped", id, None)``

Health checking is :meth:`ClusterSupervisor.poll`: a dead worker is
respawned with the *same* worker id — the shard map depends only on
``(worker count, replicas)``, so the replacement owns exactly the dead
worker's shards — and the new direct port is re-broadcast; peers drop
their stale relay connections and reconnect lazily.  Channel *state*
on the dead worker is lost (channels are in-memory); in-flight ops
against it surface the §4.3 interrupt flavor, exactly like a server
restart in the single-worker world.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import multiprocessing as mp
import socket
import sys
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..protocol import MAX_FRAME_BYTES, PROTOCOL_V2
from ..registry import DEFAULT_SHARDS, ChannelRegistry
from ..server import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_MAX_INFLIGHT_BYTES,
    ChannelServer,
)
from .router import ClusterRouter
from .server import _peer_host, _reuseport_sockets
from .shardmap import DEFAULT_REPLICAS, ShardMap

__all__ = ["WorkerSpec", "ClusterSupervisor", "supervisor_main"]


def _mp_context():
    """Prefer fork (fast, inherits nothing we rely on); spawn-safe too."""

    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


@dataclass
class WorkerSpec:
    """Everything a worker process needs to build itself (picklable)."""

    worker_id: int
    workers: int
    host: str
    port: int  # resolved public port (the supervisor's placeholder fixed it)
    replicas: int = DEFAULT_REPLICAS
    shards: int = DEFAULT_SHARDS
    idle_seconds: float = 300.0
    gc_interval: Optional[float] = None
    protocol: int = PROTOCOL_V2
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    max_inflight_bytes: int = DEFAULT_MAX_INFLIGHT_BYTES
    max_frame_bytes: int = MAX_FRAME_BYTES


def _worker_main(spec: WorkerSpec, conn) -> None:
    """Child-process entry point (module-level: spawn-picklable)."""

    try:
        asyncio.run(_worker_async(spec, conn))
    except KeyboardInterrupt:  # pragma: no cover - ^C races the parent's stop
        pass


async def _worker_async(spec: WorkerSpec, conn) -> None:
    loop = asyncio.get_running_loop()
    # Public socket joins the supervisor's reuseport group; the direct
    # socket is this worker's private address for peer relays.
    public = _reuseport_sockets(spec.host, spec.port, 1, reuseport=True)[0]
    direct = _reuseport_sockets(spec.host, 0, 1, reuseport=False)[0]
    direct_port = direct.getsockname()[1]
    conn.send(("ready", spec.worker_id, direct_port))
    kind, table = await loop.run_in_executor(None, conn.recv)
    assert kind == "peers", f"expected the peer table, got {kind!r}"
    peer_host = _peer_host(spec.host)
    router = ClusterRouter(
        spec.worker_id,
        ShardMap(spec.workers, replicas=spec.replicas),
        {int(w): (peer_host, int(p)) for w, p in table.items()},
    )
    registry = ChannelRegistry(spec.shards, idle_seconds=spec.idle_seconds)
    server = ChannelServer(
        registry,
        router=router,
        worker_id=spec.worker_id,
        max_inflight=spec.max_inflight,
        max_inflight_bytes=spec.max_inflight_bytes,
        max_frame_bytes=spec.max_frame_bytes,
        protocol=spec.protocol,
        gc_interval=spec.gc_interval,
    )
    await server.start(socks=[public, direct])
    conn.send(("serving", spec.worker_id, direct_port))
    try:
        while True:
            try:
                msg = await loop.run_in_executor(None, conn.recv)
            except (EOFError, OSError):
                break  # supervisor died: drain and exit
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "peers":
                router.set_peers(
                    {int(w): (peer_host, int(p)) for w, p in msg[1].items()}
                )
            elif kind == "stats":
                conn.send(
                    (
                        "stats",
                        spec.worker_id,
                        {
                            "worker": spec.worker_id,
                            "port": direct_port,
                            "ops": server.ops_served,
                            "forwards_out": server.forwards_out,
                            "forwards_in": server.forwards_in,
                            "channels": len(registry),
                        },
                    )
                )
    finally:
        await server.shutdown(drain=True, timeout=5.0)
        await router.close()
        with contextlib.suppress(Exception):
            conn.send(("stopped", spec.worker_id, None))


class ClusterSupervisor:
    """Spawn, health-check, and restart a cluster of worker processes."""

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = DEFAULT_REPLICAS,
        shards: int = DEFAULT_SHARDS,
        idle_seconds: float = 300.0,
        gc_interval: Optional[float] = None,
        protocol: int = PROTOCOL_V2,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_inflight_bytes: int = DEFAULT_MAX_INFLIGHT_BYTES,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        start_timeout: float = 30.0,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._spec_kwargs = dict(
            workers=workers,
            host=host,
            replicas=replicas,
            shards=shards,
            idle_seconds=idle_seconds,
            gc_interval=gc_interval,
            protocol=protocol,
            max_inflight=max_inflight,
            max_inflight_bytes=max_inflight_bytes,
            max_frame_bytes=max_frame_bytes,
        )
        self.start_timeout = start_timeout
        self._ctx = _mp_context()
        self._placeholder: Optional[socket.socket] = None
        self._procs: dict[int, Any] = {}
        self._conns: dict[int, Any] = {}
        #: worker id -> direct port (refreshed on restart).
        self.worker_ports: dict[int, int] = {}
        self.restarts = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "ClusterSupervisor":
        """Reserve the public port, spawn every worker, mesh them up."""

        if not hasattr(socket, "SO_REUSEPORT"):
            raise OSError(
                "SO_REUSEPORT is not available on this platform; "
                "a multi-worker cluster needs kernel accept balancing"
            )
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        placeholder.bind((self.host, self._requested_port))
        # Bound but never listening: reserves the port without ever
        # being handed a connection, even with zero live workers.
        self._placeholder = placeholder
        self.port = placeholder.getsockname()[1]
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        for worker_id in range(self.workers):
            self._await_msg(worker_id, "ready")
        self._broadcast_peers()
        for worker_id in range(self.workers):
            self._await_msg(worker_id, "serving")
        return self

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        spec = WorkerSpec(worker_id=worker_id, port=self.port, **self._spec_kwargs)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(spec, child_conn),
            name=f"repro-net-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[worker_id] = proc
        self._conns[worker_id] = parent_conn

    def _await_msg(self, worker_id: int, kind: str, timeout: Optional[float] = None):
        """Wait for one ``kind`` message from a worker (records ports)."""

        conn = self._conns[worker_id]
        proc = self._procs[worker_id]
        deadline = time.monotonic() + (timeout if timeout is not None else self.start_timeout)
        while True:
            if conn.poll(0.05):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    raise RuntimeError(f"worker {worker_id} died during startup")
                if msg[0] == "ready" or msg[0] == "serving":
                    self.worker_ports[msg[1]] = msg[2]
                if msg[0] == kind:
                    return msg
                continue
            if not proc.is_alive():
                raise RuntimeError(
                    f"worker {worker_id} exited (code {proc.exitcode}) "
                    f"before sending {kind!r}"
                )
            if time.monotonic() > deadline:
                raise TimeoutError(f"worker {worker_id} never sent {kind!r}")

    def _broadcast_peers(self) -> None:
        table = dict(self.worker_ports)
        for conn in self._conns.values():
            with contextlib.suppress(OSError, BrokenPipeError):
                conn.send(("peers", table))

    # ------------------------------------------------------------------
    # health

    def poll(self) -> list[int]:
        """Respawn dead workers; returns the ids that were restarted."""

        if self._stopped:
            return []
        restarted = []
        for worker_id, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            with contextlib.suppress(Exception):
                self._conns[worker_id].close()
            proc.join(timeout=1.0)
            self._spawn(worker_id)
            self._await_msg(worker_id, "ready")
            restarted.append(worker_id)
            self.restarts += 1
        if restarted:
            # New direct ports: every worker (old and new) gets the
            # fresh table; routers drop stale relay connections.
            self._broadcast_peers()
            for worker_id in restarted:
                self._await_msg(worker_id, "serving")
        return restarted

    def run_forever(self, poll_interval: float = 1.0) -> None:
        while not self._stopped:
            self.poll()
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # introspection / teardown

    def stats(self, timeout: float = 5.0) -> list[dict[str, Any]]:
        """One row per live worker (dead workers are skipped)."""

        rows = []
        for worker_id, conn in sorted(self._conns.items()):
            if not self._procs[worker_id].is_alive():
                continue
            with contextlib.suppress(OSError, BrokenPipeError):
                conn.send(("stats", None))
                deadline = time.monotonic() + timeout
                while time.monotonic() < deadline:
                    if conn.poll(0.05):
                        msg = conn.recv()
                        if msg[0] == "stats":
                            rows.append(msg[2])
                            break
        return rows

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful stop: every worker drains, stragglers are killed."""

        if self._stopped:
            return
        self._stopped = True
        for conn in self._conns.values():
            with contextlib.suppress(OSError, BrokenPipeError):
                conn.send(("stop", None))
        deadline = time.monotonic() + timeout
        for proc in self._procs.values():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs.values():
            if proc.is_alive():  # pragma: no cover - drain overran the timeout
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns.values():
            with contextlib.suppress(Exception):
                conn.close()
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None


def supervisor_main(args: argparse.Namespace) -> int:
    """``python -m repro.net --workers N`` lands here for ``N > 1``.

    Stdout stays machine-parseable: first line is the public port
    (compatible with the single-worker contract), then one ``worker
    <id> <direct port>`` line per worker.
    """

    sup = ClusterSupervisor(
        args.workers,
        host=args.host,
        port=args.port,
        shards=args.shards,
        idle_seconds=args.idle_seconds,
        gc_interval=args.gc_interval or None,
        protocol=args.protocol,
        max_inflight=args.max_inflight,
        max_inflight_bytes=args.max_inflight_bytes,
        max_frame_bytes=int(args.max_frame_mib * 1024 * 1024),
    )
    sup.start()
    print(sup.port, flush=True)
    for worker_id in sorted(sup.worker_ports):
        print(f"worker {worker_id} {sup.worker_ports[worker_id]}", flush=True)
    print(
        f"repro.net: cluster of {args.workers} workers "
        f"(protocol v{args.protocol}) on {args.host}:{sup.port}",
        file=sys.stderr,
        flush=True,
    )
    try:
        sup.run_forever()
    except KeyboardInterrupt:
        print("repro.net: interrupted, shut down", file=sys.stderr)
    finally:
        sup.stop()
    return 0
