"""In-process cluster: N full ChannelServers behind one shared port.

The cluster's public face is one TCP port that every worker listens on
via ``SO_REUSEPORT`` — the kernel load-balances incoming connections
across the workers' accept queues, so clients need no placement logic.
Each worker additionally listens on a private *direct* port, which is
what peers dial for FORWARD relays (and what tests use to pin a
connection to a specific worker).

This module runs every worker inside the *calling* process's event
loop.  That is the semantic core of the cluster — sharded ownership,
FORWARD/OWNER relaying, registry views — with none of the process
machinery, which makes it the substrate for the test suite and for
:mod:`repro.net.cluster.supervisor`, whose child processes each run
exactly one of these workers on their own loop.  ``SO_REUSEPORT``
behaves identically in both arrangements.

Startup order matters: every socket is *bound* (fixing all ports)
before any worker starts accepting, and each worker's
:class:`~repro.net.cluster.router.ClusterRouter` is installed before
its listener goes live — so there is no window where a connection can
reach a worker that cannot yet forward.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Iterator, Optional

from ..protocol import MAX_FRAME_BYTES, PROTOCOL_V2
from ..registry import DEFAULT_SHARDS, ChannelRegistry
from ..server import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_MAX_INFLIGHT_BYTES,
    ChannelServer,
)
from .router import ClusterRouter
from .shardmap import DEFAULT_REPLICAS, ShardMap

__all__ = ["ClusterServer", "serve_cluster"]


def _reuseport_sockets(host: str, port: int, count: int, *,
                       reuseport: Optional[bool] = None) -> list[socket.socket]:
    """Bind ``count`` listening-ready sockets on one ``(host, port)``.

    ``port=0`` resolves once (the first bind) and the rest share the
    ephemeral port via ``SO_REUSEPORT``.  Sockets are bound but not yet
    listening — callers hand them to ``asyncio.start_server(sock=...)``.
    """

    if reuseport is None:
        reuseport = count > 1
    if reuseport and not hasattr(socket, "SO_REUSEPORT"):
        raise OSError(
            "SO_REUSEPORT is not available on this platform; "
            "a multi-worker cluster needs kernel accept balancing"
        )
    socks: list[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuseport:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            sock.setblocking(False)
            if port == 0:
                port = sock.getsockname()[1]
            socks.append(sock)
    except BaseException:
        for sock in socks:
            sock.close()
        raise
    return socks


def _peer_host(host: str) -> str:
    """The address peers dial: wildcard binds loop back to localhost."""

    return "127.0.0.1" if host in ("", "0.0.0.0", "::") else host


class ClusterRegistryView:
    """Routes :class:`ChannelRegistry` reads across worker registries.

    Tests (and diagnostics) written against ``server.registry`` keep
    working against a cluster: lookups follow the shard map to the
    owning worker's registry, aggregates sum over all of them.
    """

    def __init__(self, cluster: "ClusterServer"):
        self._cluster = cluster

    def _owning(self, name: str):
        owner = self._cluster.shard_map.owner_of(name)
        return self._cluster.workers[owner].registry

    def open(self, name: str, capacity: int = 0, overflow: str = "suspend"):
        return self._owning(name).open(name, capacity, overflow)

    def get(self, name: str):
        return self._owning(name).get(name)

    def remove(self, name: str) -> bool:
        return self._owning(name).remove(name)

    def __contains__(self, name: str) -> bool:
        return name in self._owning(name)

    def __len__(self) -> int:
        return sum(len(w.registry) for w in self._cluster.workers)

    def entries(self) -> Iterator:
        for worker in self._cluster.workers:
            yield from worker.registry.entries()

    def collect_idle(self, *, full: bool = False) -> list[str]:
        collected: list[str] = []
        for worker in self._cluster.workers:
            collected.extend(worker.registry.collect_idle(full=full))
        return collected

    def snapshot(self) -> dict[str, Any]:
        parts = [w.registry.snapshot() for w in self._cluster.workers]
        return {
            "channels": sum(p["channels"] for p in parts),
            "shards": sum(p["shards"] for p in parts),
            "total_opened": sum(p["total_opened"] for p in parts),
            "total_collected": sum(p["total_collected"] for p in parts),
            "entries": sorted(
                (e for p in parts for e in p["entries"]), key=lambda r: r["name"]
            ),
        }


class ClusterServer:
    """N sharded :class:`ChannelServer` workers behind one public port."""

    def __init__(
        self,
        workers: int = 2,
        *,
        obs: Any = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_inflight_bytes: int = DEFAULT_MAX_INFLIGHT_BYTES,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        protocol: int = PROTOCOL_V2,
        gc_interval: Optional[float] = None,
        idle_seconds: float = 300.0,
        shards: int = DEFAULT_SHARDS,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.n_workers = workers
        self.shard_map = ShardMap(workers, replicas=replicas)
        self.obs = obs
        self.metrics = getattr(obs, "metrics", obs)
        self._opts = dict(
            obs=obs,
            max_inflight=max_inflight,
            max_inflight_bytes=max_inflight_bytes,
            max_frame_bytes=max_frame_bytes,
            protocol=protocol,
            gc_interval=gc_interval,
        )
        self._idle_seconds = idle_seconds
        self._shards = shards
        self.workers: list[ChannelServer] = []
        self.routers: list[ClusterRouter] = []
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        #: Per-worker direct (peer/debug) ports, index-aligned.
        self.worker_ports: list[int] = []
        self.registry = ClusterRegistryView(self)

    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "ClusterServer":
        n = self.n_workers
        public = _reuseport_sockets(host, port, n)
        direct = [_reuseport_sockets(host, 0, 1, reuseport=False)[0] for _ in range(n)]
        self.host, self.port = public[0].getsockname()[:2]
        self.worker_ports = [s.getsockname()[1] for s in direct]
        peer_host = _peer_host(host)
        peers = {i: (peer_host, p) for i, p in enumerate(self.worker_ports)}
        for i in range(n):
            registry = ChannelRegistry(
                self._shards, idle_seconds=self._idle_seconds, metrics=self.metrics
            )
            router = ClusterRouter(i, self.shard_map, peers)
            server = ChannelServer(
                registry, router=router, worker_id=i, **self._opts
            )
            self.routers.append(router)
            self.workers.append(server)
        # Routers exist for every worker before any listener goes live.
        for i, server in enumerate(self.workers):
            await server.start(socks=[public[i], direct[i]])
        return self

    async def serve_forever(self) -> None:
        await asyncio.gather(*(w.serve_forever() for w in self.workers))

    async def shutdown(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut every worker down, then dismantle the relay mesh.

        Workers first: a draining worker's parked relays may still need
        their peer connections (to deliver CANCEL_OP interrupts), so
        routers close only after every worker has quiesced.
        """

        for worker in self.workers:
            await worker.shutdown(drain=drain, timeout=timeout)
        for router in self.routers:
            await router.close()

    # ------------------------------------------------------------------

    def stats(self) -> list[dict[str, Any]]:
        """One row per worker: ops served, relays, live channels."""

        return [
            {
                "worker": i,
                "port": self.worker_ports[i] if i < len(self.worker_ports) else None,
                "ops": w.ops_served,
                "forwards_out": w.forwards_out,
                "forwards_in": w.forwards_in,
                "channels": len(w.registry),
            }
            for i, w in enumerate(self.workers)
        ]


async def serve_cluster(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 2,
    registry: Optional[ChannelRegistry] = None,
    obs: Any = None,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    max_inflight_bytes: int = DEFAULT_MAX_INFLIGHT_BYTES,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    protocol: int = PROTOCOL_V2,
    gc_interval: Optional[float] = None,
    idle_seconds: float = 300.0,
    shards: int = DEFAULT_SHARDS,
    replicas: int = DEFAULT_REPLICAS,
) -> ClusterServer:
    """Start an in-process cluster; drop-in for :func:`repro.net.serve`.

    Accepts the full ``serve()`` keyword surface so callers (and test
    fixtures) can substitute it blindly — except ``registry``, which is
    rejected: cluster workers each own a registry, sharded by name; use
    ``server.registry`` (a routing view) to inspect them.
    """

    if registry is not None:
        raise ValueError(
            "serve_cluster builds one registry per worker; "
            "inspect them through server.registry instead"
        )
    server = ClusterServer(
        workers,
        obs=obs,
        max_inflight=max_inflight,
        max_inflight_bytes=max_inflight_bytes,
        max_frame_bytes=max_frame_bytes,
        protocol=protocol,
        gc_interval=gc_interval,
        idle_seconds=idle_seconds,
        shards=shards,
        replicas=replicas,
    )
    return await server.start(host, port)
