"""Wire protocol for networked channels: length-prefixed binary frames.

Every message on a :mod:`repro.net` connection is one frame::

    +----------+--------+------------+--------------------+
    | length   | op     | request id | payload            |
    | u32 (BE) | u8     | u64 (BE)   | length - 9 bytes   |
    +----------+--------+------------+--------------------+

``length`` counts everything after itself (op + request id + payload),
so a complete frame occupies ``4 + length`` bytes.  The request id is
chosen by the requesting side and echoed verbatim on the response,
which is what makes pipelining work: many requests may be in flight on
one connection and responses may arrive in any order.

Two payload families share this framing:

* **JSON ops** (protocol v1, and v2 control traffic): the payload is a
  UTF-8 JSON object (possibly empty).  ``bytes`` channel elements ride
  JSON frames as a one-key marker object
  ``{"__b64__": "<base64>"}`` — reserved, so binary elements survive a
  JSON hop between mixed-version peers.
* **Binary ops** (protocol v2 hot path): the payload is struct-packed,
  no JSON anywhere.  ``SEND_B``/``RECEIVE_B``/``OK_B`` move ``bytes``
  elements with two fixed-size fields of overhead, and ``BATCH`` is a
  container of complete frames — one transport write, many ops.

Op codes split into *requests* (client → server) and *responses*
(server → client):

==============  =====  ======================================================
op              value  payload
==============  =====  ======================================================
``OPEN``        1      ``{"channel", "capacity", "overflow"}``
``SEND``        2      ``{"channel", "value"}``
``RECEIVE``     3      ``{"channel"}``
``TRY_SEND``    4      ``{"channel", "value"}``
``TRY_RECEIVE`` 5      ``{"channel"}``
``CLOSE``       6      ``{"channel"}``
``CANCEL``      7      ``{"channel"}``
``CANCEL_OP``   8      ``{"target": <request id>}`` — abandon an in-flight op
``OK``          9      op-specific result (``{"value": ...}`` for receives)
``CLOSED``      10     ``{"cancelled": bool, "reason": str}`` — notification
                       that the op failed because the channel is closed
                       (``cancelled=False``) or cancelled/interrupted
                       (``cancelled=True``), per §4.3's close-vs-cancel split
``ERROR``       11     ``{"message": str}``
``HELLO``       12     ``{"versions": [int, ...]}`` — protocol negotiation;
                       answered with ``OK {"version": int}``
``BATCH``       13     binary: concatenation of complete frames (each with
                       its own header); nested batches are rejected
``SEND_B``      14     binary: ``u16 name_len | name utf-8 | element bytes``
``RECEIVE_B``   15     binary: ``u16 name_len | name utf-8``
``OK_B``        16     binary: empty (a send ack) or ``0x01 | value bytes``
``FORWARD``     17     binary: exactly one complete inner request frame —
                       a cluster worker relaying an op to the worker that
                       owns the target channel; the owner answers with the
                       normal response ops under the FORWARD's request id
``OWNER``       18     ``{"channel": str}`` as a request (ownership query);
                       ``{"channel": str, "worker": int}`` as a response to
                       a FORWARD that landed on a non-owning worker
==============  =====  ======================================================

Version negotiation: a v2 client's first frame is ``HELLO`` listing the
versions it speaks; the server answers ``OK {"version": v}`` with the
highest version both sides support and tags the connection.  A v1 peer
never sends ``HELLO`` and is served JSON frames exactly as before — v1
traffic is valid v2 traffic.  Decoded binary frames surface the same
``dict`` payload shape as their JSON twins (``SEND_B`` decodes to
``{"channel": ..., "value": b"..."}``), so everything above the codec
is payload-format agnostic.

Decoding is *incremental* (:class:`FrameDecoder` is fed arbitrary byte
chunks) and *fail-fast*: unknown op codes, lengths above the decoder's
``max_frame_bytes`` cap (default 16 MiB, configurable per decoder) and
undecodable payloads raise :class:`~repro.errors.ProtocolError`
immediately, and :meth:`FrameDecoder.eof` raises if the stream ends
mid-frame — a truncated frame is an error, never a hang.
"""

from __future__ import annotations

import base64
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Union

from ..errors import ProtocolError

__all__ = [
    "OP_OPEN",
    "OP_SEND",
    "OP_RECEIVE",
    "OP_TRY_SEND",
    "OP_TRY_RECEIVE",
    "OP_CLOSE",
    "OP_CANCEL",
    "OP_CANCEL_OP",
    "OP_OK",
    "OP_CLOSED",
    "OP_ERROR",
    "OP_HELLO",
    "OP_BATCH",
    "OP_SEND_B",
    "OP_RECEIVE_B",
    "OP_OK_B",
    "OP_FORWARD",
    "OP_OWNER",
    "OP_NAMES",
    "REQUEST_OPS",
    "RESPONSE_OPS",
    "JSON_OPS",
    "BINARY_OPS",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "encode_frame",
    "encode_frame_into",
    "encode_send_b_into",
    "encode_receive_b_into",
    "encode_ok_b_into",
    "encode_batch",
    "decode_frame",
]

OP_OPEN = 1
OP_SEND = 2
OP_RECEIVE = 3
OP_TRY_SEND = 4
OP_TRY_RECEIVE = 5
OP_CLOSE = 6
OP_CANCEL = 7
OP_CANCEL_OP = 8
OP_OK = 9
OP_CLOSED = 10
OP_ERROR = 11
OP_HELLO = 12
OP_BATCH = 13
OP_SEND_B = 14
OP_RECEIVE_B = 15
OP_OK_B = 16
OP_FORWARD = 17
OP_OWNER = 18

OP_NAMES = {
    OP_OPEN: "OPEN",
    OP_SEND: "SEND",
    OP_RECEIVE: "RECEIVE",
    OP_TRY_SEND: "TRY_SEND",
    OP_TRY_RECEIVE: "TRY_RECEIVE",
    OP_CLOSE: "CLOSE",
    OP_CANCEL: "CANCEL",
    OP_CANCEL_OP: "CANCEL_OP",
    OP_OK: "OK",
    OP_CLOSED: "CLOSED",
    OP_ERROR: "ERROR",
    OP_HELLO: "HELLO",
    OP_BATCH: "BATCH",
    OP_SEND_B: "SEND_B",
    OP_RECEIVE_B: "RECEIVE_B",
    OP_OK_B: "OK_B",
    OP_FORWARD: "FORWARD",
    OP_OWNER: "OWNER",
}

REQUEST_OPS = frozenset(
    (
        OP_OPEN,
        OP_SEND,
        OP_RECEIVE,
        OP_TRY_SEND,
        OP_TRY_RECEIVE,
        OP_CLOSE,
        OP_CANCEL,
        OP_CANCEL_OP,
        OP_HELLO,
        OP_SEND_B,
        OP_RECEIVE_B,
        OP_FORWARD,
        OP_OWNER,
    )
)
#: OWNER doubles as the "you are holding the wrong worker" response to a
#: misdelivered FORWARD, so it lives in both sets.
RESPONSE_OPS = frozenset((OP_OK, OP_CLOSED, OP_ERROR, OP_OK_B, OP_OWNER))

#: Ops whose payload is struct-packed rather than JSON.
BINARY_OPS = frozenset((OP_BATCH, OP_SEND_B, OP_RECEIVE_B, OP_OK_B, OP_FORWARD))
#: Ops whose payload is a UTF-8 JSON object.
JSON_OPS = frozenset(OP_NAMES) - BINARY_OPS

#: Wire protocol versions.  v1 = JSON payloads only (PR 2's protocol,
#: every frame above is still decodable by a v2 peer); v2 adds the
#: binary hot ops and BATCH containers after a HELLO handshake.
PROTOCOL_V1 = 1
PROTOCOL_V2 = 2
SUPPORTED_VERSIONS = (PROTOCOL_V1, PROTOCOL_V2)

#: ``!`` = network byte order; u32 length, u8 op, u64 request id.
_HEADER = struct.Struct("!IBQ")
_NAME_LEN = struct.Struct("!H")

#: Fixed bytes covered by ``length`` (op + request id).
_LENGTH_OVERHEAD = _HEADER.size - 4

#: Default hard ceiling on one frame (16 MiB).  A length field beyond
#: the decoder's cap is a corrupt or hostile stream, not a big payload —
#: reject it instead of buffering unboundedly.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Reserved one-key JSON marker that carries ``bytes`` elements across
#: JSON frames (v1 peers, control ops).  Chosen to be implausible as a
#: user payload; DESIGN.md §11 documents the reservation.
_B64_KEY = "__b64__"

_BYTES_TYPES = (bytes, bytearray, memoryview)


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame.

    Binary ops surface the same payload shape as their JSON twins
    (``SEND_B`` → ``{"channel", "value"}``; ``BATCH`` →
    ``{"frames": [Frame, ...]}``), so consumers never branch on the
    wire format.  ``wire_bytes`` records the encoded size the frame
    occupied on the wire (0 for hand-built frames); it is excluded from
    equality so constructed and decoded frames compare by content.
    """

    op: int
    req_id: int
    payload: dict = field(default_factory=dict)
    wire_bytes: int = field(default=0, compare=False, repr=False)

    @property
    def op_name(self) -> str:
        return OP_NAMES.get(self.op, f"op#{self.op}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.op_name} #{self.req_id} {self.payload!r}>"


# ----------------------------------------------------------------------
# encoding


def _wire_json_payload(payload: dict) -> dict:
    """Swap a ``bytes`` element for the reserved base64 marker object."""

    value = payload.get("value")
    if isinstance(value, _BYTES_TYPES):
        payload = dict(payload)
        payload["value"] = {_B64_KEY: base64.b64encode(bytes(value)).decode("ascii")}
    return payload


def _unwire_json_payload(payload: dict) -> dict:
    value = payload.get("value")
    if isinstance(value, dict) and len(value) == 1 and _B64_KEY in value:
        try:
            payload["value"] = base64.b64decode(value[_B64_KEY])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed {_B64_KEY} marker: {exc}") from None
    return payload


def encode_frame_into(buf: bytearray, op: int, req_id: int, payload: Optional[dict] = None,
                      *, max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Append one encoded frame to ``buf``; returns the frame's size.

    The workhorse behind :func:`encode_frame`: hot paths encode straight
    into a reusable ``bytearray`` instead of allocating per-frame
    ``bytes``.  Binary ops are struct-packed from the same payload dict
    shape their decode produces.
    """

    if op not in OP_NAMES:
        raise ProtocolError(f"unknown op code {op}")
    if not 0 <= req_id < 1 << 64:
        raise ProtocolError(f"request id out of range: {req_id}")
    if op == OP_SEND_B:
        p = payload or {}
        value = p.get("value", b"")
        if not isinstance(value, _BYTES_TYPES):
            raise ProtocolError("SEND_B carries bytes elements only")
        return encode_send_b_into(
            buf, req_id, str(p.get("channel", "")).encode("utf-8"), value,
            max_frame_bytes=max_frame_bytes,
        )
    if op == OP_RECEIVE_B:
        p = payload or {}
        return encode_receive_b_into(
            buf, req_id, str(p.get("channel", "")).encode("utf-8")
        )
    if op == OP_OK_B:
        p = payload or {}
        return encode_ok_b_into(
            buf, req_id, p.get("value") if "value" in p else None,
            max_frame_bytes=max_frame_bytes,
        )
    if op == OP_BATCH:
        frames = (payload or {}).get("frames", [])
        body = bytearray()
        for sub in frames:
            if isinstance(sub, Frame):
                encode_frame_into(body, sub.op, sub.req_id, sub.payload,
                                  max_frame_bytes=max_frame_bytes)
            else:  # pre-encoded bytes
                body.extend(sub)
        return _append_frame(buf, op, req_id, body, max_frame_bytes)
    if op == OP_FORWARD:
        inner = (payload or {}).get("frame")
        body = bytearray()
        if isinstance(inner, Frame):
            _encode_inner_frame(body, inner, max_frame_bytes)
        elif isinstance(inner, _BYTES_TYPES):  # pre-encoded bytes
            body.extend(inner)
        else:
            raise ProtocolError("FORWARD carries exactly one inner frame")
        return _append_frame(buf, op, req_id, body, max_frame_bytes)
    body = b""
    if payload:
        body = json.dumps(_wire_json_payload(payload), separators=(",", ":")).encode("utf-8")
    return _append_frame(buf, op, req_id, body, max_frame_bytes)


def _encode_inner_frame(buf: bytearray, frame: Frame, max_frame_bytes: int) -> int:
    """Encode a FORWARD's inner frame, preferring the binary shapes.

    A relaying worker may hold a JSON-lane SEND/RECEIVE from a v1
    client; re-encoding it as SEND_B/RECEIVE_B keeps the inter-worker
    hop on the cheap lane without changing semantics.
    """

    op, payload = frame.op, frame.payload
    if op == OP_SEND and payload and isinstance(payload.get("value"), _BYTES_TYPES) \
            and set(payload) == {"channel", "value"}:
        return encode_send_b_into(
            buf, frame.req_id, str(payload["channel"]).encode("utf-8"),
            payload["value"], max_frame_bytes=max_frame_bytes,
        )
    if op == OP_RECEIVE and payload and set(payload) == {"channel"}:
        return encode_receive_b_into(
            buf, frame.req_id, str(payload["channel"]).encode("utf-8")
        )
    return encode_frame_into(buf, op, frame.req_id, payload,
                             max_frame_bytes=max_frame_bytes)


def _append_frame(buf: bytearray, op: int, req_id: int, body, max_frame_bytes: int) -> int:
    length = _LENGTH_OVERHEAD + len(body)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    buf += _HEADER.pack(length, op, req_id)
    buf += body
    return 4 + length


def encode_send_b_into(buf: bytearray, req_id: int, name: bytes, value,
                       *, max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Append a binary SEND frame: ``u16 name_len | name | element``."""

    if len(name) > 0xFFFF:
        raise ProtocolError(f"channel name of {len(name)} bytes exceeds the u16 field")
    length = _LENGTH_OVERHEAD + _NAME_LEN.size + len(name) + len(value)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    buf += _HEADER.pack(length, OP_SEND_B, req_id)
    buf += _NAME_LEN.pack(len(name))
    buf += name
    buf += value
    return 4 + length


def encode_receive_b_into(buf: bytearray, req_id: int, name: bytes) -> int:
    """Append a binary RECEIVE frame: ``u16 name_len | name``."""

    if len(name) > 0xFFFF:
        raise ProtocolError(f"channel name of {len(name)} bytes exceeds the u16 field")
    length = _LENGTH_OVERHEAD + _NAME_LEN.size + len(name)
    buf += _HEADER.pack(length, OP_RECEIVE_B, req_id)
    buf += _NAME_LEN.pack(len(name))
    buf += name
    return 4 + length


def encode_ok_b_into(buf: bytearray, req_id: int, value=None,
                     *, max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Append a binary OK/ack frame (``value=None`` = bare ack)."""

    if value is None:
        buf += _HEADER.pack(_LENGTH_OVERHEAD, OP_OK_B, req_id)
        return 4 + _LENGTH_OVERHEAD
    if not isinstance(value, _BYTES_TYPES):
        raise ProtocolError("OK_B carries bytes values only")
    length = _LENGTH_OVERHEAD + 1 + len(value)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    buf += _HEADER.pack(length, OP_OK_B, req_id)
    buf += b"\x01"
    buf += value
    return 4 + length


def encode_frame(op: int, req_id: int, payload: Optional[dict] = None) -> bytes:
    """Serialize one frame; the inverse of :func:`decode_frame`."""

    buf = bytearray()
    encode_frame_into(buf, op, req_id, payload)
    return bytes(buf)


def encode_batch(frames: List[Union[Frame, bytes]], req_id: int = 0,
                 *, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Encode a BATCH container from frames or pre-encoded frame bytes."""

    buf = bytearray()
    encode_frame_into(buf, OP_BATCH, req_id, {"frames": frames},
                      max_frame_bytes=max_frame_bytes)
    return bytes(buf)


def decode_frame(data: bytes) -> Frame:
    """Decode exactly one complete frame from ``data`` (no trailing bytes)."""

    decoder = FrameDecoder()
    frames = list(decoder.feed(data))
    decoder.eof()
    if len(frames) != 1:
        raise ProtocolError(f"expected exactly one frame, got {len(frames)}")
    return frames[0]


# ----------------------------------------------------------------------
# decoding

#: Free list of decode buffers.  Connections churn (one decoder each);
#: recycling the backing bytearrays keeps steady-state decode allocation
#: flat.  Buffers are cleared before reuse and the pool is bounded.
_BUF_POOL: list = []
_BUF_POOL_CAP = 32

#: Consumed-prefix length past which the decoder compacts its buffer.
#: Between compactions decode is cursor-based — no per-frame ``del``.
_COMPACT_BYTES = 256 * 1024


def _acquire_buf() -> bytearray:
    if _BUF_POOL:
        return _BUF_POOL.pop()
    return bytearray()


def _release_buf(buf: bytearray) -> None:
    if len(_BUF_POOL) < _BUF_POOL_CAP:
        del buf[:]
        _BUF_POOL.append(buf)


def _parse_payload(op: int, view: bytes, in_batch: bool,
                   max_frame_bytes: int, in_forward: bool = False) -> dict:
    """Decode one frame body (header already consumed) into a payload dict."""

    if op == OP_SEND_B:
        if len(view) < _NAME_LEN.size:
            raise ProtocolError("SEND_B frame shorter than its name-length field")
        (name_len,) = _NAME_LEN.unpack_from(view, 0)
        if _NAME_LEN.size + name_len > len(view):
            raise ProtocolError("SEND_B name length exceeds the frame body")
        name = view[_NAME_LEN.size : _NAME_LEN.size + name_len].decode("utf-8")
        return {"channel": name, "value": bytes(view[_NAME_LEN.size + name_len :])}
    if op == OP_RECEIVE_B:
        if len(view) < _NAME_LEN.size:
            raise ProtocolError("RECEIVE_B frame shorter than its name-length field")
        (name_len,) = _NAME_LEN.unpack_from(view, 0)
        if _NAME_LEN.size + name_len != len(view):
            raise ProtocolError("RECEIVE_B frame has trailing bytes after the name")
        return {"channel": view[_NAME_LEN.size :].decode("utf-8")}
    if op == OP_OK_B:
        if not view:
            return {}
        if view[0] != 1:
            raise ProtocolError(f"unknown OK_B value tag {view[0]}")
        return {"value": bytes(view[1:])}
    if op == OP_BATCH:
        if in_batch:
            raise ProtocolError("nested BATCH frames are not allowed")
        if in_forward:
            raise ProtocolError("BATCH frames are not allowed inside FORWARD")
        frames = []
        pos, end = 0, len(view)
        while pos < end:
            frame, pos = _parse_one(view, pos, end, max_frame_bytes, in_batch=True)
            if frame is None:
                raise ProtocolError("BATCH payload ends mid-subframe")
            frames.append(frame)
        return {"frames": frames}
    if op == OP_FORWARD:
        if in_forward:
            raise ProtocolError("nested FORWARD frames are not allowed")
        frame, pos = _parse_one(view, 0, len(view), max_frame_bytes,
                                in_batch=True, in_forward=True)
        if frame is None:
            raise ProtocolError("FORWARD payload ends mid-frame")
        if pos != len(view):
            raise ProtocolError("FORWARD carries exactly one inner frame")
        return {"frame": frame}
    # JSON family
    if not view:
        return {}
    try:
        payload = json.loads(bytes(view))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable payload in {OP_NAMES[op]} frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"payload of {OP_NAMES[op]} frame must be a JSON object, got {type(payload).__name__}"
        )
    return _unwire_json_payload(payload)


def _parse_one(buf, pos: int, end: int, max_frame_bytes: int,
               *, in_batch: bool, in_forward: bool = False):
    """Parse one frame at ``buf[pos:end]``; ``(frame | None, new_pos)``.

    ``None`` means the bytes of a frame are not all there yet (only
    legal at the top level; inside a BATCH it is a protocol error,
    handled by the caller).
    """

    avail = end - pos
    if avail < 4:
        return None, pos
    length = int.from_bytes(buf[pos : pos + 4], "big")
    if length < _LENGTH_OVERHEAD:
        raise ProtocolError(f"frame length {length} shorter than the fixed header")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_frame_bytes}-byte limit"
        )
    # Validate the op code as soon as it is visible, even if the
    # payload has not arrived — corrupt streams fail fast.
    if avail >= 5:
        op = buf[pos + 4]
        if op not in OP_NAMES:
            raise ProtocolError(f"unknown op code {op}")
    if avail < 4 + length:
        return None, pos
    _, op, req_id = _HEADER.unpack_from(buf, pos)
    body = bytes(buf[pos + _HEADER.size : pos + 4 + length])
    payload = _parse_payload(op, body, in_batch, max_frame_bytes, in_forward)
    return Frame(op, req_id, payload, wire_bytes=4 + length), pos + 4 + length


class FrameDecoder:
    """Incremental frame decoder over arbitrary byte chunks.

    ``feed(chunk)`` yields every frame completed by the chunk; partial
    trailing bytes are buffered for the next feed.  Any malformed input
    raises :class:`~repro.errors.ProtocolError` at the earliest byte
    that proves the stream corrupt (a bad length or op code is rejected
    from the header alone, before the payload arrives).

    ``max_frame_bytes`` caps how large a single frame — and therefore
    this decoder's buffer — may grow; frames claiming more are rejected
    from their length field alone.  The backing buffer is drawn from a
    small module-level pool and consumed with a cursor (compacting only
    past a watermark), so steady-state decoding neither reallocates nor
    shifts bytes per frame.  Call :meth:`release` when the connection
    dies to return the buffer to the pool.
    """

    __slots__ = ("_buf", "_pos", "_frames_decoded", "max_frame_bytes")

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < _LENGTH_OVERHEAD:
            raise ValueError(f"max_frame_bytes must be >= {_LENGTH_OVERHEAD}")
        self._buf = _acquire_buf()
        self._pos = 0
        self._frames_decoded = 0
        self.max_frame_bytes = max_frame_bytes

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""

        return len(self._buf) - self._pos

    @property
    def frames_decoded(self) -> int:
        return self._frames_decoded

    def feed(self, chunk: bytes) -> Iterator[Frame]:
        """Buffer ``chunk`` and yield every frame it completes."""

        buf = self._buf
        buf += chunk
        frames = []
        pos, end = self._pos, len(buf)
        while True:
            frame, pos = _parse_one(buf, pos, end, self.max_frame_bytes, in_batch=False)
            if frame is None:
                break
            frames.append(frame)
        self._frames_decoded += len(frames)
        if pos == end:
            del buf[:]
            pos = 0
        elif pos > _COMPACT_BYTES:
            del buf[:pos]
            pos = 0
        self._pos = pos
        return iter(frames)

    def eof(self) -> None:
        """Declare end-of-stream; a partially buffered frame is an error."""

        if self.pending_bytes:
            raise ProtocolError(
                f"stream truncated mid-frame: {self.pending_bytes} dangling bytes after "
                f"{self._frames_decoded} complete frame(s)"
            )

    def release(self) -> None:
        """Return the decode buffer to the pool (decoder becomes unusable)."""

        buf = self._buf
        self._buf = bytearray()
        self._pos = 0
        _release_buf(buf)


def negotiate_version(offered, supported=SUPPORTED_VERSIONS) -> int:
    """Highest version in both ``offered`` and ``supported`` (else v1).

    Lenient by design: a peer offering nothing intelligible is served
    protocol v1, which every participant speaks.
    """

    try:
        common = set(int(v) for v in offered) & set(supported)
    except (TypeError, ValueError):
        return PROTOCOL_V1
    return max(common) if common else PROTOCOL_V1


def describe_payload(op: int, payload: dict) -> str:
    """Short human-readable payload summary (for logs and errors)."""

    if op in (OP_SEND, OP_TRY_SEND, OP_SEND_B):
        value: Any = payload.get("value")
        text = repr(value)
        if len(text) > 40:
            text = text[:37] + "..."
        return f"channel={payload.get('channel')!r} value={text}"
    if "channel" in payload:
        return f"channel={payload.get('channel')!r}"
    return repr(payload)
