"""Wire protocol for networked channels: length-prefixed binary frames.

Every message on a :mod:`repro.net` connection is one frame::

    +----------+--------+------------+--------------------+
    | length   | op     | request id | payload (JSON)     |
    | u32 (BE) | u8     | u64 (BE)   | length - 9 bytes   |
    +----------+--------+------------+--------------------+

``length`` counts everything after itself (op + request id + payload),
so a complete frame occupies ``4 + length`` bytes.  The request id is
chosen by the requesting side and echoed verbatim on the response,
which is what makes pipelining work: many requests may be in flight on
one connection and responses may arrive in any order.

Op codes split into *requests* (client → server) and *responses*
(server → client):

==============  =====  ======================================================
op              value  payload
==============  =====  ======================================================
``OPEN``        1      ``{"channel", "capacity", "overflow"}``
``SEND``        2      ``{"channel", "value"}``
``RECEIVE``     3      ``{"channel"}``
``TRY_SEND``    4      ``{"channel", "value"}``
``TRY_RECEIVE`` 5      ``{"channel"}``
``CLOSE``       6      ``{"channel"}``
``CANCEL``      7      ``{"channel"}``
``CANCEL_OP``   8      ``{"target": <request id>}`` — abandon an in-flight op
``OK``          9      op-specific result (``{"value": ...}`` for receives)
``CLOSED``      10     ``{"cancelled": bool, "reason": str}`` — notification
                       that the op failed because the channel is closed
                       (``cancelled=False``) or cancelled/interrupted
                       (``cancelled=True``), per §4.3's close-vs-cancel split
``ERROR``       11     ``{"message": str}``
==============  =====  ======================================================

Payloads are UTF-8 JSON objects (possibly empty).  Channel elements are
therefore restricted to JSON-serializable values on the wire — the same
trade every RPC layer makes; richer codecs can slot in behind
:func:`encode_frame`/:class:`FrameDecoder` without touching framing.

Decoding is *incremental* (:class:`FrameDecoder` is fed arbitrary byte
chunks) and *fail-fast*: unknown op codes, oversized lengths and
undecodable payloads raise :class:`~repro.errors.ProtocolError`
immediately, and :meth:`FrameDecoder.eof` raises if the stream ends
mid-frame — a truncated frame is an error, never a hang.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..errors import ProtocolError

__all__ = [
    "OP_OPEN",
    "OP_SEND",
    "OP_RECEIVE",
    "OP_TRY_SEND",
    "OP_TRY_RECEIVE",
    "OP_CLOSE",
    "OP_CANCEL",
    "OP_CANCEL_OP",
    "OP_OK",
    "OP_CLOSED",
    "OP_ERROR",
    "OP_NAMES",
    "REQUEST_OPS",
    "RESPONSE_OPS",
    "MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
]

OP_OPEN = 1
OP_SEND = 2
OP_RECEIVE = 3
OP_TRY_SEND = 4
OP_TRY_RECEIVE = 5
OP_CLOSE = 6
OP_CANCEL = 7
OP_CANCEL_OP = 8
OP_OK = 9
OP_CLOSED = 10
OP_ERROR = 11

OP_NAMES = {
    OP_OPEN: "OPEN",
    OP_SEND: "SEND",
    OP_RECEIVE: "RECEIVE",
    OP_TRY_SEND: "TRY_SEND",
    OP_TRY_RECEIVE: "TRY_RECEIVE",
    OP_CLOSE: "CLOSE",
    OP_CANCEL: "CANCEL",
    OP_CANCEL_OP: "CANCEL_OP",
    OP_OK: "OK",
    OP_CLOSED: "CLOSED",
    OP_ERROR: "ERROR",
}

REQUEST_OPS = frozenset(
    (OP_OPEN, OP_SEND, OP_RECEIVE, OP_TRY_SEND, OP_TRY_RECEIVE, OP_CLOSE, OP_CANCEL, OP_CANCEL_OP)
)
RESPONSE_OPS = frozenset((OP_OK, OP_CLOSED, OP_ERROR))

#: ``!`` = network byte order; u32 length, u8 op, u64 request id.
_HEADER = struct.Struct("!IBQ")

#: Fixed bytes covered by ``length`` (op + request id).
_LENGTH_OVERHEAD = _HEADER.size - 4

#: Hard ceiling on one frame (16 MiB).  A length field beyond this is a
#: corrupt or hostile stream, not a big payload — reject it instead of
#: buffering unboundedly.
MAX_FRAME_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame."""

    op: int
    req_id: int
    payload: dict = field(default_factory=dict)

    @property
    def op_name(self) -> str:
        return OP_NAMES.get(self.op, f"op#{self.op}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.op_name} #{self.req_id} {self.payload!r}>"


def encode_frame(op: int, req_id: int, payload: Optional[dict] = None) -> bytes:
    """Serialize one frame; the inverse of :func:`decode_frame`."""

    if op not in OP_NAMES:
        raise ProtocolError(f"unknown op code {op}")
    if not 0 <= req_id < 1 << 64:
        raise ProtocolError(f"request id out of range: {req_id}")
    body = b"" if not payload else json.dumps(payload, separators=(",", ":")).encode("utf-8")
    length = _LENGTH_OVERHEAD + len(body)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(length, op, req_id) + body


def decode_frame(data: bytes) -> Frame:
    """Decode exactly one complete frame from ``data`` (no trailing bytes)."""

    decoder = FrameDecoder()
    frames = list(decoder.feed(data))
    decoder.eof()
    if len(frames) != 1:
        raise ProtocolError(f"expected exactly one frame, got {len(frames)}")
    return frames[0]


class FrameDecoder:
    """Incremental frame decoder over arbitrary byte chunks.

    ``feed(chunk)`` yields every frame completed by the chunk; partial
    trailing bytes are buffered for the next feed.  Any malformed input
    raises :class:`~repro.errors.ProtocolError` at the earliest byte
    that proves the stream corrupt (a bad length or op code is rejected
    from the header alone, before the payload arrives).
    """

    __slots__ = ("_buf", "_frames_decoded")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""

        return len(self._buf)

    @property
    def frames_decoded(self) -> int:
        return self._frames_decoded

    def feed(self, chunk: bytes) -> Iterator[Frame]:
        """Buffer ``chunk`` and yield every frame it completes."""

        self._buf.extend(chunk)
        frames = []
        while True:
            frame = self._try_decode_one()
            if frame is None:
                break
            frames.append(frame)
        return iter(frames)

    def eof(self) -> None:
        """Declare end-of-stream; a partially buffered frame is an error."""

        if self._buf:
            raise ProtocolError(
                f"stream truncated mid-frame: {len(self._buf)} dangling bytes after "
                f"{self._frames_decoded} complete frame(s)"
            )

    # ------------------------------------------------------------------

    def _try_decode_one(self) -> Optional[Frame]:
        buf = self._buf
        if len(buf) < 4:
            return None
        length = int.from_bytes(buf[:4], "big")
        if length < _LENGTH_OVERHEAD:
            raise ProtocolError(f"frame length {length} shorter than the fixed header")
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
            )
        # Validate the op code as soon as it is visible, even if the
        # payload has not arrived — corrupt streams fail fast.
        if len(buf) >= 5:
            op = buf[4]
            if op not in OP_NAMES:
                raise ProtocolError(f"unknown op code {op}")
        if len(buf) < 4 + length:
            return None
        _, op, req_id = _HEADER.unpack_from(buf, 0)
        body = bytes(buf[_HEADER.size : 4 + length])
        del buf[: 4 + length]
        if body:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"undecodable payload in {OP_NAMES[op]} frame: {exc}") from None
            if not isinstance(payload, dict):
                raise ProtocolError(
                    f"payload of {OP_NAMES[op]} frame must be a JSON object, got {type(payload).__name__}"
                )
        else:
            payload = {}
        self._frames_decoded += 1
        return Frame(op, req_id, payload)


def describe_payload(op: int, payload: dict) -> str:
    """Short human-readable payload summary (for logs and errors)."""

    if op in (OP_SEND, OP_TRY_SEND):
        value: Any = payload.get("value")
        text = repr(value)
        if len(text) > 40:
            text = text[:37] + "..."
        return f"channel={payload.get('channel')!r} value={text}"
    if "channel" in payload:
        return f"channel={payload.get('channel')!r}"
    return repr(payload)
