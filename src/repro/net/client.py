"""Client side: :class:`RemoteChannel` mirrors the ``AsyncChannel`` API.

One :class:`NetClient` owns one TCP connection and pipelines every
operation over it: requests carry fresh request ids, a background read
loop correlates responses back to the awaiting futures, so many ops —
from many :class:`RemoteChannel` objects — are in flight concurrently
on one socket.

Protocol negotiation: :func:`connect` opens the socket and sends
``HELLO`` offering every supported version.  A v2 server answers with
the negotiated version; a pre-v2 server rejects the unknown op (or
drops the connection), and the client transparently reconnects pinned
to protocol v1 — so ``connect()`` works against any server vintage.
On a v2 connection the hot ops go out struct-packed (``SEND_B`` when
the element is ``bytes``, ``RECEIVE_B`` always) and pipelined requests
coalesce into ``BATCH`` frames: requests issued within the same event
loop tick are staged in the writer and sealed into one container frame
at the flush — size-bounded by the writer's batch caps and
deadline-bounded by the tick, while each op keeps its own req_id and
its own ``timeout=`` deadline.  Pass ``batch=False`` (or
``protocol=1``) to :func:`connect` to measure either lever separately.

Per-op deadlines: every operation takes ``timeout=`` (falling back to
the channel's, then the client's, default).  On expiry the client
abandons the request id, best-effort sends ``CANCEL_OP`` so the server
interrupts the parked op (the §4.3 cancellation — the channel stays
usable), and raises :class:`asyncio.TimeoutError`.  If the server-side
resumption beat the cancellation, the late response is dropped and
counted in ``late_responses`` — a deadline-expired ``receive`` is
therefore at-most-once, exactly like every RPC deadline.

Failure mapping (what awaited ops raise):

* ``CLOSED{reason="close"|"cancel"}`` → the matching
  :class:`~repro.errors.ChannelClosedForSend` /
  :class:`~repro.errors.ChannelClosedForReceive` — same exceptions as
  the local ``AsyncChannel``;
* ``CLOSED{reason="interrupt"}`` (server shut down / op interrupted) →
  :class:`~repro.errors.ConnectionLostError`;
* ``ERROR`` → :class:`~repro.errors.RemoteOpError`;
* the connection dying with ops parked →
  :class:`~repro.errors.ConnectionLostError` on every pending op.

Example::

    client = await connect("127.0.0.1", port)
    ch = await client.channel("events", capacity=64)
    await ch.send({"user": 7, "kind": "login"})
    async for event in ch:   # terminates when the channel is closed
        handle(event)
    await client.close()
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, AsyncIterator, Optional

from ..errors import (
    ChannelClosedForReceive,
    ChannelClosedForSend,
    ConnectionLostError,
    ProtocolError,
    RemoteOpError,
)
from .iobuf import CoalescingWriter
from .protocol import (
    OP_BATCH,
    OP_CANCEL,
    OP_CANCEL_OP,
    OP_CLOSE,
    OP_CLOSED,
    OP_ERROR,
    OP_FORWARD,
    OP_HELLO,
    OP_OK,
    OP_OK_B,
    OP_OPEN,
    OP_RECEIVE,
    OP_SEND,
    OP_TRY_RECEIVE,
    OP_TRY_SEND,
    PROTOCOL_V1,
    PROTOCOL_V2,
    SUPPORTED_VERSIONS,
    Frame,
    FrameDecoder,
    encode_frame,
    encode_frame_into,
    encode_receive_b_into,
    encode_send_b_into,
)

__all__ = ["NetClient", "RemoteChannel", "connect"]

_READ_CHUNK = 64 * 1024

#: Sentinel distinguishing "no timeout argument" from an explicit
#: ``timeout=None`` (which disables the channel/client default).
_UNSET: Any = object()

#: Ops whose CLOSED failure is a *send*-side close.
_SEND_SIDE = frozenset((OP_SEND, OP_TRY_SEND))

_BYTES_TYPES = (bytes, bytearray, memoryview)


class NetClient:
    """One pipelined connection to a :mod:`repro.net` server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        deadline: Optional[float] = None,
        batch: bool = True,
    ):
        self._reader = reader
        self._writer = writer
        self._out = CoalescingWriter(writer)
        self.deadline = deadline
        #: Negotiated protocol version; v1 until HELLO says otherwise.
        self.version = PROTOCOL_V1
        #: The server's frame-size cap, learned from the HELLO reply.
        self.server_max_frame: Optional[int] = None
        #: Coalesce pipelined requests into BATCH frames (v2 only).
        self.batching = batch
        self._pending: dict[int, asyncio.Future] = {}
        self._next_req_id = 1
        self._lost: Optional[BaseException] = None
        #: Responses that arrived after their op's deadline expired.
        self.late_responses = 0
        self._read_task = asyncio.get_running_loop().create_task(self._read_loop())

    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._lost is None and not self._writer.is_closing()

    async def channel(
        self,
        name: str,
        capacity: int = 0,
        overflow: str = "suspend",
        *,
        deadline: Any = _UNSET,
    ) -> "RemoteChannel":
        """OPEN (get-or-create) the named channel on the server.

        ``capacity`` follows ``make_channel`` with ``-1`` = unlimited;
        ``deadline`` becomes the channel's default per-op timeout.
        """

        chan_deadline = self.deadline if deadline is _UNSET else deadline
        await self.request(
            OP_OPEN,
            {"channel": name, "capacity": capacity, "overflow": overflow},
            timeout=chan_deadline,
        )
        return RemoteChannel(self, name, deadline=chan_deadline)

    async def request(self, op: int, payload: dict, *, timeout: Optional[float] = None) -> dict:
        """Queue one request frame and await its correlated response.

        The frame lands in the coalescing writer — possibly staged into
        a BATCH with other requests from this loop tick — and reaches
        the wire at the next flush.  The await below is therefore also
        the batching deadline: nothing waits longer than one tick.
        """

        frame = await self.request_frame(op, payload, timeout=timeout)
        return self._unwrap(op, frame)

    async def forward(self, frame: Frame, *, timeout: Optional[float] = None) -> Frame:
        """Relay ``frame`` to this server inside a FORWARD container.

        Cluster workers use this to execute an op on the channel's
        owning worker; the reply comes back *raw* so the relaying side
        can hand the exact response frame to the origin client.
        """

        return await self.request_frame(OP_FORWARD, {"frame": frame}, timeout=timeout)

    async def request_frame(self, op: int, payload: dict, *,
                            timeout: Optional[float] = None) -> Frame:
        """:meth:`request` without the failure mapping: the raw reply frame."""

        if self._lost is not None:
            raise ConnectionLostError(f"connection is gone: {self._lost}")
        req_id = self._next_req_id
        self._next_req_id += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[req_id] = future
        try:
            self._encode_request(op, req_id, payload)
            await self._out.wait_writable()
        except ConnectionError as exc:
            self._pending.pop(req_id, None)
            raise ConnectionLostError(f"connection lost while sending: {exc}") from exc
        try:
            if timeout is None:
                frame = await future
            else:
                frame = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            # Deadline expired: abandon the request id and interrupt the
            # server-side op so it does not stay parked forever.
            self._abandon(req_id, future)
            raise
        except asyncio.CancelledError:
            self._abandon(req_id, future)
            raise
        finally:
            self._pending.pop(req_id, None)
        return frame

    def _encode_request(self, op: int, req_id: int, payload: dict) -> None:
        """Encode one request into the writer, binary/batched on v2."""

        out = self._out
        if self.version >= PROTOCOL_V2:
            if self.batching and op != OP_HELLO:
                target, queued = out.batch, True
            else:
                out.seal_batch()
                target, queued = out.buf, False
            if op == OP_SEND and len(payload) == 2 and isinstance(payload.get("value"), _BYTES_TYPES):
                encode_send_b_into(
                    target, req_id, payload["channel"].encode("utf-8"), payload["value"]
                )
            elif op == OP_RECEIVE and len(payload) == 1:
                encode_receive_b_into(target, req_id, payload["channel"].encode("utf-8"))
            else:
                encode_frame_into(target, op, req_id, payload)
            if queued:
                out.frame_queued()
            else:
                out.frame_written()
            return
        out.seal_batch()
        encode_frame_into(out.buf, op, req_id, payload)
        out.frame_written()

    def _abandon(self, req_id: int, future: asyncio.Future) -> None:
        if self._pending.pop(req_id, None) is None:
            return
        # Track the zombie so a late response is counted, not mistaken
        # for a protocol violation.
        future.add_done_callback(lambda _f: None)
        if self.connected:
            with contextlib.suppress(ConnectionError):
                self._out.write_frame(encode_frame(OP_CANCEL_OP, 0, {"target": req_id}))

    def _unwrap(self, request_op: int, frame: Frame) -> dict:
        if frame.op == OP_OK or frame.op == OP_OK_B:
            return frame.payload
        if frame.op == OP_CLOSED:
            reason = frame.payload.get("reason", "close")
            if reason == "interrupt":
                raise ConnectionLostError("operation interrupted by the server (shutdown or kill)")
            if request_op in _SEND_SIDE:
                raise ChannelClosedForSend()
            raise ChannelClosedForReceive()
        if frame.op == OP_ERROR:
            raise RemoteOpError(frame.payload.get("message", "unspecified server error"))
        raise ProtocolError(f"unexpected response op {frame.op_name}")

    # ------------------------------------------------------------------

    def _deliver(self, frame: Frame) -> None:
        future = self._pending.pop(frame.req_id, None)
        if future is None or future.done():
            self.late_responses += 1
            return
        future.set_result(frame)

    async def _read_loop(self) -> None:
        decoder = FrameDecoder()
        error: BaseException
        try:
            while True:
                chunk = await self._reader.read(_READ_CHUNK)
                if not chunk:
                    decoder.eof()
                    error = ConnectionLostError("server closed the connection")
                    break
                for frame in decoder.feed(chunk):
                    if frame.op == OP_BATCH:
                        # One batched reply: correlate each sub-response.
                        for sub in frame.payload["frames"]:
                            self._deliver(sub)
                    else:
                        self._deliver(frame)
        except asyncio.CancelledError:
            error = ConnectionLostError("client closed the connection")
        except (ConnectionError, ProtocolError) as exc:
            error = (
                exc
                if isinstance(exc, ProtocolError)
                else ConnectionLostError(f"connection lost: {exc}")
            )
        finally:
            decoder.release()
        self._lost = error
        # Every op still parked surfaces the *cancellation* flavor of
        # failure — the channel on the server is untouched.
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def close(self) -> None:
        """Tear the connection down; parked ops raise ``ConnectionLostError``."""

        self._read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._read_task
        self._out.close()
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()

    def abort(self) -> None:
        """Kill the socket immediately (no FIN handshake) — test helper
        for the 'connection died with ops parked' path."""

        self._out.closed = True
        transport = self._writer.transport
        if transport is not None:
            transport.abort()


class RemoteChannel:
    """A named server-side channel, driven through a :class:`NetClient`.

    Mirrors :class:`~repro.aio.channel.AsyncChannel`: ``send`` /
    ``receive`` / ``receive_catching`` / ``try_send`` / ``try_receive``
    / ``close`` / ``cancel`` and async iteration.  The one necessary
    difference: the try-ops are ``async`` here (they are non-blocking
    *channel* operations, but reaching the server still takes a round
    trip).
    """

    def __init__(self, client: NetClient, name: str, *, deadline: Optional[float] = None):
        self.client = client
        self.name = name
        self.deadline = deadline

    def _timeout(self, timeout: Any) -> Optional[float]:
        if timeout is _UNSET:
            return self.deadline
        return timeout

    def _payload(self, **extra: Any) -> dict:
        return {"channel": self.name, **extra}

    # ------------------------------------------------------------------

    async def send(self, element: Any, *, timeout: Any = _UNSET) -> None:
        """Send; parks server-side while the channel is full."""

        await self.client.request(
            OP_SEND, self._payload(value=element), timeout=self._timeout(timeout)
        )

    async def receive(self, *, timeout: Any = _UNSET) -> Any:
        """Receive; parks server-side while the channel is empty."""

        reply = await self.client.request(
            OP_RECEIVE, self._payload(), timeout=self._timeout(timeout)
        )
        return reply.get("value")

    async def receive_catching(self, *, timeout: Any = _UNSET) -> tuple[bool, Any]:
        """Like :meth:`receive`, but ``(False, None)`` once closed."""

        try:
            return (True, await self.receive(timeout=timeout))
        except ChannelClosedForReceive:
            return (False, None)

    async def try_send(self, element: Any, *, timeout: Any = _UNSET) -> bool:
        reply = await self.client.request(
            OP_TRY_SEND, self._payload(value=element), timeout=self._timeout(timeout)
        )
        return bool(reply.get("success"))

    async def try_receive(self, *, timeout: Any = _UNSET) -> tuple[bool, Any]:
        reply = await self.client.request(
            OP_TRY_RECEIVE, self._payload(), timeout=self._timeout(timeout)
        )
        return (bool(reply.get("success")), reply.get("value"))

    async def close(self, *, timeout: Any = _UNSET) -> bool:
        """Close for sending; ``True`` iff this call closed the channel."""

        reply = await self.client.request(
            OP_CLOSE, self._payload(), timeout=self._timeout(timeout)
        )
        return bool(reply.get("closed"))

    async def cancel(self, *, timeout: Any = _UNSET) -> bool:
        """Close and discard buffered elements."""

        reply = await self.client.request(
            OP_CANCEL, self._payload(), timeout=self._timeout(timeout)
        )
        return bool(reply.get("cancelled"))

    # ------------------------------------------------------------------

    def __aiter__(self) -> AsyncIterator[Any]:
        return self

    async def __anext__(self) -> Any:
        try:
            return await self.receive()
        except ChannelClosedForReceive:
            raise StopAsyncIteration from None


async def connect(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    deadline: Optional[float] = None,
    protocol: int = PROTOCOL_V2,
    batch: bool = True,
) -> NetClient:
    """Open a pipelined client connection to a :mod:`repro.net` server.

    ``protocol`` caps what HELLO offers: ``2`` (default) negotiates the
    binary protocol where the server supports it and falls back to v1
    otherwise — including reconnecting when the server is old enough to
    reject HELLO outright; ``1`` skips negotiation entirely and speaks
    JSON.  ``batch`` enables request coalescing on v2 connections.
    """

    if protocol not in SUPPORTED_VERSIONS:
        raise ValueError(f"protocol must be one of {SUPPORTED_VERSIONS}, got {protocol}")
    reader, writer = await asyncio.open_connection(host, port)
    client = NetClient(reader, writer, deadline=deadline, batch=batch)
    if protocol < PROTOCOL_V2:
        return client
    offered = [v for v in SUPPORTED_VERSIONS if v <= protocol]
    try:
        reply = await client.request(OP_HELLO, {"versions": offered}, timeout=deadline)
    except (RemoteOpError, ConnectionLostError, ProtocolError):
        # Pre-v2 server: it answered ERROR to the unknown op or dropped
        # the connection.  Reconnect pinned to the JSON protocol.
        await client.close()
        reader, writer = await asyncio.open_connection(host, port)
        return NetClient(reader, writer, deadline=deadline, batch=False)
    client.version = int(reply.get("version", PROTOCOL_V1))
    max_frame = reply.get("max_frame")
    client.server_max_frame = int(max_frame) if max_frame is not None else None
    return client
