"""Client side: :class:`RemoteChannel` mirrors the ``AsyncChannel`` API.

One :class:`NetClient` owns one TCP connection and pipelines every
operation over it: requests carry fresh request ids, a background read
loop correlates responses back to the awaiting futures, so many ops —
from many :class:`RemoteChannel` objects — are in flight concurrently
on one socket.

Per-op deadlines: every operation takes ``timeout=`` (falling back to
the channel's, then the client's, default).  On expiry the client
abandons the request id, best-effort sends ``CANCEL_OP`` so the server
interrupts the parked op (the §4.3 cancellation — the channel stays
usable), and raises :class:`asyncio.TimeoutError`.  If the server-side
resumption beat the cancellation, the late response is dropped and
counted in ``late_responses`` — a deadline-expired ``receive`` is
therefore at-most-once, exactly like every RPC deadline.

Failure mapping (what awaited ops raise):

* ``CLOSED{reason="close"|"cancel"}`` → the matching
  :class:`~repro.errors.ChannelClosedForSend` /
  :class:`~repro.errors.ChannelClosedForReceive` — same exceptions as
  the local ``AsyncChannel``;
* ``CLOSED{reason="interrupt"}`` (server shut down / op interrupted) →
  :class:`~repro.errors.ConnectionLostError`;
* ``ERROR`` → :class:`~repro.errors.RemoteOpError`;
* the connection dying with ops parked →
  :class:`~repro.errors.ConnectionLostError` on every pending op.

Example::

    client = await connect("127.0.0.1", port)
    ch = await client.channel("events", capacity=64)
    await ch.send({"user": 7, "kind": "login"})
    async for event in ch:   # terminates when the channel is closed
        handle(event)
    await client.close()
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, AsyncIterator, Optional

from ..errors import (
    ChannelClosedForReceive,
    ChannelClosedForSend,
    ConnectionLostError,
    ProtocolError,
    RemoteOpError,
)
from .protocol import (
    OP_CANCEL,
    OP_CANCEL_OP,
    OP_CLOSE,
    OP_CLOSED,
    OP_ERROR,
    OP_OK,
    OP_OPEN,
    OP_RECEIVE,
    OP_SEND,
    OP_TRY_RECEIVE,
    OP_TRY_SEND,
    Frame,
    FrameDecoder,
    encode_frame,
)

__all__ = ["NetClient", "RemoteChannel", "connect"]

_READ_CHUNK = 64 * 1024

#: Sentinel distinguishing "no timeout argument" from an explicit
#: ``timeout=None`` (which disables the channel/client default).
_UNSET: Any = object()

#: Ops whose CLOSED failure is a *send*-side close.
_SEND_SIDE = frozenset((OP_SEND, OP_TRY_SEND))


class NetClient:
    """One pipelined connection to a :mod:`repro.net` server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        deadline: Optional[float] = None,
    ):
        self._reader = reader
        self._writer = writer
        self.deadline = deadline
        self._pending: dict[int, asyncio.Future] = {}
        self._next_req_id = 1
        self._lost: Optional[BaseException] = None
        #: Responses that arrived after their op's deadline expired.
        self.late_responses = 0
        self._read_task = asyncio.get_running_loop().create_task(self._read_loop())

    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._lost is None and not self._writer.is_closing()

    async def channel(
        self,
        name: str,
        capacity: int = 0,
        overflow: str = "suspend",
        *,
        deadline: Any = _UNSET,
    ) -> "RemoteChannel":
        """OPEN (get-or-create) the named channel on the server.

        ``capacity`` follows ``make_channel`` with ``-1`` = unlimited;
        ``deadline`` becomes the channel's default per-op timeout.
        """

        chan_deadline = self.deadline if deadline is _UNSET else deadline
        await self.request(
            OP_OPEN,
            {"channel": name, "capacity": capacity, "overflow": overflow},
            timeout=chan_deadline,
        )
        return RemoteChannel(self, name, deadline=chan_deadline)

    async def request(self, op: int, payload: dict, *, timeout: Optional[float] = None) -> dict:
        """Send one request frame and await its correlated response."""

        if self._lost is not None:
            raise ConnectionLostError(f"connection is gone: {self._lost}")
        req_id = self._next_req_id
        self._next_req_id += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[req_id] = future
        try:
            self._writer.write(encode_frame(op, req_id, payload))
            await self._writer.drain()
        except ConnectionError as exc:
            self._pending.pop(req_id, None)
            raise ConnectionLostError(f"connection lost while sending: {exc}") from exc
        try:
            if timeout is None:
                frame = await future
            else:
                frame = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            # Deadline expired: abandon the request id and interrupt the
            # server-side op so it does not stay parked forever.
            self._abandon(req_id, future)
            raise
        except asyncio.CancelledError:
            self._abandon(req_id, future)
            raise
        finally:
            self._pending.pop(req_id, None)
        return self._unwrap(op, frame)

    def _abandon(self, req_id: int, future: asyncio.Future) -> None:
        if self._pending.pop(req_id, None) is None:
            return
        # Track the zombie so a late response is counted, not mistaken
        # for a protocol violation.
        future.add_done_callback(lambda _f: None)
        if self.connected:
            with contextlib.suppress(ConnectionError):
                self._writer.write(encode_frame(OP_CANCEL_OP, 0, {"target": req_id}))

    def _unwrap(self, request_op: int, frame: Frame) -> dict:
        if frame.op == OP_OK:
            return frame.payload
        if frame.op == OP_CLOSED:
            reason = frame.payload.get("reason", "close")
            if reason == "interrupt":
                raise ConnectionLostError("operation interrupted by the server (shutdown or kill)")
            if request_op in _SEND_SIDE:
                raise ChannelClosedForSend()
            raise ChannelClosedForReceive()
        if frame.op == OP_ERROR:
            raise RemoteOpError(frame.payload.get("message", "unspecified server error"))
        raise ProtocolError(f"unexpected response op {frame.op_name}")

    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        decoder = FrameDecoder()
        error: BaseException
        try:
            while True:
                chunk = await self._reader.read(_READ_CHUNK)
                if not chunk:
                    decoder.eof()
                    error = ConnectionLostError("server closed the connection")
                    break
                for frame in decoder.feed(chunk):
                    future = self._pending.pop(frame.req_id, None)
                    if future is None or future.done():
                        self.late_responses += 1
                        continue
                    future.set_result(frame)
        except asyncio.CancelledError:
            error = ConnectionLostError("client closed the connection")
        except (ConnectionError, ProtocolError) as exc:
            error = (
                exc
                if isinstance(exc, ProtocolError)
                else ConnectionLostError(f"connection lost: {exc}")
            )
        self._lost = error
        # Every op still parked surfaces the *cancellation* flavor of
        # failure — the channel on the server is untouched.
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def close(self) -> None:
        """Tear the connection down; parked ops raise ``ConnectionLostError``."""

        self._read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._read_task
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()

    def abort(self) -> None:
        """Kill the socket immediately (no FIN handshake) — test helper
        for the 'connection died with ops parked' path."""

        transport = self._writer.transport
        if transport is not None:
            transport.abort()


class RemoteChannel:
    """A named server-side channel, driven through a :class:`NetClient`.

    Mirrors :class:`~repro.aio.channel.AsyncChannel`: ``send`` /
    ``receive`` / ``receive_catching`` / ``try_send`` / ``try_receive``
    / ``close`` / ``cancel`` and async iteration.  The one necessary
    difference: the try-ops are ``async`` here (they are non-blocking
    *channel* operations, but reaching the server still takes a round
    trip).
    """

    def __init__(self, client: NetClient, name: str, *, deadline: Optional[float] = None):
        self.client = client
        self.name = name
        self.deadline = deadline

    def _timeout(self, timeout: Any) -> Optional[float]:
        if timeout is _UNSET:
            return self.deadline
        return timeout

    def _payload(self, **extra: Any) -> dict:
        return {"channel": self.name, **extra}

    # ------------------------------------------------------------------

    async def send(self, element: Any, *, timeout: Any = _UNSET) -> None:
        """Send; parks server-side while the channel is full."""

        await self.client.request(
            OP_SEND, self._payload(value=element), timeout=self._timeout(timeout)
        )

    async def receive(self, *, timeout: Any = _UNSET) -> Any:
        """Receive; parks server-side while the channel is empty."""

        reply = await self.client.request(
            OP_RECEIVE, self._payload(), timeout=self._timeout(timeout)
        )
        return reply.get("value")

    async def receive_catching(self, *, timeout: Any = _UNSET) -> tuple[bool, Any]:
        """Like :meth:`receive`, but ``(False, None)`` once closed."""

        try:
            return (True, await self.receive(timeout=timeout))
        except ChannelClosedForReceive:
            return (False, None)

    async def try_send(self, element: Any, *, timeout: Any = _UNSET) -> bool:
        reply = await self.client.request(
            OP_TRY_SEND, self._payload(value=element), timeout=self._timeout(timeout)
        )
        return bool(reply.get("success"))

    async def try_receive(self, *, timeout: Any = _UNSET) -> tuple[bool, Any]:
        reply = await self.client.request(
            OP_TRY_RECEIVE, self._payload(), timeout=self._timeout(timeout)
        )
        return (bool(reply.get("success")), reply.get("value"))

    async def close(self, *, timeout: Any = _UNSET) -> bool:
        """Close for sending; ``True`` iff this call closed the channel."""

        reply = await self.client.request(
            OP_CLOSE, self._payload(), timeout=self._timeout(timeout)
        )
        return bool(reply.get("closed"))

    async def cancel(self, *, timeout: Any = _UNSET) -> bool:
        """Close and discard buffered elements."""

        reply = await self.client.request(
            OP_CANCEL, self._payload(), timeout=self._timeout(timeout)
        )
        return bool(reply.get("cancelled"))

    # ------------------------------------------------------------------

    def __aiter__(self) -> AsyncIterator[Any]:
        return self

    async def __anext__(self) -> Any:
        try:
            return await self.receive()
        except ChannelClosedForReceive:
            raise StopAsyncIteration from None


async def connect(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    deadline: Optional[float] = None,
) -> NetClient:
    """Open a pipelined client connection to a :mod:`repro.net` server."""

    reader, writer = await asyncio.open_connection(host, port)
    return NetClient(reader, writer, deadline=deadline)
