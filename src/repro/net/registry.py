"""Sharded registry of named channels served by :mod:`repro.net`.

The server's channel namespace: ``open("events", capacity=64)`` is
get-or-create, every operation routes through the name, and channels
carry per-lifecycle stats (open count, ops served, timestamps) so the
registry can garbage-collect idle channels and export queue-depth
gauges into the shared :class:`~repro.obs.metrics.MetricsRegistry`.

Names are hashed (CRC32, stable across processes) onto a fixed number
of shards.  asyncio keeps each operation single-threaded, so sharding
here is not a lock-striping trick as it would be in the simulated
algorithm — it bounds the work of one idle-GC slice (the collector
scans one shard per tick, mirroring how production registries amortize
scans) and keeps the layout ready for a multi-loop server.

``capacity`` on open follows :func:`repro.core.channel.make_channel`
plus two aliases: ``-1`` means :data:`~repro.core.channel.UNLIMITED`,
and ``overflow`` selects the kotlinx policy (``"suspend"``,
``"drop_oldest"``, ``"conflate"``).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..aio.channel import AsyncChannel
from ..core.channel import UNLIMITED
from ..errors import RemoteOpError
from ..obs.metrics import MetricsRegistry

__all__ = ["ChannelEntry", "ChannelRegistry", "DEFAULT_SHARDS"]

DEFAULT_SHARDS = 8

_OVERFLOW_POLICIES = ("suspend", "drop_oldest", "conflate")


@dataclass
class ChannelEntry:
    """One named channel plus its lifecycle bookkeeping."""

    name: str
    channel: AsyncChannel
    capacity: int
    overflow: str
    created_at: float
    last_active: float
    opens: int = 1
    ops: int = 0
    #: Ops currently executing against this channel (parked included).
    inflight: int = 0

    def touch(self, now: float) -> None:
        self.ops += 1
        self.last_active = now

    @property
    def queue_depth(self) -> int:
        """Elements currently buffered (completed sends minus receives)."""

        stats = self.channel.stats
        return max(0, stats.sends - stats.receives)

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "overflow": self.overflow,
            "opens": self.opens,
            "ops": self.ops,
            "inflight": self.inflight,
            "queue_depth": self.queue_depth,
            "age_s": round(time.monotonic() - self.created_at, 3),
        }


class ChannelRegistry:
    """Get-or-create registry of named :class:`AsyncChannel` instances."""

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        *,
        idle_seconds: float = 300.0,
        metrics: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ):
        if shards < 1:
            raise ValueError("registry needs at least one shard")
        self._shards: list[dict[str, ChannelEntry]] = [{} for _ in range(shards)]
        self._gc_cursor = 0
        self.idle_seconds = idle_seconds
        self.metrics = metrics
        self.clock = clock
        #: Lifetime counters (survive channel removal).
        self.total_opened = 0
        self.total_collected = 0

    # ------------------------------------------------------------------

    def _shard_of(self, name: str) -> dict[str, ChannelEntry]:
        return self._shards[zlib.crc32(name.encode("utf-8")) % len(self._shards)]

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shard_of(name)

    def entries(self) -> Iterator[ChannelEntry]:
        for shard in self._shards:
            yield from shard.values()

    # ------------------------------------------------------------------

    def open(
        self,
        name: str,
        capacity: int = 0,
        overflow: str = "suspend",
    ) -> ChannelEntry:
        """Get-or-create the named channel.

        Re-opening an existing name with the *same* parameters joins the
        existing channel (this is how many clients share one channel);
        conflicting parameters raise :class:`~repro.errors.RemoteOpError`
        — silently handing back a channel with different buffering than
        requested would be a debugging nightmare.
        """

        if not name:
            raise RemoteOpError("channel name must be non-empty")
        if overflow not in _OVERFLOW_POLICIES:
            raise RemoteOpError(f"unknown overflow policy {overflow!r}")
        if capacity < -1:
            raise RemoteOpError(f"capacity must be >= -1, got {capacity}")
        shard = self._shard_of(name)
        now = self.clock()
        entry = shard.get(name)
        if entry is not None:
            if entry.capacity != capacity or entry.overflow != overflow:
                raise RemoteOpError(
                    f"channel {name!r} already open with capacity={entry.capacity} "
                    f"overflow={entry.overflow!r} (requested capacity={capacity} "
                    f"overflow={overflow!r})"
                )
            entry.opens += 1
            entry.last_active = now
            return entry
        real_capacity = UNLIMITED if capacity == -1 else capacity
        channel = AsyncChannel(real_capacity, name=name, overflow=overflow)
        entry = ChannelEntry(
            name=name,
            channel=channel,
            capacity=capacity,
            overflow=overflow,
            created_at=now,
            last_active=now,
        )
        shard[name] = entry
        self.total_opened += 1
        if self.metrics is not None:
            self.metrics.counter("net_channels_opened_total").inc()
            self.metrics.gauge("net_channels").set(len(self))
        return entry

    def get(self, name: str) -> ChannelEntry:
        """The entry for ``name``; raises if it was never opened."""

        entry = self._shard_of(name).get(name)
        if entry is None:
            raise RemoteOpError(f"unknown channel {name!r} (send OPEN first)")
        return entry

    def remove(self, name: str) -> bool:
        entry = self._shard_of(name).pop(name, None)
        if entry is not None and self.metrics is not None:
            self.metrics.gauge("net_channels").set(len(self))
        return entry is not None

    # ------------------------------------------------------------------

    def record_op(self, entry: ChannelEntry) -> None:
        """Account one completed op and refresh the queue-depth gauge."""

        entry.touch(self.clock())
        if self.metrics is not None:
            self.metrics.gauge("queue_depth", channel=entry.name).set(entry.queue_depth)

    def record_batch(self, touched: dict[str, list]) -> None:
        """Vectorized accounting for one BATCH of ops.

        ``touched`` maps channel name to ``[entry, op_count]`` as built
        by the server's batch dispatch.  Folding the whole batch into
        one pass means one clock read and at most one queue-depth gauge
        update per channel, instead of one of each per op.
        """

        now = self.clock()
        metrics = self.metrics
        for entry, n in touched.values():
            if n:
                entry.ops += n
                entry.last_active = now
            if metrics is not None:
                metrics.gauge("queue_depth", channel=entry.name).set(entry.queue_depth)

    def collect_idle(self, *, full: bool = False) -> list[str]:
        """Remove closed-and-idle channels; returns the collected names.

        A channel is collectible when nothing has touched it for
        ``idle_seconds`` and no op is in flight against it.  Closed,
        drained channels keep no state worth preserving; an *open* idle
        channel is also collected — a later OPEN simply recreates it,
        which matches the at-least-once registration contract every
        named-resource service ends up with.  By default one shard is
        scanned per call (amortized GC); ``full=True`` scans everything.
        """

        now = self.clock()
        collected: list[str] = []
        if full:
            shards = list(range(len(self._shards)))
        else:
            shards = [self._gc_cursor % len(self._shards)]
            self._gc_cursor += 1
        for i in shards:
            shard = self._shards[i]
            for name, entry in list(shard.items()):
                if entry.inflight > 0:
                    continue
                if now - entry.last_active < self.idle_seconds:
                    continue
                del shard[name]
                collected.append(name)
        if collected:
            self.total_collected += len(collected)
            if self.metrics is not None:
                self.metrics.counter("net_channels_collected_total").inc(len(collected))
                self.metrics.gauge("net_channels").set(len(self))
        return collected

    def snapshot(self) -> dict[str, Any]:
        """Registry-wide stats plus one row per live channel."""

        return {
            "channels": len(self),
            "shards": len(self._shards),
            "total_opened": self.total_opened,
            "total_collected": self.total_collected,
            "entries": sorted((e.snapshot() for e in self.entries()), key=lambda r: r["name"]),
        }
